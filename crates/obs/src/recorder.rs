//! The flight recorder: a bounded, lossy-by-design ring of recent
//! per-cache-line access and invalidation records.
//!
//! Aggregate metrics (counters, histograms) say *how much* invalidation
//! traffic a line suffered; the flight recorder says *why* — which write, by
//! which thread, knocked which reader's copy out, and in what interleaving.
//! Each record carries the issuing thread, the word offset inside the line,
//! the access kind, and a process-global logical timestamp; invalidation
//! records additionally name the victim thread and the victim's last word.
//!
//! Cost model, in order of increasing price:
//!
//! * **disabled** (the default): [`FlightRecorder::is_enabled`] is one
//!   relaxed atomic load, so call sites can stay inline on hot paths;
//! * **enabled, hot path**: [`record`] appends to a plain thread-local
//!   segment and bumps the logical clock — no lock. Segments flush to the
//!   shared per-line rings every [`SEGMENT_LEN`] records and when the
//!   thread exits;
//! * **snapshot**: [`FlightRecorder::line_records`] flushes the calling
//!   thread's segment, locks the ring store, and clones.
//!
//! Loss semantics (deliberate, all bounded):
//!
//! * each line keeps only the `depth` most-recent records (by logical
//!   timestamp); older ones are evicted and counted in
//!   [`FlightRecorder::evicted`];
//! * at most [`MAX_LINES`] distinct lines are recorded; records for further
//!   lines are dropped (also counted as evicted);
//! * records sitting in a *live* thread's unflushed segment (at most
//!   `SEGMENT_LEN - 1` per thread) are invisible to snapshots until that
//!   thread flushes or exits.
//!
//! Under the `obs-off` feature every entry point compiles to a no-op and
//! `is_enabled` is a constant `false`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Records a thread-local segment accumulates before flushing to the shared
/// ring store (one lock acquisition per `SEGMENT_LEN` records).
pub const SEGMENT_LEN: usize = 64;

/// Upper bound on distinct lines the recorder tracks; beyond it, records
/// for new lines are dropped (bounds memory on huge address spaces).
pub const MAX_LINES: usize = 4096;

/// Default per-line ring depth.
pub const DEFAULT_DEPTH: usize = 64;

/// Sentinel word offset meaning "unknown" (e.g. a victim that was never
/// seen accessing the line while the recorder was enabled).
pub const WORD_UNKNOWN: u8 = u8::MAX;

/// What one record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecKind {
    /// A sampled read.
    Read,
    /// A sampled write that invalidated nothing.
    Write,
    /// A write that knocked a remote copy out. The writing thread and word
    /// are the record's `tid`/`word`; the victim rides along. Multi-victim
    /// events emit one record per victim, all sharing the event's `seq`.
    Invalidation {
        /// Thread whose cached copy was invalidated.
        victim_tid: u16,
        /// Last word the victim was seen touching ([`WORD_UNKNOWN`] if it
        /// was never observed while the recorder was on).
        victim_word: u8,
    },
}

/// One flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rec {
    /// First byte address of the cache line.
    pub line_start: u64,
    /// Process-global logical timestamp (invalidation records of one event
    /// share it).
    pub seq: u64,
    /// Issuing thread (the *writer* for invalidations).
    pub tid: u16,
    /// Word offset inside the line (8-byte words).
    pub word: u8,
    /// Access kind, with victim attribution for invalidations.
    pub kind: RecKind,
}

/// The bounded per-line ring store. Use [`recorder`] for the process-global
/// instance hot paths feed via [`record`]/[`record_invalidation`];
/// standalone instances (e.g. the MESI simulator's ground-truth feed) take
/// records directly through [`FlightRecorder::offer`].
pub struct FlightRecorder {
    enabled: AtomicBool,
    depth: AtomicUsize,
    seq: AtomicU64,
    appended: AtomicU64,
    evicted: AtomicU64,
    lines: Mutex<HashMap<u64, Vec<Rec>>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("depth", &self.depth())
            .field("appended", &self.appended())
            .field("evicted", &self.evicted())
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// Creates a disabled recorder with the default depth.
    pub fn new() -> Self {
        FlightRecorder {
            enabled: AtomicBool::new(false),
            depth: AtomicUsize::new(DEFAULT_DEPTH),
            seq: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            lines: Mutex::new(HashMap::new()),
        }
    }

    /// Starts recording, keeping the `depth` most-recent records per line.
    /// Clears nothing: re-enabling resumes on top of existing rings.
    pub fn enable(&self, depth: usize) {
        self.depth.store(depth.max(1), Ordering::Relaxed);
        #[cfg(not(feature = "obs-off"))]
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops recording (already-captured records stay readable).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// True while recording. One relaxed load — safe to leave inline on hot
    /// paths; constant `false` under `obs-off`.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "obs-off")]
        return false;
        #[cfg(not(feature = "obs-off"))]
        self.enabled.load(Ordering::Relaxed)
    }

    /// Per-line ring depth.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Allocates the next logical timestamp.
    #[inline]
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Records offered so far (including ones later evicted).
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Records lost to ring eviction or the line cap — the visible measure
    /// of the recorder's deliberate lossiness.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Drops every captured record and zeroes the clock and counters
    /// (enablement and depth are preserved). For tests and run boundaries.
    pub fn reset(&self) {
        let mut lines = self.lines.lock().unwrap();
        lines.clear();
        self.seq.store(0, Ordering::Relaxed);
        self.appended.store(0, Ordering::Relaxed);
        self.evicted.store(0, Ordering::Relaxed);
    }

    /// Inserts records directly into the ring store (one lock acquisition).
    /// This is the flush target for thread-local segments and the front
    /// door for single-threaded feeders like the MESI simulator.
    pub fn offer(&self, recs: &[Rec]) {
        #[cfg(feature = "obs-off")]
        {
            let _ = recs;
        }
        #[cfg(not(feature = "obs-off"))]
        {
            if recs.is_empty() {
                return;
            }
            let depth = self.depth();
            let mut evicted = 0u64;
            let mut lines = self.lines.lock().unwrap();
            for &rec in recs {
                if let Some(ring) = lines.get_mut(&rec.line_start) {
                    if ring.len() < depth {
                        ring.push(rec);
                    } else {
                        // Keep the `depth` newest records by timestamp:
                        // replace the oldest if this one is newer, else
                        // drop the incoming record itself.
                        evicted += 1;
                        let (i, oldest) = ring
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, r)| r.seq)
                            .map(|(i, r)| (i, r.seq))
                            .expect("ring is non-empty");
                        if rec.seq > oldest {
                            ring[i] = rec;
                        }
                    }
                } else if lines.len() < MAX_LINES {
                    lines.insert(rec.line_start, vec![rec]);
                } else {
                    evicted += 1;
                }
            }
            drop(lines);
            self.appended
                .fetch_add(recs.len() as u64, Ordering::Relaxed);
            if evicted > 0 {
                self.evicted.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Allocates one event timestamp and inserts directly (no segment
    /// batching) — for single-threaded feeders holding their own instance.
    pub fn offer_event(&self, line_start: u64, tid: u16, word: u8, kind: RecKind) -> u64 {
        let seq = self.next_seq();
        self.offer(&[Rec {
            line_start,
            seq,
            tid,
            word,
            kind,
        }]);
        seq
    }

    /// Inserts one invalidation *event* directly: one record per victim,
    /// all sharing a single freshly-allocated timestamp.
    pub fn offer_invalidation(
        &self,
        line_start: u64,
        writer_tid: u16,
        writer_word: u8,
        victims: &[(u16, u8)],
    ) -> u64 {
        let seq = self.next_seq();
        let recs: Vec<Rec> = victims
            .iter()
            .map(|&(victim_tid, victim_word)| Rec {
                line_start,
                seq,
                tid: writer_tid,
                word: writer_word,
                kind: RecKind::Invalidation {
                    victim_tid,
                    victim_word,
                },
            })
            .collect();
        self.offer(&recs);
        seq
    }

    /// The records captured for the line starting at `line_start`, sorted by
    /// logical timestamp. Flushes the calling thread's segment first; other
    /// live threads' unflushed segments remain invisible (bounded loss).
    pub fn line_records(&self, line_start: u64) -> Vec<Rec> {
        flush_thread();
        let lines = self.lines.lock().unwrap();
        let mut recs = lines.get(&line_start).cloned().unwrap_or_default();
        drop(lines);
        recs.sort_by_key(|r| r.seq);
        recs
    }

    /// Line start addresses with at least one captured record, ascending.
    pub fn recorded_lines(&self) -> Vec<u64> {
        flush_thread();
        let lines = self.lines.lock().unwrap();
        let mut keys: Vec<u64> = lines.keys().copied().collect();
        drop(lines);
        keys.sort_unstable();
        keys
    }
}

/// The process-global flight recorder. Disabled (one relaxed load per
/// check) until the CLI or a test enables it.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(FlightRecorder::new)
}

#[cfg(not(feature = "obs-off"))]
mod segment {
    use super::{recorder, Rec, SEGMENT_LEN};
    use std::cell::RefCell;

    /// A thread-local batch destined for the *global* recorder; flushed when
    /// full and when the owning thread exits.
    struct Segment {
        buf: Vec<Rec>,
    }

    impl Drop for Segment {
        fn drop(&mut self) {
            recorder().offer(&self.buf);
        }
    }

    thread_local! {
        static SEGMENT: RefCell<Segment> = const { RefCell::new(Segment { buf: Vec::new() }) };
    }

    pub(super) fn push(rec: Rec) {
        // `try_with` so records arriving during thread teardown (after the
        // TLS slot was destroyed) fall through to a direct insert.
        let spilled = SEGMENT
            .try_with(|seg| {
                let mut seg = seg.borrow_mut();
                seg.buf.push(rec);
                if seg.buf.len() >= SEGMENT_LEN {
                    let batch = std::mem::take(&mut seg.buf);
                    drop(seg);
                    recorder().offer(&batch);
                }
            })
            .is_err();
        if spilled {
            recorder().offer(&[rec]);
        }
    }

    pub(super) fn flush() {
        let batch = SEGMENT
            .try_with(|seg| std::mem::take(&mut seg.borrow_mut().buf))
            .unwrap_or_default();
        recorder().offer(&batch);
    }
}

/// Flushes the calling thread's segment into the global recorder (snapshot
/// paths call this; worker threads flush automatically on exit).
pub fn flush_thread() {
    #[cfg(not(feature = "obs-off"))]
    segment::flush();
}

/// Records one sampled access into the global recorder's thread-local
/// segment. No-op while the recorder is disabled (callers should pre-check
/// [`FlightRecorder::is_enabled`] to skip argument setup).
#[inline]
pub fn record(line_start: u64, tid: u16, word: u8, is_write: bool) {
    #[cfg(feature = "obs-off")]
    {
        let _ = (line_start, tid, word, is_write);
    }
    #[cfg(not(feature = "obs-off"))]
    {
        let r = recorder();
        if !r.is_enabled() {
            return;
        }
        let kind = if is_write {
            RecKind::Write
        } else {
            RecKind::Read
        };
        segment::push(Rec {
            line_start,
            seq: r.next_seq(),
            tid,
            word,
            kind,
        });
    }
}

/// Records one invalidation event into the global recorder: `writer_tid`
/// writing `writer_word` knocked out the copies of `victims` (pairs of
/// victim thread and the victim's last-seen word). One record per victim,
/// all sharing the event's logical timestamp.
#[inline]
pub fn record_invalidation(
    line_start: u64,
    writer_tid: u16,
    writer_word: u8,
    victims: &[(u16, u8)],
) {
    #[cfg(feature = "obs-off")]
    {
        let _ = (line_start, writer_tid, writer_word, victims);
    }
    #[cfg(not(feature = "obs-off"))]
    {
        let r = recorder();
        if !r.is_enabled() || victims.is_empty() {
            return;
        }
        let seq = r.next_seq();
        for &(victim_tid, victim_word) in victims {
            segment::push(Rec {
                line_start,
                seq,
                tid: writer_tid,
                word: writer_word,
                kind: RecKind::Invalidation {
                    victim_tid,
                    victim_word,
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(line: u64, seq: u64, tid: u16) -> Rec {
        Rec {
            line_start: line,
            seq,
            tid,
            word: (seq % 8) as u8,
            kind: RecKind::Write,
        }
    }

    #[test]
    fn disabled_recorder_reports_disabled() {
        let r = FlightRecorder::new();
        assert!(!r.is_enabled());
        r.enable(4);
        assert_eq!(r.is_enabled(), !cfg!(feature = "obs-off"));
        r.disable();
        assert!(!r.is_enabled());
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn ring_keeps_the_most_recent_depth_records() {
        let r = FlightRecorder::new();
        r.enable(3);
        for seq in 0..10 {
            r.offer(&[rec(64, seq, 0)]);
        }
        let kept: Vec<u64> = r.line_records(64).iter().map(|x| x.seq).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(r.appended(), 10);
        assert_eq!(r.evicted(), 7);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn out_of_order_arrival_still_keeps_newest_by_seq() {
        let r = FlightRecorder::new();
        r.enable(2);
        // Batched thread-local segments can interleave arrival order.
        for seq in [5u64, 1, 9, 2, 8] {
            r.offer(&[rec(0, seq, 0)]);
        }
        let kept: Vec<u64> = r.line_records(0).iter().map(|x| x.seq).collect();
        assert_eq!(kept, vec![8, 9]);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn lines_are_independent_rings() {
        let r = FlightRecorder::new();
        r.enable(2);
        for seq in 0..6 {
            r.offer(&[rec((seq % 3) * 64, seq, 0)]);
        }
        assert_eq!(r.recorded_lines(), vec![0, 64, 128]);
        for line in [0u64, 64, 128] {
            assert_eq!(r.line_records(line).len(), 2);
        }
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn offer_event_assigns_monotonic_seqs() {
        let r = FlightRecorder::new();
        r.enable(8);
        let a = r.offer_event(0, 0, 0, RecKind::Read);
        let b = r.offer_event(0, 1, 1, RecKind::Write);
        assert!(b > a);
        assert_eq!(r.line_records(0).len(), 2);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn reset_clears_records_and_counters() {
        let r = FlightRecorder::new();
        r.enable(2);
        for seq in 0..5 {
            r.offer(&[rec(0, seq, 0)]);
        }
        r.reset();
        assert!(r.line_records(0).is_empty());
        assert_eq!(r.appended(), 0);
        assert_eq!(r.evicted(), 0);
        assert_eq!(
            r.is_enabled(),
            !cfg!(feature = "obs-off"),
            "enablement survives reset"
        );
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn line_cap_drops_new_lines_not_old_records() {
        let r = FlightRecorder::new();
        r.enable(1);
        let mut batch = Vec::new();
        for i in 0..(MAX_LINES as u64 + 10) {
            batch.push(rec(i * 64, i, 0));
        }
        r.offer(&batch);
        assert_eq!(r.recorded_lines().len(), MAX_LINES);
        assert_eq!(r.evicted(), 10);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn multi_victim_invalidations_share_a_seq() {
        let r = FlightRecorder::new();
        r.enable(8);
        let seq = r.next_seq();
        let recs: Vec<Rec> = [(1u16, 2u8), (2, 5)]
            .iter()
            .map(|&(victim_tid, victim_word)| Rec {
                line_start: 0,
                seq,
                tid: 0,
                word: 0,
                kind: RecKind::Invalidation {
                    victim_tid,
                    victim_word,
                },
            })
            .collect();
        r.offer(&recs);
        let got = r.line_records(0);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, got[1].seq);
    }
}
