//! Point-in-time metric snapshots and their text encodings.

use std::fmt::Write as _;

/// One non-empty histogram bucket: `count` observations at or above `lo`
/// (and below the next bucket's `lo`; see [`crate::bucket_index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty log2 buckets, ascending by bound.
    pub buckets: Vec<Bucket>,
}

/// A point-in-time copy of a [`crate::Registry`], sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots.
    pub histograms: Vec<HistogramSnapshot>,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Rewrites a metric name into the Prometheus charset (`[a-zA-Z0-9_]`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// `# HELP` text for a metric: the name humanized (underscores to spaces) —
/// honest and mechanical, with no invented semantics.
fn prom_help(name: &str) -> String {
    name.chars()
        .map(|c| if c == '_' { ' ' } else { c })
        .collect()
}

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double-quote, and newline must be backslash-escaped.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a Prometheus *info-style* gauge: constant value 1 with the
/// interesting data carried in labels (`predator_build_info{version="0.1.0"} 1`).
/// The registry's own gauges are unlabeled, so info metrics — the one place
/// labels are idiomatic — are rendered by this helper and prepended to
/// [`Snapshot::to_prometheus`] output by the `/metrics` endpoint.
pub fn prom_info_metric(name: &str, labels: &[(&str, &str)]) -> String {
    let n = prom_name(name);
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), escape_label_value(v)))
        .collect();
    format!(
        "# HELP {n} {}\n# TYPE {n} gauge\n{n}{{{}}} 1\n",
        prom_help(name),
        pairs.join(",")
    )
}

impl Snapshot {
    /// Serializes to a single JSON object. The schema matches the
    /// `ObsSnapshot` mirror embedded in detector reports:
    ///
    /// ```json
    /// {"counters":[{"name":"...","value":1}],
    ///  "gauges":[{"name":"...","value":-1}],
    ///  "histograms":[{"name":"...","count":2,"sum":9,
    ///                 "buckets":[{"lo":4,"count":2}]}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":[");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, name);
            let _ = write!(out, ",\"value\":{value}}}");
        }
        out.push_str("],\"gauges\":[");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, name);
            let _ = write!(out, ",\"value\":{value}}}");
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, &h.name);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"lo\":{},\"count\":{}}}", b.lo, b.count);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Serializes to the Prometheus text exposition format, with `# HELP`
    /// and `# TYPE` lines per metric family. Histogram buckets become
    /// cumulative `_bucket{le="..."}` series with the standard
    /// `+Inf`/`_sum`/`_count` trailer; label values go through
    /// [`escape_label_value`].
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256);
        for (name, value) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# HELP {n} {}", prom_help(name));
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# HELP {n} {}", prom_help(name));
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {value}");
        }
        for h in &self.histograms {
            let n = prom_name(&h.name);
            let _ = writeln!(out, "# HELP {n} {}", prom_help(&h.name));
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                // `lo` is the inclusive lower bound of a [2^(i-1), 2^i)
                // bucket; the Prometheus inclusive upper bound is 2^i - 1.
                let le = if b.lo == 0 {
                    0
                } else {
                    b.lo.saturating_mul(2) - 1
                };
                let le = escape_label_value(&le.to_string());
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("runtime_accesses_total".into(), 42)],
            gauges: vec![("alloc_live_bytes".into(), -7)],
            histograms: vec![HistogramSnapshot {
                name: "span_detect_ns".into(),
                count: 3,
                sum: 70,
                buckets: vec![Bucket { lo: 16, count: 2 }, Bucket { lo: 32, count: 1 }],
            }],
        }
    }

    #[test]
    fn json_schema_is_stable() {
        let json = sample().to_json();
        assert!(json.contains("\"counters\":[{\"name\":\"runtime_accesses_total\",\"value\":42}]"));
        assert!(json.contains("\"gauges\":[{\"name\":\"alloc_live_bytes\",\"value\":-7}]"));
        assert!(json.contains("\"buckets\":[{\"lo\":16,\"count\":2},{\"lo\":32,\"count\":1}]"));
    }

    #[test]
    fn escape_label_value_covers_the_spec_cases() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn prometheus_emits_help_lines() {
        let prom = sample().to_prometheus();
        assert!(
            prom.contains("# HELP runtime_accesses_total runtime accesses total"),
            "{prom}"
        );
        assert!(
            prom.contains("# HELP alloc_live_bytes alloc live bytes"),
            "{prom}"
        );
        assert!(
            prom.contains("# HELP span_detect_ns span detect ns"),
            "{prom}"
        );
        // HELP precedes TYPE for each family.
        let help = prom.find("# HELP runtime_accesses_total").unwrap();
        let ty = prom.find("# TYPE runtime_accesses_total").unwrap();
        assert!(help < ty);
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE runtime_accesses_total counter"));
        assert!(prom.contains("runtime_accesses_total 42"));
        assert!(prom.contains("span_detect_ns_bucket{le=\"31\"} 2"));
        assert!(prom.contains("span_detect_ns_bucket{le=\"63\"} 3"));
        assert!(prom.contains("span_detect_ns_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("span_detect_ns_sum 70"));
    }

    #[test]
    fn info_metric_renders_labels_escaped() {
        let line = prom_info_metric("predator_build_info", &[("version", "0.1.0\"x")]);
        assert!(line.contains("# TYPE predator_build_info gauge"));
        assert!(
            line.contains("predator_build_info{version=\"0.1.0\\\"x\"} 1"),
            "{line}"
        );
    }

    #[test]
    fn empty_snapshot_serializes() {
        assert_eq!(
            Snapshot::default().to_json(),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[]}"
        );
        assert_eq!(Snapshot::default().to_prometheus(), "");
    }
}
