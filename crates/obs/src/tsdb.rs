//! An embedded metric time-series store: fixed-capacity rings of recent
//! samples, fed from registry [`Snapshot`]s on each watchdog tick.
//!
//! `predator serve` exposes instantaneous `/metrics` and `/snapshot`
//! deltas, but "invalidations-per-second tripled five minutes ago" needs
//! *history*. This module keeps that history in-process and bounded:
//!
//! * **Raw tier** — every sample, as offered (typically one per watchdog
//!   tick, so seconds of resolution for minutes of retention).
//! * **10s tier** — closed 10-second buckets aggregating the raw samples
//!   that fell inside them (`count`/`sum`/`min`/`max`/`last`).
//! * **60s tier** — closed 60-second buckets aggregating the 10s buckets.
//!
//! Aggregation happens at sample time, so a closed bucket re-aggregates
//! its raw window exactly even after the raw ring has evicted those
//! samples (the property `tests/tsdb_props.rs` proves). Every eviction is
//! counted per tier — loss accounting, not silence.
//!
//! ## Restart semantics
//!
//! Counter series store an *adjusted* cumulative value: when the raw
//! counter regresses (wrap-around, registry restart, serve session
//! rotation) the previous raw value is folded into a per-series offset —
//! exactly [`crate::delta`]'s `monotone_delta` convention, accumulated.
//! Stored counter series are therefore non-decreasing and [`Tsdb::rate`]
//! is never negative, even across rotation.

use std::collections::{BTreeMap, VecDeque};

use crate::snapshot::{HistogramSnapshot, Snapshot};

/// Schema tag embedded in `/query` JSON documents.
pub const TSDB_SCHEMA: &str = "predator-tsdb/1";

/// What kind of series a stored metric is (drives client-side rendering:
/// counters want rates, gauges want levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotone cumulative counter (stored restart-adjusted).
    Counter,
    /// Instantaneous level.
    Gauge,
}

impl SeriesKind {
    /// Stable lowercase name for JSON documents.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// One raw sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Sample time, milliseconds on the caller's clock (serve uptime).
    pub t_ms: u64,
    /// Sampled value (restart-adjusted cumulative for counters).
    pub value: f64,
}

/// One closed downsampling bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggPoint {
    /// Bucket start (aligned to the tier width).
    pub t_ms: u64,
    /// Raw samples folded into the bucket.
    pub count: u64,
    /// Sum of folded sample values.
    pub sum: f64,
    /// Smallest folded sample value.
    pub min: f64,
    /// Largest folded sample value.
    pub max: f64,
    /// Most recent folded sample value.
    pub last: f64,
}

impl AggPoint {
    fn seed(bucket_start: u64, value: f64) -> Self {
        AggPoint {
            t_ms: bucket_start,
            count: 1,
            sum: value,
            min: value,
            max: value,
            last: value,
        }
    }

    fn fold_value(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
    }

    fn fold_agg(&mut self, other: &AggPoint) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.last = other.last;
    }
}

/// Capacities and bucket widths for the three tiers.
#[derive(Debug, Clone, Copy)]
pub struct TsdbConfig {
    /// Raw samples retained per series.
    pub raw_capacity: usize,
    /// Closed 10s buckets retained per series.
    pub tier1_capacity: usize,
    /// Closed 60s buckets retained per series.
    pub tier2_capacity: usize,
    /// First downsampling bucket width, milliseconds.
    pub tier1_ms: u64,
    /// Second downsampling bucket width, milliseconds.
    pub tier2_ms: u64,
}

impl Default for TsdbConfig {
    /// 1s ticks: ~12 min raw, 1 h at 10s, 24 h at 60s — a few MB for the
    /// full registry, bounded regardless of how long serve runs.
    fn default() -> Self {
        TsdbConfig {
            raw_capacity: 720,
            tier1_capacity: 360,
            tier2_capacity: 1440,
            tier1_ms: 10_000,
            tier2_ms: 60_000,
        }
    }
}

/// A bounded ring: pushing onto a full ring evicts the oldest entry and
/// counts it as lost.
#[derive(Debug, Clone)]
struct Ring<T> {
    buf: VecDeque<T>,
    cap: usize,
    evicted: u64,
}

impl<T> Ring<T> {
    fn new(cap: usize) -> Self {
        Ring {
            buf: VecDeque::with_capacity(cap.clamp(1, 64)),
            cap: cap.max(1),
            evicted: 0,
        }
    }

    fn push(&mut self, v: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(v);
    }
}

#[derive(Debug, Clone)]
struct SeriesBuf {
    kind: SeriesKind,
    /// Restart-adjustment offset for counters (see module docs).
    offset: u64,
    /// Last raw (unadjusted) counter value seen.
    last_raw: u64,
    raw: Ring<Point>,
    tier1: Ring<AggPoint>,
    tier2: Ring<AggPoint>,
    open1: Option<AggPoint>,
    open2: Option<AggPoint>,
}

impl SeriesBuf {
    fn new(kind: SeriesKind, cfg: &TsdbConfig) -> Self {
        SeriesBuf {
            kind,
            offset: 0,
            last_raw: 0,
            raw: Ring::new(cfg.raw_capacity),
            tier1: Ring::new(cfg.tier1_capacity),
            tier2: Ring::new(cfg.tier2_capacity),
            open1: None,
            open2: None,
        }
    }

    /// Applies `monotone_delta` restart semantics cumulatively: the stored
    /// series is non-decreasing even when the raw counter goes backwards.
    fn adjust_counter(&mut self, raw: u64) -> u64 {
        if raw < self.last_raw {
            // Regression: the delta from here on is `raw` itself, so the
            // history up to `last_raw` becomes part of the offset.
            self.offset = self.offset.saturating_add(self.last_raw);
        }
        self.last_raw = raw;
        self.offset.saturating_add(raw)
    }

    fn push(&mut self, t_ms: u64, value: f64, cfg: &TsdbConfig) {
        self.raw.push(Point { t_ms, value });
        let b1 = t_ms - t_ms % cfg.tier1_ms;
        match &mut self.open1 {
            Some(open) if open.t_ms == b1 => open.fold_value(value),
            Some(open) => {
                let closed = *open;
                self.close_tier1(closed, cfg);
                self.open1 = Some(AggPoint::seed(b1, value));
            }
            None => self.open1 = Some(AggPoint::seed(b1, value)),
        }
    }

    fn close_tier1(&mut self, closed: AggPoint, cfg: &TsdbConfig) {
        self.tier1.push(closed);
        let b2 = closed.t_ms - closed.t_ms % cfg.tier2_ms;
        match &mut self.open2 {
            Some(open) if open.t_ms == b2 => open.fold_agg(&closed),
            Some(open) => {
                let done = *open;
                self.tier2.push(done);
                let mut seeded = closed;
                seeded.t_ms = b2;
                self.open2 = Some(seeded);
            }
            None => {
                let mut seeded = closed;
                seeded.t_ms = b2;
                self.open2 = Some(seeded);
            }
        }
    }

    /// Oldest timestamp available in each tier (closed buckets only for
    /// the aggregate tiers).
    fn oldest_raw(&self) -> Option<u64> {
        self.raw.buf.front().map(|p| p.t_ms)
    }
}

/// Per-tier eviction totals across all series — the loss accounting
/// surfaced in every `/query` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TsdbLoss {
    /// Raw samples evicted.
    pub raw_evicted: u64,
    /// 10s buckets evicted.
    pub tier1_evicted: u64,
    /// 60s buckets evicted.
    pub tier2_evicted: u64,
}

impl TsdbLoss {
    fn to_json(self) -> String {
        format!(
            "{{\"raw_evicted\":{},\"tier1_evicted\":{},\"tier2_evicted\":{}}}",
            self.raw_evicted, self.tier1_evicted, self.tier2_evicted
        )
    }
}

/// A range query's answer: the best-resolution tier that still covers the
/// requested range, as `(t_ms, value)` points.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The series queried.
    pub metric: String,
    /// Counter or gauge (drives rate-vs-level rendering).
    pub kind: SeriesKind,
    /// Which tier answered: `"raw"`, `"10s"` or `"60s"`.
    pub tier: &'static str,
    /// Points within the range, ascending by time. Aggregate tiers report
    /// each bucket's `last` value at the bucket start.
    pub points: Vec<Point>,
}

impl QueryResult {
    /// One `/query` JSON document, loss accounting included.
    pub fn to_json(&self, now_ms: u64, range_ms: u64, loss: TsdbLoss) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.points.len() * 16);
        let _ = write!(
            out,
            "{{\"schema\":\"{TSDB_SCHEMA}\",\"metric\":\"{}\",\"kind\":\"{}\",\
             \"tier\":\"{}\",\"now_ms\":{now_ms},\"range_ms\":{range_ms},\"points\":[",
            self.metric,
            self.kind.as_str(),
            self.tier
        );
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", p.t_ms, json_f64(p.value));
        }
        let _ = write!(out, "],\"loss\":{}}}", loss.to_json());
        out
    }
}

/// Formats an `f64` as a JSON number (non-finite values become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Linear-within-log2-bucket quantile estimate over a histogram snapshot,
/// matching the interpolation `predator stats` applies to the same data.
pub fn hist_quantile(h: &HistogramSnapshot, q: f64) -> f64 {
    if h.count == 0 {
        return 0.0;
    }
    let target = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
    let mut seen = 0u64;
    for b in &h.buckets {
        let before = seen;
        seen += b.count;
        if seen >= target {
            let lo = b.lo as f64;
            let hi = if b.lo == 0 { 1.0 } else { (b.lo as f64) * 2.0 };
            let into = (target - before) as f64 / b.count as f64;
            return lo + (hi - lo) * into;
        }
    }
    h.buckets.last().map(|b| (b.lo as f64) * 2.0).unwrap_or(0.0)
}

/// The store: one [`SeriesBuf`] per metric name, fed by [`Tsdb::sample`].
#[derive(Debug)]
pub struct Tsdb {
    cfg: TsdbConfig,
    series: BTreeMap<String, SeriesBuf>,
    samples_total: u64,
    last_t_ms: u64,
}

impl Default for Tsdb {
    fn default() -> Self {
        Tsdb::new(TsdbConfig::default())
    }
}

impl Tsdb {
    /// An empty store with the given tier geometry.
    pub fn new(cfg: TsdbConfig) -> Self {
        Tsdb {
            cfg,
            series: BTreeMap::new(),
            samples_total: 0,
            last_t_ms: 0,
        }
    }

    /// The configured tier geometry.
    pub fn config(&self) -> TsdbConfig {
        self.cfg
    }

    /// Samples offered so far (one per metric per [`Tsdb::sample`] call).
    pub fn samples_total(&self) -> u64 {
        self.samples_total
    }

    /// Timestamp of the most recent [`Tsdb::sample`] call.
    pub fn last_t_ms(&self) -> u64 {
        self.last_t_ms
    }

    /// Ingests one registry snapshot at `t_ms` (caller's monotone clock,
    /// typically milliseconds since serve start):
    ///
    /// * every counter → a [`SeriesKind::Counter`] series (restart-adjusted);
    /// * every gauge → a [`SeriesKind::Gauge`] series;
    /// * every histogram → four derived series: `<name>:p50` / `<name>:p99`
    ///   (gauges, log2-interpolated) plus `<name>:count` / `<name>:sum`
    ///   (counters).
    pub fn sample(&mut self, snap: &Snapshot, t_ms: u64) {
        self.last_t_ms = t_ms;
        for (name, v) in &snap.counters {
            self.push_counter(name, *v, t_ms);
        }
        for (name, v) in &snap.gauges {
            self.push_gauge(name, *v as f64, t_ms);
        }
        // Histograms decompose into derived scalar series; allocation of
        // the derived names happens once per series, not per tick.
        let mut scratch = String::with_capacity(48);
        for h in &snap.histograms {
            for (suffix, q) in [(":p50", 0.50), (":p99", 0.99)] {
                scratch.clear();
                scratch.push_str(&h.name);
                scratch.push_str(suffix);
                self.push_named(&scratch, SeriesKind::Gauge, hist_quantile(h, q), t_ms);
            }
            scratch.clear();
            scratch.push_str(&h.name);
            scratch.push_str(":count");
            self.push_counter(&scratch, h.count, t_ms);
            scratch.clear();
            scratch.push_str(&h.name);
            scratch.push_str(":sum");
            self.push_counter(&scratch, h.sum, t_ms);
        }
    }

    fn push_counter(&mut self, name: &str, raw: u64, t_ms: u64) {
        let cfg = self.cfg;
        let s = self.series_entry(name, SeriesKind::Counter);
        let adjusted = s.adjust_counter(raw) as f64;
        s.push(t_ms, adjusted, &cfg);
        self.samples_total += 1;
    }

    fn push_gauge(&mut self, name: &str, value: f64, t_ms: u64) {
        self.push_named(name, SeriesKind::Gauge, value, t_ms);
    }

    fn push_named(&mut self, name: &str, kind: SeriesKind, value: f64, t_ms: u64) {
        let cfg = self.cfg;
        let s = self.series_entry(name, kind);
        s.push(t_ms, value, &cfg);
        self.samples_total += 1;
    }

    fn series_entry(&mut self, name: &str, kind: SeriesKind) -> &mut SeriesBuf {
        if !self.series.contains_key(name) {
            self.series
                .insert(name.to_string(), SeriesBuf::new(kind, &self.cfg));
        }
        self.series.get_mut(name).expect("just inserted")
    }

    /// Total evictions per tier across all series.
    pub fn loss(&self) -> TsdbLoss {
        let mut loss = TsdbLoss::default();
        for s in self.series.values() {
            loss.raw_evicted += s.raw.evicted;
            loss.tier1_evicted += s.tier1.evicted;
            loss.tier2_evicted += s.tier2.evicted;
        }
        loss
    }

    /// Known series, ascending by name, with their kinds.
    pub fn series_names(&self) -> Vec<(String, SeriesKind)> {
        self.series
            .iter()
            .map(|(n, s)| (n.clone(), s.kind))
            .collect()
    }

    /// Most recent stored value of `metric` (restart-adjusted cumulative
    /// for counters).
    pub fn latest(&self, metric: &str) -> Option<f64> {
        self.series
            .get(metric)
            .and_then(|s| s.raw.buf.back().map(|p| p.value))
    }

    /// Series points covering `[now_ms - range_ms, now_ms]` from the
    /// best-resolution tier that still reaches back that far. Aggregate
    /// tiers report closed buckets (plus the open one, as the live edge).
    pub fn query(&self, metric: &str, range_ms: u64, now_ms: u64) -> Option<QueryResult> {
        let s = self.series.get(metric)?;
        let start = now_ms.saturating_sub(range_ms);
        let (tier, points) = self.pick_tier(s, start);
        Some(QueryResult {
            metric: metric.to_string(),
            kind: s.kind,
            tier,
            points,
        })
    }

    fn pick_tier(&self, s: &SeriesBuf, start: u64) -> (&'static str, Vec<Point>) {
        // A tier covers the range if it never evicted anything (it holds
        // the series' whole life) or its oldest retained entry predates
        // the range start. The finest covering tier wins; with no covering
        // tier, the one reaching furthest back does (finest on ties).
        let raw_points = || {
            s.raw
                .buf
                .iter()
                .filter(|p| p.t_ms >= start)
                .copied()
                .collect::<Vec<Point>>()
        };
        // A bucket [t, t+width) is in range when it ends after `start`.
        let tier_points = |ring: &Ring<AggPoint>, open: &Option<AggPoint>, width: u64| {
            ring.buf
                .iter()
                .chain(open.iter())
                .filter(|a| a.t_ms.saturating_add(width) > start)
                .map(|a| Point {
                    t_ms: a.t_ms,
                    value: a.last,
                })
                .collect::<Vec<Point>>()
        };
        let covers = |oldest: Option<u64>, evicted: u64| match oldest {
            Some(t) => evicted == 0 || t <= start,
            None => false,
        };
        let oldest1 = s
            .tier1
            .buf
            .front()
            .map(|a| a.t_ms)
            .or(s.open1.map(|a| a.t_ms));
        let oldest2 = s
            .tier2
            .buf
            .front()
            .map(|a| a.t_ms)
            .or(s.open2.map(|a| a.t_ms));
        if covers(s.oldest_raw(), s.raw.evicted) {
            return ("raw", raw_points());
        }
        if covers(oldest1, s.tier1.evicted) {
            return ("10s", tier_points(&s.tier1, &s.open1, self.cfg.tier1_ms));
        }
        if covers(oldest2, s.tier2.evicted) {
            return ("60s", tier_points(&s.tier2, &s.open2, self.cfg.tier2_ms));
        }
        // Nothing covers: take the tier with the most history.
        let reach = [
            s.oldest_raw().unwrap_or(u64::MAX),
            oldest1.unwrap_or(u64::MAX),
            oldest2.unwrap_or(u64::MAX),
        ];
        let best = (0..3).min_by_key(|&i| reach[i]).unwrap_or(0);
        match best {
            1 => ("10s", tier_points(&s.tier1, &s.open1, self.cfg.tier1_ms)),
            2 => ("60s", tier_points(&s.tier2, &s.open2, self.cfg.tier2_ms)),
            _ => ("raw", raw_points()),
        }
    }

    /// Raw points currently retained for `metric`, oldest first — the
    /// accessor the retention property tests pin the ring contract on.
    pub fn raw_points(&self, metric: &str) -> Vec<Point> {
        self.series
            .get(metric)
            .map(|s| s.raw.buf.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Closed 10s buckets retained for `metric`, oldest first.
    pub fn tier1_buckets(&self, metric: &str) -> Vec<AggPoint> {
        self.series
            .get(metric)
            .map(|s| s.tier1.buf.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Closed 60s buckets retained for `metric`, oldest first.
    pub fn tier2_buckets(&self, metric: &str) -> Vec<AggPoint> {
        self.series
            .get(metric)
            .map(|s| s.tier2.buf.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Per-second rate of change of `metric` over the trailing
    /// `window_ms`, computed from stored (restart-adjusted) values — never
    /// negative for counters, `None` without two distinct-time points.
    pub fn rate(&self, metric: &str, window_ms: u64, now_ms: u64) -> Option<f64> {
        let q = self.query(metric, window_ms, now_ms)?;
        let first = q.points.first()?;
        let last = q.points.last()?;
        if last.t_ms <= first.t_ms {
            return None;
        }
        let dt_s = (last.t_ms - first.t_ms) as f64 / 1000.0;
        Some((last.value - first.value) / dt_s)
    }

    /// The `/query` series-listing document (no `metric` parameter).
    pub fn series_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"schema\":\"{TSDB_SCHEMA}\",\"samples_total\":{},\"series\":[",
            self.samples_total
        );
        for (i, (name, s)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"kind\":\"{}\",\"raw_len\":{}}}",
                s.kind.as_str(),
                s.raw.buf.len()
            );
        }
        let _ = write!(out, "],\"loss\":{}}}", self.loss().to_json());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Bucket;

    fn counter_snap(name: &str, v: u64) -> Snapshot {
        Snapshot {
            counters: vec![(name.into(), v)],
            ..Default::default()
        }
    }

    #[test]
    fn raw_ring_retains_newest_k() {
        let mut db = Tsdb::new(TsdbConfig {
            raw_capacity: 3,
            ..Default::default()
        });
        for i in 0..10u64 {
            db.sample(&counter_snap("c_total", i), i * 1000);
        }
        let ts: Vec<u64> = db.raw_points("c_total").iter().map(|p| p.t_ms).collect();
        assert_eq!(ts, vec![7_000, 8_000, 9_000]);
        assert_eq!(db.loss().raw_evicted, 7);
        // A range the raw tier still covers is answered from raw.
        let q = db.query("c_total", 2_000, 9_000).unwrap();
        assert_eq!(q.tier, "raw");
        assert_eq!(q.points.len(), 3);
        // A range reaching past the evictions falls back to the 10s tier
        // (whose open bucket aggregated every sample ever offered).
        let q = db.query("c_total", u64::MAX, 9_000).unwrap();
        assert_eq!(q.tier, "10s");
    }

    #[test]
    fn counter_restart_keeps_series_monotone_and_rate_non_negative() {
        let mut db = Tsdb::default();
        for (i, v) in [10u64, 20, 30, 5, 9].iter().enumerate() {
            db.sample(&counter_snap("c_total", *v), i as u64 * 1000);
        }
        // Stored values: 10, 20, 30, 35, 39 — monotone through the reset.
        assert_eq!(db.latest("c_total"), Some(39.0));
        let r = db.rate("c_total", 10_000, 4_000).unwrap();
        assert!(r >= 0.0, "rate {r} went negative across the restart");
        assert!((r - (39.0 - 10.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn downsampled_buckets_reaggregate_their_raw_window() {
        let mut db = Tsdb::new(TsdbConfig {
            raw_capacity: 2, // evict aggressively: aggregation must not care
            tier1_ms: 10_000,
            tier2_ms: 60_000,
            ..Default::default()
        });
        // 12 samples at 1s spacing: the first 10 fill bucket [0,10s).
        for i in 0..12u64 {
            db.sample(
                &Snapshot {
                    gauges: vec![("g".into(), (i as i64) * 2)],
                    ..Default::default()
                },
                i * 1000,
            );
        }
        let t1 = db.tier1_buckets("g");
        let b = t1.first().expect("bucket [0,10s) closed");
        assert_eq!(b.t_ms, 0);
        assert_eq!(b.count, 10);
        assert_eq!(b.sum, (0..10).map(|i| (i * 2) as f64).sum::<f64>());
        assert_eq!(b.max, 18.0);
        assert_eq!(b.min, 0.0);
        assert_eq!(b.last, 18.0);
    }

    #[test]
    fn tier2_folds_closed_tier1_buckets() {
        let mut db = Tsdb::new(TsdbConfig {
            tier1_ms: 10_000,
            tier2_ms: 60_000,
            ..Default::default()
        });
        // 70 seconds of samples: six 10s buckets close inside [0,60s),
        // and the 60s bucket closes when the 7th 10s bucket opens at 60s
        // ... which itself only closes at 70s.
        for i in 0..=70u64 {
            db.sample(
                &Snapshot {
                    gauges: vec![("g".into(), 1)],
                    ..Default::default()
                },
                i * 1000,
            );
        }
        let t2 = db.tier2_buckets("g");
        let b2 = t2.first().expect("minute bucket closed");
        assert_eq!(b2.t_ms, 0);
        assert_eq!(b2.count, 60, "all 60 raw samples of the first minute");
    }

    #[test]
    fn query_falls_back_to_coarser_tiers_when_raw_evicted() {
        let mut db = Tsdb::new(TsdbConfig {
            raw_capacity: 5,
            tier1_capacity: 1000,
            tier1_ms: 10_000,
            ..Default::default()
        });
        for i in 0..100u64 {
            db.sample(&counter_snap("c_total", i), i * 1000);
        }
        let short = db.query("c_total", 4_000, 99_000).unwrap();
        assert_eq!(short.tier, "raw");
        let long = db.query("c_total", 90_000, 99_000).unwrap();
        assert_eq!(long.tier, "10s");
        assert!(!long.points.is_empty());
    }

    #[test]
    fn histogram_derives_quantile_count_and_sum_series() {
        let h = HistogramSnapshot {
            name: "span_detect_ns".into(),
            count: 4,
            sum: 100,
            buckets: vec![Bucket { lo: 16, count: 4 }],
        };
        let mut db = Tsdb::default();
        db.sample(
            &Snapshot {
                histograms: vec![h],
                ..Default::default()
            },
            0,
        );
        let names: Vec<String> = db.series_names().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"span_detect_ns:p50".to_string()));
        assert!(names.contains(&"span_detect_ns:p99".to_string()));
        assert!(names.contains(&"span_detect_ns:count".to_string()));
        assert!(names.contains(&"span_detect_ns:sum".to_string()));
        let p50 = db.latest("span_detect_ns:p50").unwrap();
        assert!((16.0..=32.0).contains(&p50), "p50 {p50} outside its bucket");
    }

    #[test]
    fn query_json_is_self_describing() {
        let mut db = Tsdb::default();
        db.sample(&counter_snap("c_total", 1), 0);
        let q = db.query("c_total", 60_000, 0).unwrap();
        let json = q.to_json(0, 60_000, db.loss());
        assert!(
            json.starts_with("{\"schema\":\"predator-tsdb/1\""),
            "{json}"
        );
        assert!(json.contains("\"metric\":\"c_total\""));
        assert!(json.contains("\"kind\":\"counter\""));
        assert!(json.contains("\"points\":[[0,1]]"));
        assert!(json.contains("\"loss\":{\"raw_evicted\":0"));
    }

    #[test]
    fn unknown_metric_queries_return_none() {
        let db = Tsdb::default();
        assert!(db.query("nope", 1000, 0).is_none());
        assert!(db.rate("nope", 1000, 0).is_none());
        assert!(db.latest("nope").is_none());
    }
}
