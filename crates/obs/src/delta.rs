//! Snapshot deltas: what changed since the last scrape.
//!
//! The `/snapshot` endpoint of `predator serve` streams *rates*, not
//! absolutes: each scrape returns the difference between the current
//! cumulative [`Snapshot`] and the previous scrape's, tagged with a
//! monotonically increasing scrape epoch. A scraper that keeps only the
//! latest delta still knows the instantaneous event rate; one that sums
//! every delta reconstructs the cumulative snapshot exactly (the property
//! `tests/snapshot_delta.rs` proves).
//!
//! ## Wrap-around
//!
//! Counters and histogram buckets are monotonic `u64`s, but a counter that
//! wraps (or a registry that restarts) would make naive subtraction produce
//! a huge bogus delta. The rule here is per *metric*: if any component of a
//! metric went backwards, the previous value is treated as zero and the
//! delta is the current value — "restart" semantics, the same convention
//! Prometheus `rate()` applies. Deltas are therefore never negative.

use crate::snapshot::{Bucket, HistogramSnapshot, Snapshot};

/// One `/snapshot` scrape: the delta since the previous scrape plus the
/// cumulative snapshot it was derived from, tagged with the scrape epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// Scrape epoch: 1 for the first scrape, +1 per scrape thereafter.
    pub epoch: u64,
    /// Per-metric change since the previous scrape (all-of-cumulative on
    /// the first scrape). Gauges are levels, not rates: the delta carries
    /// their *current* value.
    pub delta: Snapshot,
    /// The cumulative snapshot this delta was derived from.
    pub cumulative: Snapshot,
}

/// Schema tag embedded in [`SnapshotDelta::to_json`] documents.
pub const SNAPSHOT_DELTA_SCHEMA: &str = "predator-snapshot-delta/1";

impl SnapshotDelta {
    /// Serializes to one JSON object:
    /// `{"schema":"predator-snapshot-delta/1","epoch":N,"delta":{...},"cumulative":{...}}`
    /// where both snapshot payloads use the [`Snapshot::to_json`] schema.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"{SNAPSHOT_DELTA_SCHEMA}\",\"epoch\":{},\"delta\":{},\"cumulative\":{}}}",
            self.epoch,
            self.delta.to_json(),
            self.cumulative.to_json()
        )
    }
}

/// Tracks the previous scrape so each call to [`DeltaTracker::scrape`]
/// yields the change since the last one.
#[derive(Debug, Default)]
pub struct DeltaTracker {
    epoch: u64,
    prev: Snapshot,
}

impl DeltaTracker {
    /// A tracker whose first scrape reports everything as new.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scrapes consumed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch and returns the delta from the previous scrape to
    /// `current`, remembering `current` for the next call.
    pub fn scrape(&mut self, current: Snapshot) -> SnapshotDelta {
        self.epoch += 1;
        let delta = delta_snapshots(&self.prev, &current);
        self.prev = current.clone();
        SnapshotDelta {
            epoch: self.epoch,
            delta,
            cumulative: current,
        }
    }
}

/// Monotonic subtraction with restart semantics: the delta from `prev` to
/// `cur`, or `cur` itself if the counter went backwards (wrap / restart).
fn monotone_delta(prev: u64, cur: u64) -> u64 {
    if cur >= prev {
        cur - prev
    } else {
        cur
    }
}

/// Computes the per-metric delta between two cumulative snapshots.
///
/// * **Counters** — `cur - prev` per name, restart semantics on regression;
///   counters absent from `prev` count from zero. Zero deltas are kept so
///   the metric set is stable across scrapes.
/// * **Gauges** — levels, not rates: the delta carries the current value.
/// * **Histograms** — per-bucket subtraction by lower bound, plus
///   `count`/`sum`. If *any* component of a histogram went backwards the
///   whole histogram is treated as restarted (delta = current), keeping
///   buckets, count and sum mutually consistent. Empty-delta buckets are
///   dropped, matching [`Snapshot`]'s non-empty-bucket invariant.
pub fn delta_snapshots(prev: &Snapshot, cur: &Snapshot) -> Snapshot {
    let prev_counter = |name: &str| -> u64 {
        prev.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let counters = cur
        .counters
        .iter()
        .map(|(name, v)| (name.clone(), monotone_delta(prev_counter(name), *v)))
        .collect();

    let gauges = cur.gauges.clone();

    let histograms = cur
        .histograms
        .iter()
        .map(|h| {
            let ph = prev.histograms.iter().find(|p| p.name == h.name);
            delta_histogram(ph, h)
        })
        .collect();

    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

fn delta_histogram(prev: Option<&HistogramSnapshot>, cur: &HistogramSnapshot) -> HistogramSnapshot {
    let restarted = prev.is_some_and(|p| {
        p.count > cur.count
            || p.sum > cur.sum
            || p.buckets.iter().any(|pb| {
                let cb = cur.buckets.iter().find(|b| b.lo == pb.lo);
                cb.map_or(pb.count > 0, |cb| cb.count < pb.count)
            })
    });
    let prev = if restarted { None } else { prev };
    let buckets = cur
        .buckets
        .iter()
        .filter_map(|b| {
            let pc = prev
                .and_then(|p| p.buckets.iter().find(|pb| pb.lo == b.lo))
                .map(|pb| pb.count)
                .unwrap_or(0);
            let d = b.count - pc; // non-restarted prev guarantees pc <= count
            (d > 0).then_some(Bucket { lo: b.lo, count: d })
        })
        .collect();
    HistogramSnapshot {
        name: cur.name.clone(),
        count: cur.count - prev.map_or(0, |p| p.count),
        sum: cur.sum - prev.map_or(0, |p| p.sum),
        buckets,
    }
}

/// Adds `delta` onto `acc` metric-by-metric — the inverse of
/// [`delta_snapshots`], used by tests to prove deltas sum back to the
/// cumulative snapshot. Gauges are levels: the newest value wins.
pub fn accumulate(acc: &mut Snapshot, delta: &Snapshot) {
    for (name, v) in &delta.counters {
        match acc.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, total)) => *total += v,
            None => acc.counters.push((name.clone(), *v)),
        }
    }
    for (name, v) in &delta.gauges {
        match acc.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, cur)) => *cur = *v,
            None => acc.gauges.push((name.clone(), *v)),
        }
    }
    for h in &delta.histograms {
        match acc.histograms.iter_mut().find(|a| a.name == h.name) {
            Some(a) => {
                a.count += h.count;
                a.sum += h.sum;
                for b in &h.buckets {
                    match a.buckets.iter_mut().find(|ab| ab.lo == b.lo) {
                        Some(ab) => ab.count += b.count,
                        None => {
                            a.buckets.push(*b);
                            a.buckets.sort_by_key(|b| b.lo);
                        }
                    }
                }
            }
            None => acc.histograms.push(h.clone()),
        }
    }
    acc.counters.sort_by(|a, b| a.0.cmp(&b.0));
    acc.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    acc.histograms.sort_by(|a, b| a.name.cmp(&b.name));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counter: u64, hist: &[(u64, u64)], sum: u64) -> Snapshot {
        let count = hist.iter().map(|&(_, c)| c).sum();
        Snapshot {
            counters: vec![("c_total".into(), counter)],
            gauges: vec![("g".into(), 7)],
            histograms: vec![HistogramSnapshot {
                name: "h_ns".into(),
                count,
                sum,
                buckets: hist
                    .iter()
                    .map(|&(lo, count)| Bucket { lo, count })
                    .collect(),
            }],
        }
    }

    #[test]
    fn first_scrape_reports_everything() {
        let mut t = DeltaTracker::new();
        let d = t.scrape(snap(5, &[(4, 2)], 9));
        assert_eq!(d.epoch, 1);
        assert_eq!(d.delta, d.cumulative);
    }

    #[test]
    fn epochs_are_monotonic_and_deltas_subtract() {
        let mut t = DeltaTracker::new();
        t.scrape(snap(5, &[(4, 2)], 9));
        let d = t.scrape(snap(8, &[(4, 2), (16, 1)], 27));
        assert_eq!(d.epoch, 2);
        assert_eq!(d.delta.counters, vec![("c_total".to_string(), 3)]);
        let h = &d.delta.histograms[0];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 18);
        assert_eq!(h.buckets, vec![Bucket { lo: 16, count: 1 }]);
    }

    #[test]
    fn gauges_pass_through_as_levels() {
        let mut t = DeltaTracker::new();
        t.scrape(snap(1, &[], 0));
        let d = t.scrape(snap(1, &[], 0));
        assert_eq!(d.delta.gauges, vec![("g".to_string(), 7)]);
    }

    #[test]
    fn counter_regression_restarts_from_current() {
        let mut t = DeltaTracker::new();
        t.scrape(snap(100, &[], 0));
        let d = t.scrape(snap(3, &[], 0));
        assert_eq!(d.delta.counters, vec![("c_total".to_string(), 3)]);
    }

    #[test]
    fn histogram_regression_restarts_whole_histogram() {
        let mut t = DeltaTracker::new();
        t.scrape(snap(0, &[(4, 5)], 20));
        // Bucket 4 went backwards: the whole histogram restarts.
        let d = t.scrape(snap(0, &[(4, 2), (8, 1)], 14));
        let h = &d.delta.histograms[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 14);
        assert_eq!(
            h.buckets,
            vec![Bucket { lo: 4, count: 2 }, Bucket { lo: 8, count: 1 }]
        );
    }

    #[test]
    fn json_document_carries_schema_and_epoch() {
        let mut t = DeltaTracker::new();
        let d = t.scrape(snap(5, &[], 0));
        let json = d.to_json();
        assert!(json.starts_with("{\"schema\":\"predator-snapshot-delta/1\",\"epoch\":1,"));
        assert!(json.contains("\"delta\":{\"counters\":["));
        assert!(json.contains("\"cumulative\":{\"counters\":["));
    }

    #[test]
    fn accumulate_is_the_inverse_of_delta() {
        let states = [
            snap(5, &[(4, 2)], 9),
            snap(8, &[(4, 2), (16, 1)], 27),
            snap(8, &[(4, 3), (16, 1)], 30),
        ];
        let mut t = DeltaTracker::new();
        let mut acc = Snapshot::default();
        for s in &states {
            let d = t.scrape(s.clone());
            accumulate(&mut acc, &d.delta);
        }
        let mut want = states.last().unwrap().clone();
        want.counters.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(acc, want);
    }
}
