//! Bounded, sampled JSONL structured-event sink.
//!
//! Emission is a single relaxed atomic load while the sink is uninstalled
//! (the default), so leaving hooks in hot paths is safe. Once installed via
//! [`EventSink::install`], every `sample_every`-th offered event is written
//! as one JSON line, up to `capacity` lines; the rest are counted as
//! dropped. The format is one object per line:
//!
//! ```json
//! {"seq":12,"t_us":3400,"kind":"line_promoted","line_start":1073741824}
//! ```

use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A typed event field value.
#[derive(Debug, Clone, Copy)]
pub enum FieldVal<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String (JSON-escaped on write).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

struct SinkState {
    out: Box<dyn Write + Send>,
    capacity: u64,
    sample_every: u64,
}

/// The global structured-event sink (see [`events`]).
pub struct EventSink {
    enabled: AtomicBool,
    seq: AtomicU64,
    written: AtomicU64,
    dropped: AtomicU64,
    /// Guards the one-shot `sink_summary` line per installed writer.
    summarized: AtomicBool,
    state: Mutex<Option<SinkState>>,
}

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl EventSink {
    const fn new() -> Self {
        EventSink {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            written: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            summarized: AtomicBool::new(false),
            state: Mutex::new(None),
        }
    }

    /// Installs a writer: every `sample_every`-th offered event is written,
    /// up to `capacity` lines total. Replaces any previous writer.
    pub fn install(&self, out: Box<dyn Write + Send>, capacity: u64, sample_every: u64) {
        process_start(); // anchor t_us at (or before) installation
        let mut state = self.state.lock().unwrap();
        *state = Some(SinkState {
            out,
            capacity,
            sample_every: sample_every.max(1),
        });
        self.summarized.store(false, Ordering::Relaxed);
        self.enabled.store(true, Ordering::Release);
    }

    /// True once a writer is installed (cheap hot-path pre-check).
    #[inline]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "obs-off")]
        return false;
        #[cfg(not(feature = "obs-off"))]
        self.enabled.load(Ordering::Relaxed)
    }

    /// Offers one event. No-op until installed (and under `obs-off`).
    pub fn emit(&self, kind: &str, fields: &[(&str, FieldVal)]) {
        if !self.enabled() {
            return;
        }
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let t_us = process_start().elapsed().as_micros() as u64;
        let mut state = self.state.lock().unwrap();
        let Some(sink) = state.as_mut() else { return };
        if !n.is_multiple_of(sink.sample_every) {
            return;
        }
        if self.written.load(Ordering::Relaxed) >= sink.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut line = String::with_capacity(96);
        let _ = write!(line, "{{\"seq\":{n},\"t_us\":{t_us},\"kind\":\"");
        escape_into(&mut line, kind);
        line.push('"');
        for (key, val) in fields {
            line.push_str(",\"");
            escape_into(&mut line, key);
            line.push_str("\":");
            match val {
                FieldVal::U64(v) => {
                    let _ = write!(line, "{v}");
                }
                FieldVal::I64(v) => {
                    let _ = write!(line, "{v}");
                }
                FieldVal::F64(v) if v.is_finite() => {
                    let _ = write!(line, "{v}");
                }
                FieldVal::F64(_) => line.push_str("null"),
                FieldVal::Str(s) => {
                    line.push('"');
                    escape_into(&mut line, s);
                    line.push('"');
                }
                FieldVal::Bool(b) => {
                    let _ = write!(line, "{b}");
                }
            }
        }
        line.push_str("}\n");
        if sink.out.write_all(line.as_bytes()).is_ok() {
            self.written.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Flushes the underlying writer (call before process exit). The first
    /// flush per installed writer appends a `sink_summary` line with the
    /// written/dropped counts, so sampled-away or capacity-capped loss is
    /// visible in the trace itself rather than silent. The summary bypasses
    /// the capacity bound (it is accounting, not an event) and does not
    /// count toward `written`.
    pub fn flush(&self) {
        if let Some(sink) = self.state.lock().unwrap().as_mut() {
            if self.enabled() && !self.summarized.swap(true, Ordering::Relaxed) {
                let seq = self.seq.load(Ordering::Relaxed);
                let t_us = process_start().elapsed().as_micros() as u64;
                let written = self.written.load(Ordering::Relaxed);
                let dropped = self.dropped.load(Ordering::Relaxed);
                let line = format!(
                    "{{\"seq\":{seq},\"t_us\":{t_us},\"kind\":\"sink_summary\",\
                     \"written\":{written},\"dropped\":{dropped}}}\n"
                );
                let _ = sink.out.write_all(line.as_bytes());
            }
            let _ = sink.out.flush();
        }
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Events suppressed by the capacity bound or write errors (sampling
    /// skips are not counted — they are policy, not loss).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The process-global event sink. Disabled (near-zero cost) until the CLI
/// installs a writer for `--trace-events`.
pub fn events() -> &'static EventSink {
    static SINK: EventSink = EventSink::new();
    &SINK
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Write` handing bytes to a shared buffer, for assertions.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn lines(buf: &SharedBuf) -> Vec<String> {
        String::from_utf8(buf.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn uninstalled_sink_is_silent() {
        let sink = EventSink::new();
        sink.emit("nothing", &[]);
        assert_eq!(sink.written(), 0);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn writes_jsonl_with_escaping_and_bounds() {
        let sink = EventSink::new();
        let buf = SharedBuf::default();
        sink.install(Box::new(buf.clone()), 2, 1);
        sink.emit(
            "line_promoted",
            &[
                ("line_start", FieldVal::U64(64)),
                ("note", FieldVal::Str("a\"b")),
            ],
        );
        sink.emit(
            "invalidation",
            &[("tid", FieldVal::I64(-1)), ("hot", FieldVal::Bool(true))],
        );
        sink.emit("over_capacity", &[]);
        let ls = lines(&buf);
        assert_eq!(ls.len(), 2);
        assert!(ls[0].contains("\"kind\":\"line_promoted\""));
        assert!(ls[0].contains("\"line_start\":64"));
        assert!(ls[0].contains("a\\\"b"));
        assert!(ls[1].contains("\"hot\":true"));
        assert_eq!(sink.written(), 2);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn flush_appends_one_sink_summary() {
        let sink = EventSink::new();
        let buf = SharedBuf::default();
        sink.install(Box::new(buf.clone()), 1, 1);
        sink.emit("a", &[]);
        sink.emit("b", &[]); // over capacity: dropped
        sink.flush();
        sink.flush(); // idempotent: only one summary per install
        let ls = lines(&buf);
        assert_eq!(ls.len(), 2);
        assert!(ls[1].contains("\"kind\":\"sink_summary\""), "{}", ls[1]);
        assert!(ls[1].contains("\"written\":1"), "{}", ls[1]);
        assert!(ls[1].contains("\"dropped\":1"), "{}", ls[1]);
        // A fresh install re-arms the summary.
        let buf2 = SharedBuf::default();
        sink.install(Box::new(buf2.clone()), 10, 1);
        sink.flush();
        assert!(lines(&buf2)[0].contains("sink_summary"));
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn sampling_keeps_every_nth_event() {
        let sink = EventSink::new();
        let buf = SharedBuf::default();
        sink.install(Box::new(buf.clone()), 1000, 10);
        for _ in 0..95 {
            sink.emit("tick", &[]);
        }
        assert_eq!(lines(&buf).len(), 10, "events 0,10,...,90");
        assert_eq!(sink.dropped(), 0, "sampling skips are not drops");
    }
}
