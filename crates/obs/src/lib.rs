//! `predator-obs` — std-only observability for the detector pipeline.
//!
//! The PREDATOR evaluation (§4, Figures 7–10) is about *where time and
//! memory go*: instrumentation cost, sampling rate, tracked-line fraction,
//! prediction-unit churn. This crate gives every pipeline stage a shared,
//! dependency-free place to record that:
//!
//! * [`Registry`] — named metrics: monotonic [`Counter`]s (per-thread
//!   sharded and cache-line padded, dogfooding the paper's own lesson),
//!   [`Gauge`]s, and log2-bucketed [`Histogram`]s for latencies and sizes.
//! * [`span`] / [`Histogram::start_timer`] — RAII wall-time timers for the
//!   pipeline phases (parse → instrument → interpret → detect → predict →
//!   report), recorded as `span_<phase>_ns` histograms.
//! * [`events`] — a bounded, sampled JSONL structured-event sink for the
//!   interesting state transitions (line promoted, invalidation recorded,
//!   prediction unit spawned/verified/discarded, callsite attributed).
//! * [`recorder`] — the flight recorder: a bounded ring of recent per-line
//!   access and invalidation records (who wrote, who got invalidated, which
//!   words, in what order) powering `predator explain` timelines.
//! * [`timeline`] — a bounded Chrome trace-event buffer (`--trace-timeline`)
//!   turning phase spans, interpreter thread activity, and detector events
//!   into a Perfetto-loadable JSON file with flow arrows from invalidating
//!   writes to their victim threads.
//! * [`profile`] — the instruction-count-triggered sampling self-profiler
//!   behind `predator profile`: collapsed IR call stacks plus runtime
//!   cost-center attribution (handle-access, tracking, recorder, MESI).
//! * [`serve`] — a hand-rolled zero-dep HTTP/1.1 server over `std::net`,
//!   the transport behind `predator serve`'s `/metrics`, `/health`,
//!   `/report` and `/snapshot` endpoints (plus the matching GET client).
//! * [`delta`] — snapshot deltas with scrape epochs and wrap-around-safe
//!   subtraction: what `/snapshot` streams between scrapes.
//! * [`tsdb`] — the embedded metric time-series store: bounded per-series
//!   rings of recent samples with 10s/60s downsampling tiers, loss
//!   accounting, and restart-safe `rate()` — the history behind `/query`.
//! * [`alerts`] — the rule-driven alerting engine (`docs/alerts.rules`)
//!   evaluated over the tsdb each watchdog tick, with `for:` hysteresis
//!   and a pending → firing → resolved lifecycle behind `/alerts`.
//!
//! Everything hangs off a process-global registry ([`global`]) so call
//! sites in any crate can grab a handle without plumbing; handles are
//! cheap `Arc` clones meant to be cached at construction time on hot paths.
//!
//! The `obs-off` cargo feature compiles every hook to a no-op so the cost
//! of the layer itself can be measured (see the `detector_hotpath` bench).

pub mod alerts;
pub mod delta;
mod events;
mod metrics;
pub mod profile;
pub mod recorder;
pub mod serve;
mod snapshot;
mod span;
pub mod timeline;
pub mod tsdb;

pub use alerts::{parse_rules, AlertEngine, AlertState, LintError, Rule, Severity, Transition};
pub use delta::{accumulate, delta_snapshots, DeltaTracker, SnapshotDelta};
pub use events::{events, EventSink, FieldVal};
pub use metrics::{
    bucket_index, bucket_lower_bound, global, Counter, Gauge, Histogram, Registry, Timer,
    COUNTER_SHARDS,
};
pub use profile::{profiler, CostCenter, Profiler};
pub use recorder::{FlightRecorder, Rec, RecKind};
pub use serve::{http_get, http_get_auth, HttpServer, Request, Response, ServerHandle};
pub use snapshot::{escape_label_value, prom_info_metric, Bucket, HistogramSnapshot, Snapshot};
pub use span::{span, Span};
pub use timeline::{host_lane, timeline, ArgVal, Timeline};
pub use tsdb::{Point, QueryResult, SeriesKind, Tsdb, TsdbConfig, TsdbLoss};

/// True when the crate was compiled with the `obs-off` feature (all hooks
/// are no-ops and snapshots report zeros).
pub const fn disabled() -> bool {
    cfg!(feature = "obs-off")
}

/// A lazily-initialized `&'static Counter` from the global registry —
/// the cached-handle pattern for hot paths without a struct to hang the
/// handle on: `obs::static_counter!("mesi_accesses_total").inc()`.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// How many increments a [`hot_counter_inc!`] call site accumulates in its
/// thread-local tally before flushing to the shared counter. Snapshots may
/// under-report by up to `HOT_BATCH - 1` per thread per call site.
pub const HOT_BATCH: u64 = 64;

/// A sampled counter increment for hot paths: counts into a plain
/// thread-local cell and flushes to the sharded global counter every
/// [`HOT_BATCH`] increments, so the per-event cost is a TLS increment and a
/// predictable branch instead of an atomic RMW.
#[macro_export]
macro_rules! hot_counter_inc {
    ($name:expr) => {{
        if !$crate::disabled() {
            ::std::thread_local! {
                static TALLY: ::std::cell::Cell<u64> = const { ::std::cell::Cell::new(0) };
            }
            TALLY.with(|t| {
                let n = t.get() + 1;
                if n >= $crate::HOT_BATCH {
                    $crate::static_counter!($name).add(n);
                    t.set(0);
                } else {
                    t.set(n);
                }
            });
        }
    }};
}

/// A lazily-initialized `&'static Gauge` from the global registry.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// A lazily-initialized `&'static Histogram` from the global registry.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

#[cfg(test)]
mod macro_tests {
    #[test]
    #[cfg_attr(feature = "obs-off", ignore)]
    fn hot_counter_flushes_in_batches() {
        // One call site: the macro's thread-local tally is per expansion.
        fn bump() {
            crate::hot_counter_inc!("test_hot_counter_flush_total");
        }
        let name = "test_hot_counter_flush_total";
        // Below a full batch nothing reaches the shared counter...
        for _ in 0..crate::HOT_BATCH - 1 {
            bump();
        }
        assert_eq!(crate::global().counter(name).get(), 0);
        // ...the batch-completing increment flushes the whole tally.
        bump();
        assert_eq!(crate::global().counter(name).get(), crate::HOT_BATCH);
    }

    #[test]
    fn static_handles_point_at_the_global_registry() {
        crate::static_counter!("test_static_handle_total").add(3);
        assert_eq!(
            crate::global().counter("test_static_handle_total").get(),
            if crate::disabled() { 0 } else { 3 }
        );
    }
}
