//! RAII phase timers.

use crate::metrics::{global, Histogram};
#[cfg(not(feature = "obs-off"))]
use crate::timeline::{host_lane, timeline};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// An in-flight phase timing from [`span`]; records on drop.
pub struct Span {
    #[allow(dead_code)]
    hist: Option<Histogram>,
    #[cfg(not(feature = "obs-off"))]
    start: Instant,
    /// Set when the trace timeline was armed at open: the phase name whose
    /// `E` event must be emitted on drop (on the same host lane).
    #[cfg(not(feature = "obs-off"))]
    tl_phase: Option<String>,
}

/// Times a pipeline phase: elapsed wall nanoseconds are recorded into the
/// global histogram `span_<phase>_ns` when the returned guard drops, and —
/// when the trace timeline is armed — a `B`/`E` pair lands on the calling
/// host thread's timeline lane.
///
/// ```
/// {
///     let _span = predator_obs::span("detect");
///     // ... phase work ...
/// } // recorded here
/// ```
///
/// Phases are coarse (a handful per run), so the name lookup per call is
/// fine; per-event hot paths should cache a [`Histogram`] handle and use
/// [`Histogram::start_timer`] instead.
pub fn span(phase: &str) -> Span {
    #[cfg(not(feature = "obs-off"))]
    {
        let tl_phase = if timeline().enabled() {
            timeline().begin(phase, "phase", host_lane());
            Some(phase.to_string())
        } else {
            None
        };
        Span {
            hist: Some(global().histogram(&format!("span_{phase}_ns"))),
            start: Instant::now(),
            tl_phase,
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = (phase, global);
        Span { hist: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        {
            if let Some(h) = &self.hist {
                h.record(self.start.elapsed().as_nanos() as u64);
            }
            if let Some(phase) = self.tl_phase.take() {
                timeline().end(&phase, "phase", host_lane());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn span_records_into_named_histogram() {
        {
            let _s = span("unit_test_phase");
        }
        let h = global().histogram("span_unit_test_phase_ns");
        assert!(h.count() >= 1);
    }

    #[test]
    fn span_is_a_noop_when_disabled() {
        // Must not panic either way; the obs-off build records nothing.
        let _s = span("disabled_phase");
    }
}
