//! Chrome trace-event timeline: phase spans, per-thread interpreter
//! activity, and detector events as a Perfetto-loadable JSON file.
//!
//! Like the [`crate::events`] sink and the flight recorder, the timeline is
//! a process-global singleton that costs one relaxed atomic load until the
//! CLI installs it (`--trace-timeline <path>`), and it buffers into a
//! *bounded* in-memory vector with counted loss — a full buffer drops
//! events and says so in the emitted file instead of growing without bound
//! or silently truncating.
//!
//! Lane model: simulated interpreter threads get `tid` lanes `0..1000`
//! (their detector-visible thread ids); host OS threads running pipeline
//! phases get dense lanes starting at [`HOST_LANE_BASE`]. Invalidations are
//! linked to their victims with `s`/`f` async flow arrows sharing an id, so
//! Perfetto draws an arrow from the invalidating write to the victim
//! thread's lane.
//!
//! [`Timeline::write_json`] post-processes the buffer so the output is
//! structurally valid even for truncated runs: events are sorted by
//! timestamp, unmatched `B` events are closed with synthesized `E`s,
//! orphaned `E`s (whose `B` fell to the capacity bound) are discarded, and
//! an `otherData` block carries the recorded/dropped accounting.

use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// First `tid` lane used for host OS threads; simulated-thread lanes are
/// the detector [`ThreadId`]s below this.
pub const HOST_LANE_BASE: u64 = 1000;

/// Default event-buffer capacity installed by the CLI.
pub const DEFAULT_CAPACITY: usize = 262_144;

/// A typed trace-event argument value.
#[derive(Debug, Clone)]
pub enum ArgVal {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String (JSON-escaped on write).
    Str(String),
}

/// Chrome trace-event phase of a buffered event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ph {
    /// Duration begin (`"B"`).
    Begin,
    /// Duration end (`"E"`).
    End,
    /// Instant (`"i"`, thread scope).
    Instant,
    /// Async flow start (`"s"`).
    FlowStart,
    /// Async flow finish (`"f"`, binding point `e`).
    FlowFinish,
}

#[derive(Debug)]
struct Ev {
    name: String,
    cat: &'static str,
    ph: Ph,
    ts_ns: u64,
    tid: u64,
    /// Flow id for `s`/`f` events.
    id: u64,
    args: Vec<(&'static str, ArgVal)>,
}

struct State {
    events: Vec<Ev>,
    capacity: usize,
}

/// The global trace timeline (see [`timeline`]).
pub struct Timeline {
    enabled: AtomicBool,
    recorded: AtomicU64,
    dropped: AtomicU64,
    flow_ids: AtomicU64,
    state: Mutex<Option<State>>,
}

fn anchor() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Timeline {
    const fn new() -> Self {
        Timeline {
            enabled: AtomicBool::new(false),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            flow_ids: AtomicU64::new(0),
            state: Mutex::new(None),
        }
    }

    /// Arms the timeline with a bounded event buffer. Replaces any
    /// previously buffered events. No-op under `obs-off`.
    pub fn install(&self, capacity: usize) {
        if crate::disabled() {
            return;
        }
        anchor(); // pin t=0 at (or before) installation
        let capacity = capacity.max(16);
        let mut state = self.state.lock().unwrap();
        *state = Some(State {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
        });
        self.recorded.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.enabled.store(true, Ordering::Release);
    }

    /// True once installed (cheap hot-path pre-check).
    #[inline]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "obs-off")]
        return false;
        #[cfg(not(feature = "obs-off"))]
        self.enabled.load(Ordering::Relaxed)
    }

    fn now_ns(&self) -> u64 {
        anchor().elapsed().as_nanos() as u64
    }

    fn push(&self, ev: Ev) {
        if !self.enabled() {
            return;
        }
        let mut state = self.state.lock().unwrap();
        let Some(st) = state.as_mut() else { return };
        if st.events.len() >= st.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            st.events.push(ev);
            self.recorded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Opens a duration span named `name` on lane `tid`.
    pub fn begin(&self, name: &str, cat: &'static str, tid: u64) {
        if !self.enabled() {
            return;
        }
        let ts_ns = self.now_ns();
        self.push(Ev {
            name: name.to_string(),
            cat,
            ph: Ph::Begin,
            ts_ns,
            tid,
            id: 0,
            args: Vec::new(),
        });
    }

    /// Closes the innermost open span named `name` on lane `tid`.
    pub fn end(&self, name: &str, cat: &'static str, tid: u64) {
        if !self.enabled() {
            return;
        }
        let ts_ns = self.now_ns();
        self.push(Ev {
            name: name.to_string(),
            cat,
            ph: Ph::End,
            ts_ns,
            tid,
            id: 0,
            args: Vec::new(),
        });
    }

    /// Records a thread-scoped instant event on lane `tid`.
    pub fn instant(
        &self,
        name: &str,
        cat: &'static str,
        tid: u64,
        args: Vec<(&'static str, ArgVal)>,
    ) {
        if !self.enabled() {
            return;
        }
        let ts_ns = self.now_ns();
        self.push(Ev {
            name: name.to_string(),
            cat,
            ph: Ph::Instant,
            ts_ns,
            tid,
            id: 0,
            args,
        });
    }

    /// Allocates a fresh flow-arrow id.
    pub fn new_flow(&self) -> u64 {
        self.flow_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Draws an async flow arrow `from_tid → to_tid` (e.g. invalidating
    /// write → victim thread). The finish is stamped 1ns after the start so
    /// the arrow always points forward in time.
    pub fn flow(&self, name: &str, cat: &'static str, from_tid: u64, to_tid: u64, id: u64) {
        if !self.enabled() {
            return;
        }
        let ts_ns = self.now_ns();
        self.push(Ev {
            name: name.to_string(),
            cat,
            ph: Ph::FlowStart,
            ts_ns,
            tid: from_tid,
            id,
            args: Vec::new(),
        });
        self.push(Ev {
            name: name.to_string(),
            cat,
            ph: Ph::FlowFinish,
            ts_ns: ts_ns + 1,
            tid: to_tid,
            id,
            args: Vec::new(),
        });
    }

    /// Events buffered so far.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events lost to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains the buffer into Chrome trace-event JSON and disarms the
    /// timeline. Structural guarantees for the emitted file:
    ///
    /// * `traceEvents` are sorted by timestamp (stable, so same-ts events
    ///   keep emission order) — `ts` is monotonic per lane;
    /// * every `B` has a matching `E` on its lane (unmatched opens from a
    ///   panic or truncation are closed with synthesized `E`s at the final
    ///   timestamp, counted in `otherData.synthesized_ends`);
    /// * `E`s whose `B` fell to the capacity bound are discarded
    ///   (`otherData.orphan_ends_discarded`);
    /// * lanes get `thread_name` metadata (`sim-thread-N` / `host-N`);
    /// * `otherData` carries `recorded` / `dropped` loss accounting.
    ///
    /// Writes a valid empty trace when nothing was installed (obs-off or a
    /// run without `--trace-timeline`).
    pub fn write_json(&self, out: &mut dyn Write) -> io::Result<()> {
        self.enabled.store(false, Ordering::Release);
        let taken = self.state.lock().unwrap().take();
        let mut events = taken.map(|s| s.events).unwrap_or_default();
        events.sort_by_key(|e| e.ts_ns);

        // Per-lane open-span bookkeeping: close unmatched B, drop orphan E.
        let mut open: Vec<(u64, Vec<String>)> = Vec::new(); // (tid, stack of names)
        let mut orphans = 0u64;
        let mut keep: Vec<Ev> = Vec::with_capacity(events.len());
        let last_ts = events.last().map(|e| e.ts_ns).unwrap_or(0);
        for ev in events {
            let idx = match open.iter().position(|(t, _)| *t == ev.tid) {
                Some(i) => i,
                None => {
                    open.push((ev.tid, Vec::new()));
                    open.len() - 1
                }
            };
            let lane = &mut open[idx].1;
            match ev.ph {
                Ph::Begin => {
                    lane.push(ev.name.clone());
                    keep.push(ev);
                }
                Ph::End => {
                    // LIFO discipline: an E must close the innermost open B
                    // of the same name, else its B was dropped.
                    if lane.last().is_some_and(|n| *n == ev.name) {
                        lane.pop();
                        keep.push(ev);
                    } else {
                        orphans += 1;
                    }
                }
                _ => keep.push(ev),
            }
        }
        let mut synthesized = 0u64;
        for (tid, stack) in &mut open {
            while let Some(name) = stack.pop() {
                synthesized += 1;
                keep.push(Ev {
                    name,
                    cat: "phase",
                    ph: Ph::End,
                    ts_ns: last_ts,
                    tid: *tid,
                    id: 0,
                    args: Vec::new(),
                });
            }
        }

        let mut body = String::with_capacity(keep.len() * 96 + 256);
        body.push_str("{\"traceEvents\":[");
        // Lane metadata first: process name plus one thread_name per lane.
        body.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"predator\"}}",
        );
        let mut lanes: Vec<u64> = keep.iter().map(|e| e.tid).collect();
        lanes.sort_unstable();
        lanes.dedup();
        for tid in &lanes {
            let label = if *tid >= HOST_LANE_BASE {
                format!("host-{}", tid - HOST_LANE_BASE)
            } else {
                format!("sim-thread-{tid}")
            };
            let _ = write!(
                body,
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            );
        }
        for ev in &keep {
            body.push_str(",{\"name\":\"");
            escape_into(&mut body, &ev.name);
            let _ = write!(body, "\",\"cat\":\"{}\",\"ph\":\"", ev.cat);
            body.push_str(match ev.ph {
                Ph::Begin => "B",
                Ph::End => "E",
                Ph::Instant => "i",
                Ph::FlowStart => "s",
                Ph::FlowFinish => "f",
            });
            // ts is fractional microseconds; keep nanosecond precision.
            let _ = write!(
                body,
                "\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03}",
                ev.tid,
                ev.ts_ns / 1000,
                ev.ts_ns % 1000
            );
            match ev.ph {
                Ph::FlowStart => {
                    let _ = write!(body, ",\"id\":{}", ev.id);
                }
                Ph::FlowFinish => {
                    let _ = write!(body, ",\"id\":{},\"bp\":\"e\"", ev.id);
                }
                Ph::Instant => body.push_str(",\"s\":\"t\""),
                _ => {}
            }
            if !ev.args.is_empty() {
                body.push_str(",\"args\":{");
                for (i, (key, val)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push('"');
                    escape_into(&mut body, key);
                    body.push_str("\":");
                    match val {
                        ArgVal::U64(v) => {
                            let _ = write!(body, "{v}");
                        }
                        ArgVal::I64(v) => {
                            let _ = write!(body, "{v}");
                        }
                        ArgVal::Str(s) => {
                            body.push('"');
                            escape_into(&mut body, s);
                            body.push('"');
                        }
                    }
                }
                body.push('}');
            }
            body.push('}');
        }
        let _ = write!(
            body,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\
             \"recorded\":{},\"dropped\":{},\"synthesized_ends\":{synthesized},\
             \"orphan_ends_discarded\":{orphans}}}}}",
            self.recorded.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        );
        out.write_all(body.as_bytes())?;
        out.flush()
    }
}

/// The process-global trace timeline. Disarmed (near-zero cost) until the
/// CLI installs it for `--trace-timeline`.
pub fn timeline() -> &'static Timeline {
    static TL: Timeline = Timeline::new();
    &TL
}

/// The host-thread lane for the calling OS thread: a dense id starting at
/// [`HOST_LANE_BASE`], assigned on first use.
pub fn host_lane() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static LANE: u64 = HOST_LANE_BASE + NEXT.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|l| *l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Timeline {
        Timeline::new()
    }

    fn render(tl: &Timeline) -> String {
        let mut buf = Vec::new();
        tl.write_json(&mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn uninstalled_timeline_is_silent_but_valid() {
        let tl = fresh();
        tl.begin("x", "phase", 0);
        assert_eq!(tl.recorded(), 0);
        let json = render(&tl);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"recorded\":0"));
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn spans_round_trip_with_metadata() {
        let tl = fresh();
        tl.install(64);
        tl.begin("interpret", "phase", HOST_LANE_BASE);
        tl.instant(
            "invalidation",
            "detector",
            2,
            vec![("line", ArgVal::U64(64))],
        );
        tl.end("interpret", "phase", HOST_LANE_BASE);
        let json = render(&tl);
        assert!(json.contains("\"name\":\"interpret\",\"cat\":\"phase\",\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"sim-thread-2\""));
        assert!(json.contains("\"name\":\"host-0\""));
        assert!(json.contains("\"args\":{\"line\":64}"));
        assert!(json.contains("\"synthesized_ends\":0"));
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn unmatched_begin_is_closed_at_flush() {
        let tl = fresh();
        tl.install(64);
        tl.begin("detect", "phase", HOST_LANE_BASE);
        tl.instant("later", "detector", HOST_LANE_BASE, Vec::new());
        let json = render(&tl);
        assert!(json.contains("\"synthesized_ends\":1"), "{json}");
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn orphan_end_is_discarded() {
        let tl = fresh();
        tl.install(64);
        tl.end("never_opened", "phase", 3);
        let json = render(&tl);
        assert!(json.contains("\"orphan_ends_discarded\":1"), "{json}");
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 0);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn capacity_bound_counts_loss() {
        let tl = fresh();
        tl.install(16); // install clamps to >= 16
        for i in 0..40u64 {
            tl.instant("tick", "detector", i % 2, Vec::new());
        }
        assert_eq!(tl.recorded(), 16);
        assert_eq!(tl.dropped(), 24);
        let json = render(&tl);
        assert!(json.contains("\"recorded\":16,\"dropped\":24"), "{json}");
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn flow_arrows_share_an_id_and_point_forward() {
        let tl = fresh();
        tl.install(64);
        let id = tl.new_flow();
        tl.flow("invalidate", "detector", 0, 1, id);
        let json = render(&tl);
        assert!(
            json.contains("\"ph\":\"s\",\"pid\":1,\"tid\":0,\"ts\":"),
            "{json}"
        );
        assert!(json.contains("\"bp\":\"e\""), "{json}");
        assert_eq!(json.matches(&format!("\"id\":{id}")).count(), 2);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn write_json_disarms_and_drains() {
        let tl = fresh();
        tl.install(64);
        tl.instant("once", "detector", 0, Vec::new());
        let first = render(&tl);
        assert!(first.contains("\"name\":\"once\""));
        assert!(!tl.enabled());
        let second = render(&tl);
        assert!(!second.contains("\"name\":\"once\""), "buffer drained");
    }
}
