//! A hand-rolled, zero-dependency HTTP/1.1 server over `std::net` — the
//! transport under `predator serve`.
//!
//! Scope is deliberately small: GET-only, one request per connection
//! (`Connection: close`), exact-path routing, bounded request heads. That
//! covers every scraper that matters here (Prometheus, `curl`, the
//! `predator stats --url` client below) without pulling in an async runtime
//! or an HTTP crate the offline build couldn't vendor anyway.
//!
//! The accept loop polls a stop flag between non-blocking accepts, so a
//! [`ServerHandle`] can shut the thread down promptly — the graceful-exit
//! path `predator serve` takes on SIGINT/SIGTERM.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head (request line + headers) the server reads.
const MAX_REQUEST_HEAD: usize = 8 * 1024;
/// Per-connection socket timeout: a stalled scraper cannot wedge the serve
/// thread for longer than this.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A parsed request: method is always GET by the time a handler runs.
#[derive(Debug, Clone)]
pub struct Request {
    /// Decoded path, without the query string.
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
}

/// A response to serialize back to the client.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Extra headers (name, value), written verbatim after the standard set.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// 200 with `application/json`.
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
            headers: Vec::new(),
        }
    }

    /// 200 with the Prometheus text exposition content type.
    pub fn prometheus(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
            headers: Vec::new(),
        }
    }

    /// 200 with `text/plain`.
    pub fn text(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/plain",
            body: body.into_bytes(),
            headers: Vec::new(),
        }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, msg: &str) -> Self {
        Response {
            status,
            content_type: "text/plain",
            body: format!("{msg}\n").into_bytes(),
            headers: Vec::new(),
        }
    }

    /// 401 with the `WWW-Authenticate: Bearer` challenge the bearer-auth
    /// gate answers unauthenticated requests with.
    pub fn unauthorized() -> Self {
        let mut r = Response::error(401, "missing or invalid bearer token");
        r.headers
            .push(("WWW-Authenticate", "Bearer realm=\"predator\"".to_string()));
        r
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            401 => "Unauthorized",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        }
    }
}

type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

/// A bound-but-not-yet-serving HTTP server: register routes, then
/// [`spawn`](HttpServer::spawn) it onto its own thread.
pub struct HttpServer {
    listener: TcpListener,
    routes: Vec<(String, Handler)>,
    auth_token: Option<String>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(HttpServer {
            listener,
            routes: Vec::new(),
            auth_token: None,
        })
    }

    /// Requires `Authorization: Bearer <token>` on every route except
    /// `/health` (liveness probes stay unauthenticated). `None` disables
    /// the gate.
    pub fn with_auth(mut self, token: Option<String>) -> Self {
        self.auth_token = token;
        self
    }

    /// The bound address — the source of truth for ephemeral ports.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// Registers a handler for an exact path (`"/metrics"`).
    pub fn route(
        mut self,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push((path.to_string(), Box::new(handler)));
        self
    }

    /// Starts the accept loop on a background thread and returns its handle.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        self.listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("predator-serve".into())
            .spawn(move || self.run(&stop2))?;
        Ok(ServerHandle {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    fn run(self, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _timer = crate::static_histogram!("serve_request_ns").start_timer();
                    crate::static_counter!("serve_requests_total").inc();
                    if self.handle(stream).is_err() {
                        crate::static_counter!("serve_request_errors_total").inc();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    crate::static_counter!("serve_request_errors_total").inc();
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    }

    fn handle(&self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let mut stream = stream;
        let response = match read_request(&mut stream) {
            Ok((method, target, auth)) if method == "GET" => {
                let (path, query) = match target.split_once('?') {
                    Some((p, q)) => (p.to_string(), Some(q.to_string())),
                    None => (target, None),
                };
                if !self.authorized(&path, auth.as_deref()) {
                    write_response(&mut stream, &Response::unauthorized())?;
                    return Ok(());
                }
                let req = Request { path, query };
                match self.routes.iter().find(|(p, _)| *p == req.path) {
                    Some((_, h)) => h(&req),
                    None => Response::error(404, "no such endpoint"),
                }
            }
            Ok((method, _, _)) => Response::error(405, &format!("method {method} not allowed")),
            Err(msg) => Response::error(400, msg),
        };
        write_response(&mut stream, &response)
    }

    fn authorized(&self, path: &str, auth: Option<&str>) -> bool {
        let Some(token) = &self.auth_token else {
            return true;
        };
        if path == "/health" {
            return true;
        }
        match auth.and_then(|a| a.strip_prefix("Bearer ")) {
            Some(presented) => constant_time_eq(presented.trim(), token),
            None => false,
        }
    }
}

/// Compares token strings without early exit, so response timing does not
/// leak how many prefix bytes matched.
fn constant_time_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().min(b.len()) {
        diff |= (a[i] ^ b[i]) as usize;
    }
    diff == 0
}

/// Reads the request head and returns `(method, target, authorization)`.
fn read_request(stream: &mut TcpStream) -> Result<(String, String, Option<String>), &'static str> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf).map_err(|_| "read failed")?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_REQUEST_HEAD {
            return Err("request head too large");
        }
    }
    let text = std::str::from_utf8(&head).map_err(|_| "request not UTF-8")?;
    let mut lines = text.lines();
    let line = lines.next().ok_or("empty request")?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("malformed request line")?;
    let target = parts.next().ok_or("malformed request line")?;
    let auth = lines.take_while(|l| !l.is_empty()).find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case("authorization")
            .then(|| value.trim().to_string())
    });
    Ok((method.to_string(), target.to_string(), auth))
}

fn write_response(stream: &mut TcpStream, r: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        r.status,
        r.reason(),
        r.content_type,
        r.body.len()
    );
    for (name, value) in &r.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&r.body)?;
    stream.flush()
}

/// A running server: keeps the accept thread alive until
/// [`stop`](ServerHandle::stop) (or drop) joins it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to exit and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A minimal blocking HTTP GET client for the server above (and any other
/// text endpoint): returns `(status, body)`. `addr` is `host:port`.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    http_get_auth(addr, path, timeout, None)
}

/// [`http_get`] with an optional bearer token (`Authorization: Bearer ...`).
pub fn http_get_auth(
    addr: &str,
    path: &str,
    timeout: Duration,
    token: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let auth_header = match token {
        Some(t) => format!("Authorization: Bearer {t}\r\n"),
        None => String::new(),
    };
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\n{auth_header}Connection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "response not UTF-8"))?;
    let (head, body) = text.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header/body split")
    })?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> ServerHandle {
        HttpServer::bind("127.0.0.1:0")
            .unwrap()
            .route("/ping", |_| Response::text("pong".into()))
            .route("/echo", |req: &Request| {
                Response::text(req.query.clone().unwrap_or_default())
            })
            .spawn()
            .unwrap()
    }

    #[test]
    fn serves_a_registered_route() {
        let s = server();
        let (status, body) = http_get(&s.addr().to_string(), "/ping", IO_TIMEOUT).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "pong");
        s.stop();
    }

    #[test]
    fn query_strings_reach_the_handler() {
        let s = server();
        let (status, body) = http_get(&s.addr().to_string(), "/echo?a=1", IO_TIMEOUT).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "a=1");
    }

    #[test]
    fn unknown_path_is_404_and_post_is_405() {
        let s = server();
        let addr = s.addr().to_string();
        let (status, _) = http_get(&addr, "/nope", IO_TIMEOUT).unwrap();
        assert_eq!(status, 404);

        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"POST /ping HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
    }

    #[test]
    fn bearer_auth_gates_everything_but_health() {
        let s = HttpServer::bind("127.0.0.1:0")
            .unwrap()
            .with_auth(Some("s3cret".into()))
            .route("/ping", |_| Response::text("pong".into()))
            .route("/health", |_| Response::text("ok".into()))
            .spawn()
            .unwrap();
        let addr = s.addr().to_string();

        // No token: 401 with the Bearer challenge.
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 401"), "{out}");
        assert!(out.contains("WWW-Authenticate: Bearer"), "{out}");

        // Wrong token: still 401.
        let (status, _) = http_get_auth(&addr, "/ping", IO_TIMEOUT, Some("nope")).unwrap();
        assert_eq!(status, 401);

        // Right token: through.
        let (status, body) = http_get_auth(&addr, "/ping", IO_TIMEOUT, Some("s3cret")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "pong");

        // /health stays open for liveness probes.
        let (status, _) = http_get(&addr, "/health", IO_TIMEOUT).unwrap();
        assert_eq!(status, 200);
        s.stop();
    }

    #[test]
    fn constant_time_eq_compares_exactly() {
        assert!(constant_time_eq("abc", "abc"));
        assert!(!constant_time_eq("abc", "abd"));
        assert!(!constant_time_eq("abc", "ab"));
        assert!(!constant_time_eq("", "x"));
        assert!(constant_time_eq("", ""));
    }

    #[test]
    fn stop_joins_the_accept_thread() {
        let s = server();
        let addr = s.addr().to_string();
        s.stop();
        // The listener is gone: new connections are refused (or time out).
        assert!(http_get(&addr, "/ping", Duration::from_millis(200)).is_err());
    }
}
