//! Sampling self-profiler for the IR interpreter.
//!
//! The interpreter cannot use an OS signal profiler — its "threads" are
//! simulated and its "time" is instructions — so this is an
//! instruction-count-triggered sampler: every `period`-th interpreted
//! instruction, the interpreter captures the current IR call stack
//! (`function@bbN` frames) and records it with weight `period`, attributing
//! each sample to the whole window it closes. When the sampled instruction
//! was a `Probe`, the detector's hot path has left a [`CostCenter`] mark
//! (deepest-subsystem-wins) in a thread-local, and the sample gains an
//! `rt::...` leaf frame — so interpreter cost and runtime-analysis cost
//! show up in one profile.
//!
//! Σ(sample weights) is within one period of the interpreter's instruction
//! tally (`interp_instructions_total`), which is what makes the "≥95%
//! attributed" acceptance bound testable rather than vibes.
//!
//! Rendered by `predator profile` as a top-N table and as collapsed-stack
//! lines (`frame;frame;leaf weight`) for flamegraph tooling.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A runtime subsystem a sampled `Probe` instruction was executing in.
/// Marks overwrite each other, so the deepest subsystem reached before the
/// sample wins — e.g. `HandleAccess → Track → Recorder` attributes to the
/// recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostCenter {
    /// `Predator::handle_access` entry (threshold bookkeeping, line lookup).
    HandleAccess,
    /// Per-line tracking: history table + word counters + prediction units.
    Track,
    /// Flight-recorder ring append.
    Recorder,
    /// MESI ground-truth simulation.
    Mesi,
}

impl CostCenter {
    /// The frame label used in collapsed stacks and the top-N table.
    pub fn label(self) -> &'static str {
        match self {
            CostCenter::HandleAccess => "rt::handle_access",
            CostCenter::Track => "rt::track",
            CostCenter::Recorder => "rt::recorder",
            CostCenter::Mesi => "rt::mesi",
        }
    }
}

thread_local! {
    static MARK: Cell<Option<CostCenter>> = const { Cell::new(None) };
}

/// Marks the calling thread as executing inside `center`, if the profiler
/// is armed. Hot-path cost when disarmed: one relaxed load and a branch.
#[inline]
pub fn mark(center: CostCenter) {
    if profiler().enabled() {
        MARK.with(|m| m.set(Some(center)));
    }
}

/// Consumes the calling thread's current cost-center mark. The interpreter
/// calls this only when the sampled instruction was a `Probe` — the one
/// instruction kind that enters the runtime — so stale marks from earlier
/// windows are never misattributed.
#[inline]
pub fn take_mark() -> Option<CostCenter> {
    MARK.with(|m| m.take())
}

/// The global sampling profiler (see [`profiler`]).
pub struct Profiler {
    enabled: AtomicBool,
    period: AtomicU64,
    attributed: AtomicU64,
    stacks: Mutex<HashMap<String, u64>>,
}

impl Profiler {
    fn new() -> Self {
        Profiler {
            enabled: AtomicBool::new(false),
            period: AtomicU64::new(0),
            attributed: AtomicU64::new(0),
            stacks: Mutex::new(HashMap::new()),
        }
    }

    /// Arms the profiler to sample every `period`-th interpreted
    /// instruction. Clears previously collected samples. No-op under
    /// `obs-off`.
    pub fn install(&self, period: u64) {
        if crate::disabled() {
            return;
        }
        self.period.store(period.max(1), Ordering::Relaxed);
        self.attributed.store(0, Ordering::Relaxed);
        self.stacks.lock().unwrap().clear();
        self.enabled.store(true, Ordering::Release);
    }

    /// True once armed (cheap hot-path pre-check).
    #[inline]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "obs-off")]
        return false;
        #[cfg(not(feature = "obs-off"))]
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sampling period in instructions (0 when never armed).
    pub fn period(&self) -> u64 {
        self.period.load(Ordering::Relaxed)
    }

    /// Records one sample: `stack` is a collapsed `frame;frame;leaf`
    /// string, `weight` the instructions the sample stands for.
    pub fn record(&self, stack: String, weight: u64) {
        if !self.enabled() {
            return;
        }
        self.attributed.fetch_add(weight, Ordering::Relaxed);
        *self.stacks.lock().unwrap().entry(stack).or_insert(0) += weight;
    }

    /// Total instructions attributed across all samples.
    pub fn attributed(&self) -> u64 {
        self.attributed.load(Ordering::Relaxed)
    }

    /// Drains the collected samples (heaviest first, ties by name) and
    /// disarms the profiler.
    pub fn take(&self) -> Vec<(String, u64)> {
        self.enabled.store(false, Ordering::Release);
        let mut stacks: Vec<(String, u64)> = self.stacks.lock().unwrap().drain().collect();
        stacks.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        stacks
    }
}

/// The process-global profiler. Disarmed (near-zero cost) until the CLI
/// installs it for `predator profile`.
pub fn profiler() -> &'static Profiler {
    static P: std::sync::OnceLock<Profiler> = std::sync::OnceLock::new();
    P.get_or_init(Profiler::new)
}

/// Renders drained samples as collapsed-stack lines (`a;b;leaf 42`), the
/// input format of `flamegraph.pl` / `inferno`.
pub fn collapsed(stacks: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (stack, weight) in stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

/// Aggregates drained samples by leaf frame (self weight), heaviest first.
pub fn top_leaves(stacks: &[(String, u64)], n: usize) -> Vec<(String, u64)> {
    let mut by_leaf: HashMap<&str, u64> = HashMap::new();
    for (stack, weight) in stacks {
        let leaf = stack.rsplit(';').next().unwrap_or(stack);
        *by_leaf.entry(leaf).or_insert(0) += weight;
    }
    let mut leaves: Vec<(String, u64)> = by_leaf
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    leaves.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    leaves.truncate(n);
    leaves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_profiler_records_nothing() {
        let p = Profiler::new();
        p.record("a;b".into(), 100);
        assert_eq!(p.attributed(), 0);
        assert!(p.take().is_empty());
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn samples_aggregate_by_stack_and_drain_sorted() {
        let p = Profiler::new();
        p.install(64);
        p.record("main;hot@bb1".into(), 64);
        p.record("main;hot@bb1".into(), 64);
        p.record("main;cold@bb0".into(), 64);
        assert_eq!(p.attributed(), 192);
        let stacks = p.take();
        assert_eq!(stacks[0], ("main;hot@bb1".to_string(), 128));
        assert_eq!(stacks[1], ("main;cold@bb0".to_string(), 64));
        assert!(!p.enabled(), "take() disarms");
        assert!(p.take().is_empty(), "drained");
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn reinstall_clears_previous_run() {
        let p = Profiler::new();
        p.install(1);
        p.record("old".into(), 5);
        p.install(1);
        assert_eq!(p.attributed(), 0);
        p.record("new".into(), 7);
        assert_eq!(p.take(), vec![("new".to_string(), 7)]);
    }

    #[test]
    fn collapsed_lines_match_flamegraph_format() {
        let stacks = vec![("a;b;c".to_string(), 12), ("a".to_string(), 3)];
        assert_eq!(collapsed(&stacks), "a;b;c 12\na 3\n");
    }

    #[test]
    fn top_leaves_aggregates_self_weight() {
        let stacks = vec![
            ("main;worker@bb2".to_string(), 10),
            ("main;other;worker@bb2".to_string(), 5),
            ("main;rt::track".to_string(), 7),
        ];
        let top = top_leaves(&stacks, 10);
        assert_eq!(top[0], ("worker@bb2".to_string(), 15));
        assert_eq!(top[1], ("rt::track".to_string(), 7));
        assert_eq!(top_leaves(&stacks, 1).len(), 1);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "hooks compiled out")]
    fn cost_center_mark_is_take_once() {
        let p = profiler();
        p.install(1);
        mark(CostCenter::HandleAccess);
        mark(CostCenter::Recorder); // deepest-wins: overwrite
        assert_eq!(take_mark(), Some(CostCenter::Recorder));
        assert_eq!(take_mark(), None, "consumed");
        let _ = p.take();
    }
}
