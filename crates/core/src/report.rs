//! Report generation: ranked, source-attributed findings (§2.3, Figure 5).
//!
//! For each problem PREDATOR reports the victim object (heap callsite stack,
//! or global name/address/size), aggregate access and invalidation counts,
//! and word-granularity access information — "which threads accessed which
//! words" — so the developer can see exactly where and how the sharing
//! happens. Findings are ranked by invalidation count, the paper's proxy for
//! projected performance impact.
//!
//! Observed (physical-line) and predicted (virtual-line) problems become
//! separate [`Finding`]s with distinct [`FindingKind`]s; predicted findings
//! carry the verified virtual-line invalidation counts of §3.4, never the
//! raw estimates of §3.3.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use predator_alloc::{Callsite, TrackedHeap};
use predator_sim::{Owner, ThreadId, VirtualRange};

use crate::detect::{classify, SharingClass};
use crate::predict::UnitKind;
use crate::runtime::Predator;
use crate::stats::{ObsSnapshot, RunStats};

/// What the finding is anchored to in the source program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteKind {
    /// A heap object, attributed by allocation callsite.
    Heap {
        /// Allocation call stack.
        callsite: Callsite,
        /// Allocating thread.
        owner: ThreadId,
    },
    /// A registered global variable.
    Global {
        /// Variable name.
        name: String,
    },
    /// Memory the runtime could not attribute (e.g. already freed).
    Unknown,
}

/// The memory object a finding concerns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectReport {
    /// First byte address.
    pub start: u64,
    /// One-past-the-end address.
    pub end: u64,
    /// Object size in bytes.
    pub size: u64,
    /// Source attribution.
    pub site: SiteKind,
}

/// Word-granularity access information (Figure 5's
/// `Address 0x… (line N): reads R writes W by thread T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordReport {
    /// Word start address.
    pub addr: u64,
    /// Global cache-line index of the word (the paper prints these raw:
    /// `0x4000_0040 >> 6 = 16777217`).
    pub line: u64,
    /// Sampled reads.
    pub reads: u64,
    /// Sampled writes.
    pub writes: u64,
    /// Exclusive owner / shared marker.
    pub owner: Owner,
}

/// Most recent invalidation traces embedded per finding.
pub const MAX_TRACES_PER_FINDING: usize = 8;

/// Most recent flight-recorder records embedded per finding.
pub const MAX_TIMELINE_RECORDS: usize = 256;

/// What one timeline record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimelineOp {
    /// A sampled read.
    Read,
    /// A sampled, non-invalidating write.
    Write,
    /// A write that invalidated a remote copy.
    Invalidation {
        /// Thread whose cached copy was knocked out.
        victim: ThreadId,
        /// Last word the victim touched (255 = never observed).
        victim_word: u8,
    },
}

/// One flight-recorder record replayed into a finding — the raw material
/// for `predator explain` timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineRecord {
    /// Logical timestamp (shared by multi-victim invalidation records).
    pub seq: u64,
    /// Global cache-line index.
    pub line: u64,
    /// Issuing thread (the writer, for invalidations).
    pub tid: ThreadId,
    /// Word offset inside the line (8-byte words).
    pub word: u8,
    /// What happened.
    pub op: TimelineOp,
}

/// The causal chain of one invalidation, with source attribution: *who*
/// wrote *where* and *whose* copy of *which word* it destroyed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvalidationTrace {
    /// Logical timestamp.
    pub seq: u64,
    /// Global cache-line index.
    pub line: u64,
    /// Invalidating writer.
    pub writer: ThreadId,
    /// Word the writer hit.
    pub writer_word: u8,
    /// Thread whose copy was invalidated.
    pub victim: ThreadId,
    /// Last word the victim touched (255 = never observed).
    pub victim_word: u8,
    /// Source attribution of the written word (global name, allocation
    /// frame, or hex address).
    pub site: String,
}

impl SiteKind {
    /// Stable cross-run identity of this site: heap objects key on their
    /// full allocation stack, globals on their name. Unattributed memory has
    /// no identity that survives re-runs, so callers supply the object start
    /// as a last-resort discriminator (workloads run at fixed bases, which
    /// keeps even that stable in practice).
    pub fn stable_key(&self, fallback_addr: u64) -> String {
        match self {
            SiteKind::Heap { callsite, .. } if !callsite.frames.is_empty() => {
                let frames: Vec<String> = callsite.frames.iter().map(|f| f.to_string()).collect();
                format!("heap:{}", frames.join("<"))
            }
            SiteKind::Heap { .. } => format!("heap:{fallback_addr:#x}"),
            SiteKind::Global { name } => format!("global:{name}"),
            SiteKind::Unknown => format!("addr:{fallback_addr:#x}"),
        }
    }
}

/// How the problem was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FindingKind {
    /// Invalidations observed on physical cache lines in this run.
    Observed,
    /// Predicted for hardware with doubled cache-line size, verified on
    /// doubled virtual lines (§3.3 scenario 1).
    PredictedDoubled,
    /// Extension: predicted for hardware with `2^factor_log2`-times larger
    /// lines (beyond the paper's single doubling).
    PredictedScaled {
        /// log2 of the line-size multiple (≥ 2).
        factor_log2: u32,
    },
    /// Predicted for a different object starting address, verified on
    /// remapped virtual lines shifted by `delta` bytes (§3.3 scenario 2).
    PredictedRemap {
        /// Partition shift that exposes the sharing.
        delta: u64,
    },
}

impl FindingKind {
    /// Scenario-family tag used in cross-run aggregation keys. Remap
    /// findings deliberately drop their `delta`: each run keeps only its
    /// worst partition shift, and two runs may settle on different shifts
    /// for the same underlying problem.
    pub fn family(&self) -> String {
        match self {
            FindingKind::Observed => "observed".to_string(),
            FindingKind::PredictedDoubled => "doubled".to_string(),
            FindingKind::PredictedScaled { factor_log2 } => {
                format!("scaled{}", 1u64 << factor_log2)
            }
            FindingKind::PredictedRemap { .. } => "remap".to_string(),
        }
    }
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FindingKind::Observed => f.write_str("observed"),
            FindingKind::PredictedDoubled => f.write_str("predicted (doubled cache line size)"),
            FindingKind::PredictedScaled { factor_log2 } => {
                write!(f, "predicted ({}x cache line size)", 1u64 << factor_log2)
            }
            FindingKind::PredictedRemap { delta } => {
                write!(
                    f,
                    "predicted (object start shifted, partition offset {delta} bytes)"
                )
            }
        }
    }
}

/// Invalidation counts for one portfolio geometry, before and after a
/// proposed layout fix was replayed over the recorded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeometryDelta {
    /// Cache-line size of this portfolio entry, in bytes.
    pub line_size: u64,
    /// Detector invalidations attributed to the finding before the fix.
    pub before: u64,
    /// Detector invalidations after replaying the remapped trace.
    pub after: u64,
    /// MESI ground-truth invalidation events on the object's lines, before.
    pub mesi_before: u64,
    /// MESI ground-truth invalidation events, after.
    pub mesi_after: u64,
}

impl GeometryDelta {
    /// Percentage of invalidations the fix removed at this geometry
    /// (integer, 0 when there was nothing to remove).
    pub fn pct_removed(&self) -> u64 {
        (self.before.saturating_sub(self.after) * 100)
            .checked_div(self.before)
            .unwrap_or(0)
    }
}

/// Overall judgement of a replayed fix across the geometry portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FixVerdict {
    /// ≥ 90% of invalidations removed at every geometry that had any.
    Fixes,
    /// Helps somewhere but misses the 90% bar at some geometry.
    Partial,
    /// No measurable improvement anywhere (e.g. true sharing, or a no-op
    /// edit list).
    Ineffective,
}

impl std::fmt::Display for FixVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FixVerdict::Fixes => "fixes",
            FixVerdict::Partial => "partial",
            FixVerdict::Ineffective => "ineffective",
        })
    }
}

/// The measured outcome of replaying one [`crate::fixes::FixSuggestion`]
/// through the what-if pipeline: the recorded trace is re-analyzed with the
/// fix applied as an address remap, at every portfolio geometry, and the
/// suggestion ships with these numbers instead of untested advice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifiedFix {
    /// Human-readable description of what was replayed — a rendered
    /// [`crate::fixes::FixSuggestion`], or the user-supplied layout edit.
    pub fix: String,
    /// Total dead-space bytes the lowered edit list inserts (0 = the
    /// suggestion has no mechanical lowering, e.g. true-sharing advice).
    pub pad_bytes: u64,
    /// Before/after counts, one entry per portfolio line size, ascending.
    pub deltas: Vec<GeometryDelta>,
    /// Judgement across the portfolio.
    pub verdict: FixVerdict,
}

impl VerifiedFix {
    /// Derives the verdict from a measured delta set: ineffective when no
    /// geometry improved, fixes when every geometry with invalidations shed
    /// at least 90% of them, partial otherwise.
    pub fn classify(deltas: &[GeometryDelta]) -> FixVerdict {
        let active: Vec<&GeometryDelta> = deltas.iter().filter(|d| d.before > 0).collect();
        if active.is_empty() {
            return FixVerdict::Ineffective;
        }
        let max = active.iter().map(|d| d.pct_removed()).max().unwrap_or(0);
        let min = active.iter().map(|d| d.pct_removed()).min().unwrap_or(0);
        if max == 0 {
            FixVerdict::Ineffective
        } else if min >= 90 {
            FixVerdict::Fixes
        } else {
            FixVerdict::Partial
        }
    }

    /// Worst-case percentage removed across geometries that had anything to
    /// remove (100 when none did — a vacuous fix).
    pub fn min_pct_removed(&self) -> u64 {
        self.deltas
            .iter()
            .filter(|d| d.before > 0)
            .map(|d| d.pct_removed())
            .min()
            .unwrap_or(100)
    }
}

impl std::fmt::Display for VerifiedFix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Verified fix ({}, {} pad bytes): {}",
            self.verdict, self.pad_bytes, self.fix
        )?;
        for d in &self.deltas {
            writeln!(
                f,
                "  line {:>3}B: {} -> {} invalidations ({}% removed; MESI {} -> {})",
                d.line_size,
                d.before,
                d.after,
                d.pct_removed(),
                d.mesi_before,
                d.mesi_after
            )?;
        }
        Ok(())
    }
}

/// One reported problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Observed or predicted (and under which scenario).
    pub kind: FindingKind,
    /// False, true, or mixed sharing.
    pub class: SharingClass,
    /// The victim object.
    pub object: ObjectReport,
    /// Invalidations: observed on physical lines, or verified on virtual
    /// lines for predictions. The ranking key.
    pub invalidations: u64,
    /// Sampled accesses on the involved lines.
    pub accesses: u64,
    /// Sampled writes on the involved lines.
    pub writes: u64,
    /// Word-granularity detail for the involved lines (only active words).
    pub words: Vec<WordReport>,
    /// Virtual-line ranges verified (empty for observed findings).
    pub virtual_lines: Vec<VirtualRange>,
    /// Recent flight-recorder records for the involved lines, oldest first
    /// (empty when the recorder was off). Capped at
    /// [`MAX_TIMELINE_RECORDS`].
    pub timeline: Vec<TimelineRecord>,
    /// The last [`MAX_TRACES_PER_FINDING`] invalidation traces, oldest
    /// first — the causal evidence behind `invalidations`.
    pub invalidation_traces: Vec<InvalidationTrace>,
    /// What-if replay result for the finding's primary fix suggestion
    /// (`analyze --verify-fixes` / `predator whatif`); `None` when
    /// verification was not requested. `Option` keeps reports from older
    /// versions decoding (a missing key reads as null).
    pub verified: Option<VerifiedFix>,
}

impl Finding {
    /// Stable cross-run aggregation key: scenario family + site identity.
    /// Findings from different runs with equal keys describe the same
    /// problem at the same source location and may be merged.
    pub fn callsite_key(&self) -> String {
        format!(
            "{}|{}",
            self.kind.family(),
            self.object.site.stable_key(self.object.start)
        )
    }
}

/// A complete detector report: ranked findings plus run statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Findings ranked by invalidation count, most severe first.
    pub findings: Vec<Finding>,
    /// Aggregate run statistics.
    pub stats: RunStats,
    /// Observability snapshot (process-global metric registry) captured
    /// when the report was built.
    pub obs: ObsSnapshot,
}

impl Report {
    /// Findings classified as false sharing (including mixed).
    pub fn false_sharing(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| matches!(f.class, SharingClass::FalseSharing | SharingClass::Mixed))
    }

    /// True iff any false-sharing finding exists.
    pub fn has_false_sharing(&self) -> bool {
        self.false_sharing().next().is_some()
    }

    /// True iff any false-sharing finding was *observed* (no prediction
    /// needed) — the paper's "Without Prediction" column.
    pub fn has_observed_false_sharing(&self) -> bool {
        self.false_sharing()
            .any(|f| f.kind == FindingKind::Observed)
    }

    /// True iff any false-sharing finding is predicted-only (the
    /// linear_regression case: caught only "With Prediction").
    pub fn has_predicted_false_sharing(&self) -> bool {
        self.false_sharing()
            .any(|f| f.kind != FindingKind::Observed)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Renders a GitHub-flavoured-markdown report (for CI artifacts and
    /// issue filing).
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# PREDATOR report\n\n");
        if self.findings.is_empty() {
            out.push_str("No sharing problems found above the reporting threshold.\n\n");
        } else {
            out.push_str("| # | class | detection | object | size | invalidations | accesses |\n");
            out.push_str("|---|---|---|---|---|---|---|\n");
            for (i, f) in self.findings.iter().enumerate() {
                let site = match &f.object.site {
                    SiteKind::Heap { callsite, .. } => callsite
                        .frames
                        .first()
                        .map(|fr| fr.to_string())
                        .unwrap_or_else(|| format!("{:#x}", f.object.start)),
                    SiteKind::Global { name } => name.clone(),
                    SiteKind::Unknown => format!("{:#x}", f.object.start),
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | `{}` | {} | {} | {} |",
                    i, f.class, f.kind, site, f.object.size, f.invalidations, f.accesses
                );
            }
            out.push('\n');
            for (i, f) in self.findings.iter().enumerate() {
                let _ = writeln!(out, "## Finding {i}\n\n```text\n{f}```\n");
            }
        }
        let _ = writeln!(
            out,
            "_{} events; {}/{} lines tracked; {} prediction units; {} bytes metadata._",
            self.stats.events,
            self.stats.tracked_lines,
            self.stats.total_lines,
            self.stats.prediction_units,
            self.stats.metadata_bytes
        );
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.findings.is_empty() {
            writeln!(
                f,
                "No sharing problems found above the reporting threshold."
            )?;
        }
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{finding}")?;
        }
        writeln!(
            f,
            "\n[stats] events: {}; tracked lines: {}/{}; prediction units: {}; metadata: {} bytes",
            self.stats.events,
            self.stats.tracked_lines,
            self.stats.total_lines,
            self.stats.prediction_units,
            self.stats.metadata_bytes
        )
    }
}

impl std::fmt::Display for Finding {
    /// Renders in the shape of the paper's Figure 5.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match &self.object.site {
            SiteKind::Heap { .. } => "HEAP OBJECT",
            SiteKind::Global { .. } => "GLOBAL VARIABLE",
            SiteKind::Unknown => "MEMORY REGION",
        };
        writeln!(
            f,
            "{} {}: start {:#x} end {:#x} (with size {}).",
            self.class, what, self.object.start, self.object.end, self.object.size
        )?;
        writeln!(
            f,
            "Number of accesses: {}; Number of invalidations: {}; Number of writes: {}.",
            self.accesses, self.invalidations, self.writes
        )?;
        writeln!(f, "Detection: {}.", self.kind)?;
        for vr in &self.virtual_lines {
            writeln!(f, "Verified virtual line: {vr}")?;
        }
        if let Some(v) = &self.verified {
            write!(f, "{v}")?;
        }
        match &self.object.site {
            SiteKind::Heap { callsite, owner } => {
                writeln!(f, "Allocated by {owner}. Callsite stack:")?;
                write!(f, "{callsite}")?;
            }
            SiteKind::Global { name } => writeln!(f, "Global variable: {name}")?,
            SiteKind::Unknown => writeln!(f, "(unattributed memory)")?,
        }
        writeln!(f, "\nWord level information:")?;
        for w in &self.words {
            let by = match w.owner {
                Owner::Exclusive(t) => format!(" by {t}"),
                Owner::Shared => " by multiple threads".to_string(),
                Owner::Untouched => String::new(),
            };
            writeln!(
                f,
                "Address {:#x} (line {}): reads {} writes {}{}",
                w.addr, w.line, w.reads, w.writes, by
            )?;
        }
        if !self.invalidation_traces.is_empty() {
            writeln!(f, "\nRecent invalidations (flight recorder):")?;
            for t in &self.invalidation_traces {
                writeln!(f, "{t}")?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for InvalidationTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let victim_word = if self.victim_word == u8::MAX {
            "?".to_string()
        } else {
            format!("{}", self.victim_word)
        };
        write!(
            f,
            "[seq {}] {} wrote word {} of line {}, invalidating {}'s copy (last word {}) — {}",
            self.seq, self.writer, self.writer_word, self.line, self.victim, victim_word, self.site
        )
    }
}

/// Internal grouping key: one finding per (object, scenario family).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum GroupKey {
    Heap(u64),
    Global(String),
    Line(u64),
}

/// One heap object as captured at trace-recording time: enough to rebuild
/// the exact `SiteKind::Heap` attribution (callsite stack + owning thread)
/// of a live run during offline analysis, when no [`TrackedHeap`] exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedObject {
    /// First byte address.
    pub start: u64,
    /// Requested size in bytes.
    pub size: u64,
    /// Allocating thread.
    pub owner: ThreadId,
    /// Allocation call stack.
    pub callsite: Callsite,
}

/// An address-ordered directory of [`RecordedObject`]s — the offline stand-in
/// for a live [`TrackedHeap`] when attributing findings from a trace.
#[derive(Debug, Clone, Default)]
pub struct ObjectDirectory {
    objects: BTreeMap<u64, RecordedObject>,
    live_bytes: u64,
}

impl ObjectDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) an object keyed by its start address.
    pub fn insert(&mut self, obj: RecordedObject) {
        self.objects.insert(obj.start, obj);
    }

    /// Object containing `addr`, if any.
    pub fn object_at(&self, addr: u64) -> Option<&RecordedObject> {
        let (_, obj) = self.objects.range(..=addr).next_back()?;
        (addr < obj.start + obj.size).then_some(obj)
    }

    /// Application live bytes at capture time (reported in [`RunStats`]).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Sets the captured live-byte figure.
    pub fn set_live_bytes(&mut self, bytes: u64) {
        self.live_bytes = bytes;
    }

    /// Number of recorded objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects are recorded.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// Where object-level attribution comes from when building a report.
#[derive(Clone, Copy)]
pub enum Attribution<'a> {
    /// No object attribution: unmatched addresses fall back to their line.
    None,
    /// The run's own live heap (the `Session` path).
    Heap(&'a TrackedHeap),
    /// A directory captured at trace-recording time (the offline path).
    Directory(&'a ObjectDirectory),
}

/// Builds the ranked report from the runtime's current state.
///
/// `heap` enables heap-object attribution and live-byte statistics; pass
/// `None` for trace-replay sessions without a managed heap.
pub fn build_report(rt: &Predator, heap: Option<&TrackedHeap>) -> Report {
    build_report_merged(&[rt], heap.map_or(Attribution::None, Attribution::Heap))
}

/// Builds one ranked report from *several* detector runtimes — the merge
/// step of sharded offline analysis.
///
/// The caller must guarantee the runtimes share one configuration and
/// shadow layout, and that every access event was delivered to exactly one
/// of them, with the touched-line partition keeping any two lines within
/// `2 * analysis_radius` of each other in the same runtime. Under that
/// invariant each runtime's tracked lines and prediction units are disjoint
/// from every other's, so chaining their snapshots through the single
/// grouping pass below reproduces exactly the report a lone runtime fed the
/// full stream would produce (snapshots are re-sorted into global line/key
/// order first, making aggregation order — and therefore word lists and
/// stable-sorted findings — identical).
pub fn build_report_merged(rts: &[&Predator], attr: Attribution<'_>) -> Report {
    let detect_span = predator_obs::span("detect");
    let rt0 = rts
        .first()
        .expect("build_report_merged needs at least one runtime");
    let cfg = *rt0.config();
    let geom = cfg.geometry;

    let heap = match attr {
        Attribution::Heap(h) => Some(h),
        _ => None,
    };
    let directory = match attr {
        Attribution::Directory(d) => Some(d),
        _ => None,
    };

    let attribute = |addr: u64| -> (GroupKey, ObjectReport) {
        // Explicitly registered globals take precedence: `Session::global`
        // backs globals with heap storage, but they must be reported by name.
        if let Some(g) = rt0.global_at(addr) {
            return (
                GroupKey::Global(g.name.clone()),
                ObjectReport {
                    start: g.start,
                    end: g.start + g.size,
                    size: g.size,
                    site: SiteKind::Global { name: g.name },
                },
            );
        }
        if let Some(obj) = heap.and_then(|h| h.object_at(addr)) {
            let callsite = heap
                .and_then(|h| h.resolve_callsite(obj.callsite))
                .unwrap_or_else(Callsite::unknown);
            let sink = predator_obs::events();
            if sink.enabled() {
                let frame = callsite
                    .frames
                    .first()
                    .map(|f| f.to_string())
                    .unwrap_or_default();
                sink.emit(
                    "callsite_attributed",
                    &[
                        ("object_start", predator_obs::FieldVal::U64(obj.start)),
                        ("callsite", predator_obs::FieldVal::Str(&frame)),
                    ],
                );
            }
            return (
                GroupKey::Heap(obj.start),
                ObjectReport {
                    start: obj.start,
                    end: obj.start + obj.size,
                    size: obj.size,
                    site: SiteKind::Heap {
                        callsite,
                        owner: obj.owner,
                    },
                },
            );
        }
        if let Some(obj) = directory.and_then(|d| d.object_at(addr)) {
            return (
                GroupKey::Heap(obj.start),
                ObjectReport {
                    start: obj.start,
                    end: obj.start + obj.size,
                    size: obj.size,
                    site: SiteKind::Heap {
                        callsite: obj.callsite.clone(),
                        owner: obj.owner,
                    },
                },
            );
        }
        let line = geom.line_index(addr);
        (
            GroupKey::Line(line),
            ObjectReport {
                start: geom.line_start(line),
                end: geom.line_start(line) + geom.line_size(),
                size: geom.line_size(),
                site: SiteKind::Unknown,
            },
        )
    };

    // Source attribution for flight-recorder traces — same precedence as
    // `attribute` but label-only, and without re-emitting callsite events.
    let site_of = |addr: u64| -> String {
        if let Some(g) = rt0.global_at(addr) {
            return g.name;
        }
        if let Some(obj) = heap.and_then(|h| h.object_at(addr)) {
            if let Some(frame) = heap
                .and_then(|h| h.resolve_callsite(obj.callsite))
                .and_then(|cs| cs.frames.first().map(|f| f.to_string()))
            {
                return frame;
            }
            return format!("{:#x}", obj.start);
        }
        if let Some(obj) = directory.and_then(|d| d.object_at(addr)) {
            if let Some(frame) = obj.callsite.frames.first() {
                return frame.to_string();
            }
            return format!("{:#x}", obj.start);
        }
        format!("{addr:#x}")
    };

    // Replays the flight recorder's rings for a finding's physical lines
    // into an embedded timeline plus the last K invalidation traces.
    let flight = predator_obs::recorder::recorder();
    let flight_data = |line_starts: &[u64]| -> (Vec<TimelineRecord>, Vec<InvalidationTrace>) {
        let mut recs = Vec::new();
        for &ls in line_starts {
            recs.extend(flight.line_records(ls));
        }
        if recs.is_empty() {
            return (Vec::new(), Vec::new());
        }
        recs.sort_by_key(|r| r.seq);
        let timeline: Vec<TimelineRecord> = recs
            .iter()
            .rev()
            .take(MAX_TIMELINE_RECORDS)
            .rev()
            .map(|r| TimelineRecord {
                seq: r.seq,
                line: geom.line_index(r.line_start),
                tid: ThreadId(r.tid),
                word: r.word,
                op: match r.kind {
                    predator_obs::RecKind::Read => TimelineOp::Read,
                    predator_obs::RecKind::Write => TimelineOp::Write,
                    predator_obs::RecKind::Invalidation {
                        victim_tid,
                        victim_word,
                    } => TimelineOp::Invalidation {
                        victim: ThreadId(victim_tid),
                        victim_word,
                    },
                },
            })
            .collect();
        let traces: Vec<InvalidationTrace> = recs
            .iter()
            .rev()
            .filter_map(|r| match r.kind {
                predator_obs::RecKind::Invalidation {
                    victim_tid,
                    victim_word,
                } => {
                    let word_addr = r.line_start + (r.word as u64) * 8;
                    Some(InvalidationTrace {
                        seq: r.seq,
                        line: geom.line_index(r.line_start),
                        writer: ThreadId(r.tid),
                        writer_word: r.word,
                        victim: ThreadId(victim_tid),
                        victim_word,
                        site: site_of(word_addr),
                    })
                }
                _ => None,
            })
            .take(MAX_TRACES_PER_FINDING)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        (timeline, traces)
    };

    // ---- Observed findings: group reportable physical lines by object. ----
    struct ObsAgg {
        object: ObjectReport,
        class: SharingClass,
        invalidations: u64,
        accesses: u64,
        writes: u64,
        words: Vec<WordReport>,
        lines: Vec<u64>,
    }
    let mut observed: BTreeMap<GroupKey, ObsAgg> = BTreeMap::new();

    // Chain snapshots from every runtime, restoring global dense-index
    // order (shards own disjoint line sets, so this is a strict merge —
    // and it makes per-group aggregation order shard-count independent).
    let mut tracked: Vec<(usize, crate::track::TrackSnapshot)> =
        rts.iter().flat_map(|rt| rt.tracked_snapshots()).collect();
    tracked.sort_by_key(|(idx, _)| *idx);

    for (_, snap) in tracked {
        if snap.invalidations < cfg.report_threshold {
            continue;
        }
        let Some(class) = classify(&snap.words) else {
            continue;
        };
        // Attribute by the line's hottest active word.
        let hottest = snap
            .words
            .words()
            .iter()
            .enumerate()
            .max_by_key(|(_, w)| w.total())
            .map(|(i, _)| snap.words.word_addr(i))
            .unwrap_or(snap.line_start);
        let (key, object) = attribute(hottest);
        let words: Vec<WordReport> = snap
            .words
            .words()
            .iter()
            .enumerate()
            .filter(|(_, w)| w.total() > 0)
            .map(|(i, w)| WordReport {
                addr: snap.words.word_addr(i),
                line: geom.line_index(snap.words.word_addr(i)),
                reads: w.reads,
                writes: w.writes,
                owner: w.owner,
            })
            .collect();
        let agg = observed.entry(key).or_insert_with(|| ObsAgg {
            object,
            class,
            invalidations: 0,
            accesses: 0,
            writes: 0,
            words: Vec::new(),
            lines: Vec::new(),
        });
        agg.invalidations += snap.invalidations;
        agg.accesses += snap.reads + snap.writes;
        agg.writes += snap.writes;
        agg.words.extend(words);
        agg.lines.push(snap.line_start);
        // Escalate classification: Mixed dominates.
        agg.class = match (agg.class, class) {
            (a, b) if a == b => a,
            _ => SharingClass::Mixed,
        };
    }

    let mut findings: Vec<Finding> = observed
        .into_values()
        .map(|a| {
            let (timeline, invalidation_traces) = flight_data(&a.lines);
            Finding {
                kind: FindingKind::Observed,
                class: a.class,
                object: a.object,
                invalidations: a.invalidations,
                accesses: a.accesses,
                writes: a.writes,
                words: a.words,
                virtual_lines: Vec::new(),
                timeline,
                invalidation_traces,
                verified: None,
            }
        })
        .collect();

    // ---- Predicted findings: group verified units by (object, scenario). --
    let predict_span = predator_obs::span("predict");
    struct PredAgg {
        object: ObjectReport,
        invalidations: u64,
        accesses: u64,
        words: Vec<WordReport>,
        vlines: Vec<VirtualRange>,
        lines: Vec<u64>,
    }
    // Remap units are grouped per delta (different deltas are *alternative*
    // what-if worlds); the per-object finding keeps the worst delta. Scaled
    // units group per factor.
    let mut doubled: BTreeMap<GroupKey, PredAgg> = BTreeMap::new();
    let mut scaled: BTreeMap<(GroupKey, u32), PredAgg> = BTreeMap::new();
    let mut remap: BTreeMap<(GroupKey, u64), PredAgg> = BTreeMap::new();

    let mut unit_snaps: Vec<crate::predict::UnitSnapshot> =
        rts.iter().flat_map(|rt| rt.unit_snapshots()).collect();
    unit_snaps.sort_by_key(|s| s.key);
    for unit in &unit_snaps {
        if unit.invalidations < cfg.report_threshold {
            continue;
        }
        let (key, object) = attribute(unit.origin.x.addr);
        let words = vec![
            WordReport {
                addr: unit.origin.x.addr,
                line: geom.line_index(unit.origin.x.addr),
                reads: unit.origin.x.state.reads,
                writes: unit.origin.x.state.writes,
                owner: unit.origin.x.state.owner,
            },
            WordReport {
                addr: unit.origin.y.addr,
                line: geom.line_index(unit.origin.y.addr),
                reads: unit.origin.y.state.reads,
                writes: unit.origin.y.state.writes,
                owner: unit.origin.y.state.owner,
            },
        ];
        let fresh = || PredAgg {
            object,
            invalidations: 0,
            accesses: 0,
            words: Vec::new(),
            vlines: Vec::new(),
            lines: Vec::new(),
        };
        let slot = match unit.key.kind {
            UnitKind::Doubled => doubled.entry(key).or_insert_with(fresh),
            UnitKind::Scaled { factor_log2 } => {
                scaled.entry((key, factor_log2)).or_insert_with(fresh)
            }
            UnitKind::Remap { delta } => remap.entry((key, delta)).or_insert_with(fresh),
        };
        slot.invalidations += unit.invalidations;
        slot.accesses += unit.accesses;
        slot.words.extend(words);
        slot.vlines.push(unit.range);
        // Physical lines backing the hot pair — the recorder keys by those.
        slot.lines.push(geom.align_down(unit.origin.x.addr));
        slot.lines.push(geom.align_down(unit.origin.y.addr));
        slot.lines.sort_unstable();
        slot.lines.dedup();
    }

    findings.extend(doubled.into_values().map(|a| {
        let (timeline, invalidation_traces) = flight_data(&a.lines);
        Finding {
            kind: FindingKind::PredictedDoubled,
            class: SharingClass::FalseSharing,
            object: a.object,
            invalidations: a.invalidations,
            accesses: a.accesses,
            writes: a.words.iter().map(|w| w.writes).sum(),
            words: a.words,
            virtual_lines: a.vlines,
            timeline,
            invalidation_traces,
            verified: None,
        }
    }));

    findings.extend(scaled.into_iter().map(|((_, factor_log2), a)| {
        let (timeline, invalidation_traces) = flight_data(&a.lines);
        Finding {
            kind: FindingKind::PredictedScaled { factor_log2 },
            class: SharingClass::FalseSharing,
            object: a.object,
            invalidations: a.invalidations,
            accesses: a.accesses,
            writes: a.words.iter().map(|w| w.writes).sum(),
            words: a.words,
            virtual_lines: a.vlines,
            timeline,
            invalidation_traces,
            verified: None,
        }
    }));

    // Worst delta per object.
    let mut best_remap: BTreeMap<GroupKey, (u64, PredAgg)> = BTreeMap::new();
    for ((key, delta), agg) in remap {
        match best_remap.get(&key) {
            Some((_, existing)) if existing.invalidations >= agg.invalidations => {}
            _ => {
                best_remap.insert(key, (delta, agg));
            }
        }
    }
    findings.extend(best_remap.into_values().map(|(delta, a)| {
        let (timeline, invalidation_traces) = flight_data(&a.lines);
        Finding {
            kind: FindingKind::PredictedRemap { delta },
            class: SharingClass::FalseSharing,
            object: a.object,
            invalidations: a.invalidations,
            accesses: a.accesses,
            writes: a.words.iter().map(|w| w.writes).sum(),
            words: a.words,
            virtual_lines: a.vlines,
            timeline,
            invalidation_traces,
            verified: None,
        }
    }));
    drop(predict_span);

    // ---- Rank by projected impact. ----
    findings.sort_by_key(|f| std::cmp::Reverse(f.invalidations));

    let stats = RunStats {
        events: rts.iter().map(|rt| rt.events()).sum(),
        observed_invalidations: rts.iter().map(|rt| rt.total_invalidations()).sum(),
        tracked_lines: rts.iter().map(|rt| rt.tracked_lines()).sum(),
        total_lines: rt0.layout().lines(),
        prediction_units: unit_snaps.len(),
        // The fixed shadow arrays are per-layout and identical across
        // shards: count them once, then add every shard's dynamic metadata.
        metadata_bytes: rt0.metadata_fixed_bytes()
            + rts
                .iter()
                .map(|rt| rt.metadata_dynamic_bytes())
                .sum::<usize>()
            + rts[1..]
                .iter()
                .map(|rt| rt.metadata_published_bytes())
                .sum::<usize>(),
        app_live_bytes: match attr {
            Attribution::Heap(h) => h.live_bytes(),
            Attribution::Directory(d) => d.live_bytes(),
            Attribution::None => 0,
        },
    };

    // Settle each prediction unit's fate now that the run is over: verified
    // (invalidations reached the report threshold) or discarded.
    let verified = unit_snaps
        .iter()
        .filter(|u| u.invalidations >= cfg.report_threshold)
        .count();
    predator_obs::global()
        .gauge("predict_units_verified")
        .set(verified as i64);
    predator_obs::global()
        .gauge("predict_units_discarded")
        .set((unit_snaps.len() - verified) as i64);
    let sink = predator_obs::events();
    if sink.enabled() {
        for unit in &unit_snaps {
            let fate = if unit.invalidations >= cfg.report_threshold {
                "unit_verified"
            } else {
                "unit_discarded"
            };
            sink.emit(
                fate,
                &[
                    ("start", predator_obs::FieldVal::U64(unit.range.start)),
                    (
                        "invalidations",
                        predator_obs::FieldVal::U64(unit.invalidations),
                    ),
                ],
            );
        }
    }

    let tl = predator_obs::timeline();
    if tl.enabled() {
        tl.instant(
            "report_emitted",
            "detector",
            predator_obs::host_lane(),
            vec![
                ("findings", predator_obs::ArgVal::U64(findings.len() as u64)),
                (
                    "false_sharing",
                    predator_obs::ArgVal::U64(
                        findings
                            .iter()
                            .filter(|f| {
                                matches!(f.class, SharingClass::FalseSharing | SharingClass::Mixed)
                            })
                            .count() as u64,
                    ),
                ),
            ],
        );
    }
    // Level, not counter: serve-mode alert rules watch this for findings
    // appearing (or regressing away) between report builds.
    predator_obs::global()
        .gauge("predator_report_findings")
        .set(findings.len() as i64);

    drop(detect_span); // record the detect phase before capturing the snapshot
    Report {
        findings,
        stats,
        obs: ObsSnapshot::capture(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use predator_sim::AccessKind::Write;

    const BASE: u64 = 0x4000_0000;

    fn rt() -> Predator {
        Predator::new(DetectorConfig::sensitive(), BASE, 1 << 20)
    }

    #[test]
    fn empty_runtime_produces_empty_report() {
        let rt = rt();
        let r = build_report(&rt, None);
        assert!(r.findings.is_empty());
        assert!(!r.has_false_sharing());
        assert_eq!(r.stats.total_lines, (1 << 20) / 64);
        assert!(r.to_string().contains("No sharing problems"));
    }

    #[test]
    fn observed_false_sharing_is_reported_and_ranked() {
        let rt = rt();
        // Severe ping-pong on line 0, milder on line 10.
        for i in 0..400u64 {
            rt.handle_access(ThreadId((i % 2) as u16), BASE + (i % 2) * 8, 8, Write);
        }
        for i in 0..60u64 {
            rt.handle_access(ThreadId((i % 2) as u16), BASE + 640 + (i % 2) * 8, 8, Write);
        }
        let r = build_report(&rt, None);
        assert!(r.has_observed_false_sharing());
        assert!(r.findings.len() >= 2);
        assert!(r.findings[0].invalidations >= r.findings[1].invalidations);
        assert_eq!(r.findings[0].kind, FindingKind::Observed);
        assert_eq!(r.findings[0].class, SharingClass::FalseSharing);
        assert!(!r.findings[0].words.is_empty());
    }

    #[test]
    fn true_sharing_is_not_reported_as_false_sharing() {
        let rt = rt();
        // All threads hammer the SAME word.
        for i in 0..400u64 {
            rt.handle_access(ThreadId((i % 4) as u16), BASE, 8, Write);
        }
        let r = build_report(&rt, None);
        assert!(
            !r.has_false_sharing(),
            "true sharing must not be a false positive"
        );
        assert!(r
            .findings
            .iter()
            .any(|f| f.class == SharingClass::TrueSharing));
    }

    #[test]
    fn predicted_finding_reports_virtual_lines() {
        let rt = rt();
        for _ in 0..600 {
            rt.handle_access(ThreadId(0), BASE + 56, 8, Write);
            rt.handle_access(ThreadId(1), BASE + 64, 8, Write);
        }
        let r = build_report(&rt, None);
        assert!(r.has_predicted_false_sharing());
        assert!(!r.has_observed_false_sharing());
        let pred = r
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::PredictedDoubled)
            .expect("doubled prediction");
        assert!(!pred.virtual_lines.is_empty());
        assert!(pred.invalidations > 100);
        assert!(r
            .findings
            .iter()
            .any(|f| matches!(f.kind, FindingKind::PredictedRemap { .. })));
    }

    #[test]
    fn global_attribution_appears_in_report() {
        let rt = rt();
        rt.register_global("stats_array", BASE, 64);
        for i in 0..400u64 {
            rt.handle_access(ThreadId((i % 2) as u16), BASE + (i % 2) * 8, 8, Write);
        }
        let r = build_report(&rt, None);
        let f = &r.findings[0];
        assert_eq!(
            f.object.site,
            SiteKind::Global {
                name: "stats_array".into()
            }
        );
        let text = r.to_string();
        assert!(text.contains("GLOBAL VARIABLE"), "{text}");
        assert!(text.contains("stats_array"), "{text}");
    }

    #[test]
    fn heap_attribution_uses_callsite() {
        use predator_alloc::{Callsite, Frame};
        let heap = TrackedHeap::new(BASE, 1 << 20, 64, 64 << 10);
        let rt = rt();
        let obj = heap
            .malloc(
                ThreadId(0),
                200,
                Callsite::from_frames(vec![Frame::new("./linear_regression-pthread.c", 133)]),
            )
            .unwrap();
        for i in 0..400u64 {
            rt.handle_access(ThreadId((i % 2) as u16), obj.start + (i % 2) * 8, 8, Write);
        }
        let r = build_report(&rt, Some(&heap));
        let f = &r.findings[0];
        assert_eq!(f.object.start, obj.start);
        assert_eq!(f.object.size, 200);
        let text = f.to_string();
        assert!(text.contains("HEAP OBJECT"), "{text}");
        assert!(text.contains("./linear_regression-pthread.c:133"), "{text}");
        assert!(r.stats.app_live_bytes > 0);
    }

    #[test]
    fn word_reports_carry_global_line_numbers() {
        let rt = rt();
        for i in 0..400u64 {
            rt.handle_access(ThreadId((i % 2) as u16), BASE + 64 + (i % 2) * 8, 8, Write);
        }
        let r = build_report(&rt, None);
        let f = &r.findings[0];
        // Line 0x4000_0040 >> 6 = 16777217 — the paper's Figure 5 number.
        assert!(f.words.iter().all(|w| w.line == 16_777_217));
        assert!(f.to_string().contains("(line 16777217)"));
    }

    #[test]
    fn markdown_rendering_includes_table_and_details() {
        let rt = rt();
        rt.register_global("victim", BASE, 64);
        for i in 0..400u64 {
            rt.handle_access(ThreadId((i % 2) as u16), BASE + (i % 2) * 8, 8, Write);
        }
        let r = build_report(&rt, None);
        let md = r.to_markdown();
        assert!(md.starts_with("# PREDATOR report"), "{md}");
        assert!(md.contains("| # | class | detection |"), "{md}");
        assert!(md.contains("`victim`"), "{md}");
        assert!(md.contains("## Finding 0"), "{md}");
        assert!(md.contains("FALSE SHARING GLOBAL VARIABLE"), "{md}");
        assert!(md.contains("events;"), "{md}");
    }

    #[test]
    fn markdown_for_empty_report() {
        let rt = rt();
        let md = build_report(&rt, None).to_markdown();
        assert!(md.contains("No sharing problems"), "{md}");
    }

    #[test]
    fn json_roundtrip() {
        let rt = rt();
        for i in 0..400u64 {
            rt.handle_access(ThreadId((i % 2) as u16), BASE + (i % 2) * 8, 8, Write);
        }
        let r = build_report(&rt, None);
        let json = r.to_json();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn callsite_keys_identify_sites_across_runs() {
        use predator_alloc::Frame;
        let heap_site = SiteKind::Heap {
            callsite: Callsite::from_frames(vec![Frame::new("a.c", 10), Frame::new("b.c", 20)]),
            owner: ThreadId(3),
        };
        // Owner thread must not leak into the key: the same allocation site
        // may be reached from different threads in different runs.
        let heap_site_other_owner = SiteKind::Heap {
            callsite: Callsite::from_frames(vec![Frame::new("a.c", 10), Frame::new("b.c", 20)]),
            owner: ThreadId(7),
        };
        assert_eq!(heap_site.stable_key(0x40), "heap:a.c:10<b.c:20");
        assert_eq!(
            heap_site.stable_key(0x40),
            heap_site_other_owner.stable_key(0x80)
        );
        assert_eq!(
            SiteKind::Global {
                name: "hist".into()
            }
            .stable_key(0x40),
            "global:hist"
        );
        assert_eq!(SiteKind::Unknown.stable_key(0x40), "addr:0x40");

        // Scenario families: remap drops its delta, scaled keeps its factor.
        assert_eq!(FindingKind::Observed.family(), "observed");
        assert_eq!(
            FindingKind::PredictedRemap { delta: 8 }.family(),
            FindingKind::PredictedRemap { delta: 24 }.family()
        );
        assert_ne!(
            FindingKind::PredictedScaled { factor_log2: 2 }.family(),
            FindingKind::PredictedScaled { factor_log2: 3 }.family()
        );
    }

    #[test]
    fn finding_callsite_key_combines_family_and_site() {
        let rt = rt();
        rt.register_global("victim", BASE, 64);
        for i in 0..400u64 {
            rt.handle_access(ThreadId((i % 2) as u16), BASE + (i % 2) * 8, 8, Write);
        }
        let r = build_report(&rt, None);
        assert_eq!(r.findings[0].callsite_key(), "observed|global:victim");
    }

    #[test]
    fn below_threshold_lines_are_not_reported() {
        let mut cfg = DetectorConfig::sensitive();
        cfg.report_threshold = 1_000_000;
        let rt = Predator::new(cfg, BASE, 1 << 20);
        for i in 0..400u64 {
            rt.handle_access(ThreadId((i % 2) as u16), BASE + (i % 2) * 8, 8, Write);
        }
        let r = build_report(&rt, None);
        assert!(r.findings.is_empty());
    }
}
