//! Aggregate run statistics for the overhead experiments (Figures 7–9).

use serde::{Deserialize, Serialize};

/// Counters summarizing one detector run, embedded in every report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Access events delivered to the runtime.
    pub events: u64,
    /// Invalidations observed on physical lines across all tracked lines.
    pub observed_invalidations: u64,
    /// Cache lines promoted to detailed tracking.
    pub tracked_lines: usize,
    /// Total cache lines shadowed.
    pub total_lines: usize,
    /// Prediction units spawned (virtual lines under verification).
    pub prediction_units: usize,
    /// Detector metadata footprint in bytes (shadow arrays + tracks + units).
    pub metadata_bytes: usize,
    /// Live application bytes in the simulated heap (0 when no heap was
    /// attached to the report).
    pub app_live_bytes: u64,
}

impl RunStats {
    /// Relative memory overhead: metadata bytes per live application byte
    /// (`None` when the heap footprint is unknown or zero).
    pub fn relative_memory_overhead(&self) -> Option<f64> {
        (self.app_live_bytes > 0)
            .then(|| self.metadata_bytes as f64 / self.app_live_bytes as f64)
    }

    /// Fraction of shadowed lines that went into detailed tracking.
    pub fn tracked_fraction(&self) -> f64 {
        if self.total_lines == 0 {
            0.0
        } else {
            self.tracked_lines as f64 / self.total_lines as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_overhead_requires_app_bytes() {
        let mut s = RunStats { metadata_bytes: 100, ..Default::default() };
        assert_eq!(s.relative_memory_overhead(), None);
        s.app_live_bytes = 50;
        assert_eq!(s.relative_memory_overhead(), Some(2.0));
    }

    #[test]
    fn tracked_fraction_handles_empty() {
        let s = RunStats::default();
        assert_eq!(s.tracked_fraction(), 0.0);
        let s = RunStats { tracked_lines: 5, total_lines: 20, ..Default::default() };
        assert_eq!(s.tracked_fraction(), 0.25);
    }
}
