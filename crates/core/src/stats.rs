//! Aggregate run statistics for the overhead experiments (Figures 7–9).

use serde::{Deserialize, Serialize};

/// Counters summarizing one detector run, embedded in every report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Access events delivered to the runtime.
    pub events: u64,
    /// Invalidations observed on physical lines across all tracked lines.
    pub observed_invalidations: u64,
    /// Cache lines promoted to detailed tracking.
    pub tracked_lines: usize,
    /// Total cache lines shadowed.
    pub total_lines: usize,
    /// Prediction units spawned (virtual lines under verification).
    pub prediction_units: usize,
    /// Detector metadata footprint in bytes (shadow arrays + tracks + units).
    pub metadata_bytes: usize,
    /// Live application bytes in the simulated heap (0 when no heap was
    /// attached to the report).
    pub app_live_bytes: u64,
}

impl RunStats {
    /// Relative memory overhead: metadata bytes per live application byte
    /// (`None` when the heap footprint is unknown or zero).
    pub fn relative_memory_overhead(&self) -> Option<f64> {
        (self.app_live_bytes > 0).then(|| self.metadata_bytes as f64 / self.app_live_bytes as f64)
    }

    /// Fraction of shadowed lines that went into detailed tracking.
    pub fn tracked_fraction(&self) -> f64 {
        if self.total_lines == 0 {
            0.0
        } else {
            self.tracked_lines as f64 / self.total_lines as f64
        }
    }
}

/// One counter in an embedded observability snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsMetric {
    /// Metric name.
    pub name: String,
    /// Counter total.
    pub value: u64,
}

/// One gauge in an embedded observability snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsGauge {
    /// Metric name.
    pub name: String,
    /// Gauge value.
    pub value: i64,
}

/// One non-empty log2 histogram bucket: `count` values in `[lo, 2*lo)`
/// (`lo = 0` holds exactly the zeros).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsBucket {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// One histogram in an embedded observability snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsHistogram {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending.
    pub buckets: Vec<ObsBucket>,
}

impl ObsHistogram {
    /// Estimates the `q`-quantile (`0 < q <= 1`) from the log2 buckets:
    /// finds the bucket holding the target rank, then interpolates linearly
    /// inside its `[lo, 2*lo)` range — the standard Prometheus-style
    /// estimate, accurate to within a factor of 2 by construction.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for b in &self.buckets {
            if cum + b.count >= target {
                if b.lo == 0 {
                    return Some(0.0); // the zeros bucket is exact
                }
                let frac = (target - cum) as f64 / b.count as f64;
                return Some(b.lo as f64 + frac * b.lo as f64);
            }
            cum += b.count;
        }
        // Malformed snapshot (bucket counts < count): report the top edge.
        self.buckets.last().map(|b| (b.lo * 2) as f64)
    }
}

/// Serializable mirror of a [`predator_obs::Snapshot`], embedded in every
/// [`crate::Report`] so run metrics travel with the findings. The JSON
/// schema is identical to `predator_obs::Snapshot::to_json`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Counter totals.
    pub counters: Vec<ObsMetric>,
    /// Gauge values.
    pub gauges: Vec<ObsGauge>,
    /// Histogram snapshots.
    pub histograms: Vec<ObsHistogram>,
}

impl From<predator_obs::Snapshot> for ObsSnapshot {
    fn from(s: predator_obs::Snapshot) -> Self {
        ObsSnapshot {
            counters: s
                .counters
                .into_iter()
                .map(|(name, value)| ObsMetric { name, value })
                .collect(),
            gauges: s
                .gauges
                .into_iter()
                .map(|(name, value)| ObsGauge { name, value })
                .collect(),
            histograms: s
                .histograms
                .into_iter()
                .map(|h| ObsHistogram {
                    name: h.name,
                    count: h.count,
                    sum: h.sum,
                    buckets: h
                        .buckets
                        .into_iter()
                        .map(|b| ObsBucket {
                            lo: b.lo,
                            count: b.count,
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Canonical pipeline order for the PHASES table. Span histograms arrive
/// from the registry alphabetically; the table instead reads top-to-bottom
/// in execution order, with phases outside the pipeline appended after.
const PHASE_PIPELINE: [&str; 9] = [
    "parse",
    "instrument",
    "interpret",
    "trace_scan",
    "shard_dispatch",
    "shard_analyze",
    "detect",
    "predict",
    "report",
];

fn phase_rank(phase: &str) -> usize {
    PHASE_PIPELINE
        .iter()
        .position(|p| *p == phase)
        .unwrap_or(PHASE_PIPELINE.len())
}

impl ObsSnapshot {
    /// Captures the current process-global registry.
    pub fn capture() -> Self {
        predator_obs::global().snapshot().into()
    }

    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Per-phase wall times, derived from the `span_<phase>_ns` histograms:
    /// `(phase, calls, total ns)`, in pipeline order
    /// (parse → instrument → interpret → detect → predict → report, then
    /// any other instrumented phases alphabetically).
    pub fn phases(&self) -> Vec<(String, u64, u64)> {
        let mut phases: Vec<(String, u64, u64)> = self
            .histograms
            .iter()
            .filter_map(|h| {
                let phase = h.name.strip_prefix("span_")?.strip_suffix("_ns")?;
                Some((phase.to_string(), h.count, h.sum))
            })
            .collect();
        phases.sort_by(|a, b| phase_rank(&a.0).cmp(&phase_rank(&b.0)).then(a.0.cmp(&b.0)));
        phases
    }

    /// Renders the human-readable stats table (`predator stats`).
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut spans: Vec<(&str, &ObsHistogram)> = self
            .histograms
            .iter()
            .filter_map(|h| {
                h.name
                    .strip_prefix("span_")
                    .and_then(|n| n.strip_suffix("_ns"))
                    .map(|p| (p, h))
            })
            .collect();
        spans.sort_by(|a, b| phase_rank(a.0).cmp(&phase_rank(b.0)).then(a.0.cmp(b.0)));
        if !spans.is_empty() {
            let total_ns: u64 = spans.iter().map(|(_, h)| h.sum).sum();
            out.push_str("PHASES\n");
            let _ = writeln!(
                out,
                "  {:<24} {:>10} {:>14} {:>8} {:>14} {:>12} {:>12}",
                "phase", "calls", "total ms", "share", "mean us", "p50 us", "p99 us"
            );
            for (phase, h) in &spans {
                let mean_us = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64 / 1e3
                };
                let q = |q: f64| h.quantile(q).map(|v| v / 1e3).unwrap_or(0.0);
                let share = if total_ns == 0 {
                    0.0
                } else {
                    h.sum as f64 / total_ns as f64 * 100.0
                };
                let _ = writeln!(
                    out,
                    "  {:<24} {:>10} {:>14.3} {:>7.1}% {:>14.1} {:>12.1} {:>12.1}",
                    phase,
                    h.count,
                    h.sum as f64 / 1e6,
                    share,
                    mean_us,
                    q(0.50),
                    q(0.99)
                );
            }
            let _ = writeln!(
                out,
                "  {:<24} {:>10} {:>14.3} {:>7.1}%",
                "total",
                spans.iter().map(|(_, h)| h.count).sum::<u64>(),
                total_ns as f64 / 1e6,
                100.0
            );
        }
        if !self.counters.is_empty() {
            out.push_str("COUNTERS\n");
            for c in &self.counters {
                let _ = writeln!(out, "  {:<40} {:>14}", c.name, c.value);
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("GAUGES\n");
            for g in &self.gauges {
                let _ = writeln!(out, "  {:<40} {:>14}", g.name, g.value);
            }
        }
        let plain: Vec<&ObsHistogram> = self
            .histograms
            .iter()
            .filter(|h| !h.name.starts_with("span_"))
            .collect();
        if !plain.is_empty() {
            out.push_str("HISTOGRAMS\n");
            let _ = writeln!(
                out,
                "  {:<40} {:>10} {:>14} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "sum", "mean", "p50", "p90", "p99"
            );
            for h in plain {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                };
                let q = |q: f64| h.quantile(q).unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "  {:<40} {:>10} {:>14} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                    h.name,
                    h.count,
                    h.sum,
                    mean,
                    q(0.50),
                    q(0.90),
                    q(0.99)
                );
            }
        }
        if out.is_empty() {
            out.push_str("(empty snapshot)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_overhead_requires_app_bytes() {
        let mut s = RunStats {
            metadata_bytes: 100,
            ..Default::default()
        };
        assert_eq!(s.relative_memory_overhead(), None);
        s.app_live_bytes = 50;
        assert_eq!(s.relative_memory_overhead(), Some(2.0));
    }

    #[test]
    fn tracked_fraction_handles_empty() {
        let s = RunStats::default();
        assert_eq!(s.tracked_fraction(), 0.0);
        let s = RunStats {
            tracked_lines: 5,
            total_lines: 20,
            ..Default::default()
        };
        assert_eq!(s.tracked_fraction(), 0.25);
    }

    fn obs_sample() -> ObsSnapshot {
        ObsSnapshot {
            counters: vec![ObsMetric {
                name: "runtime_accesses_total".into(),
                value: 7,
            }],
            gauges: vec![ObsGauge {
                name: "alloc_live_bytes".into(),
                value: 128,
            }],
            histograms: vec![
                ObsHistogram {
                    name: "span_detect_ns".into(),
                    count: 2,
                    sum: 4000,
                    buckets: vec![ObsBucket { lo: 1024, count: 2 }],
                },
                ObsHistogram {
                    name: "alloc_size_bytes".into(),
                    count: 1,
                    sum: 64,
                    buckets: vec![ObsBucket { lo: 64, count: 1 }],
                },
            ],
        }
    }

    #[test]
    fn obs_snapshot_roundtrips_through_json() {
        let s = obs_sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: ObsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn obs_snapshot_json_matches_obs_crate_schema() {
        // The serde mirror must parse the output of the zero-dependency
        // writer in predator-obs, since `predator stats` accepts both.
        let r = predator_obs::Registry::new();
        r.counter("c").add(3);
        r.histogram("h").record(5);
        let json = r.snapshot().to_json();
        let parsed: ObsSnapshot = serde_json::from_str(&json).unwrap();
        if !predator_obs::disabled() {
            assert_eq!(parsed.counter("c"), Some(3));
            assert_eq!(parsed.histograms[0].count, 1);
        }
    }

    #[test]
    fn quantile_interpolates_within_log2_buckets() {
        // 10 obs: 2 zeros, 4 in [4,8), 4 in [64,128).
        let h = ObsHistogram {
            name: "h".into(),
            count: 10,
            sum: 0,
            buckets: vec![
                ObsBucket { lo: 0, count: 2 },
                ObsBucket { lo: 4, count: 4 },
                ObsBucket { lo: 64, count: 4 },
            ],
        };
        assert_eq!(h.quantile(0.1), Some(0.0), "rank 1 is a zero");
        // p50 → rank 5, the 3rd of 4 in [4,8): 4 + (3/4)*4 = 7.
        assert_eq!(h.quantile(0.5), Some(7.0));
        // p90 → rank 9, the 3rd of 4 in [64,128): 64 + (3/4)*64 = 112.
        assert_eq!(h.quantile(0.9), Some(112.0));
        // p99 → rank 10, top of the last bucket.
        assert_eq!(h.quantile(0.99), Some(128.0));
        assert_eq!(h.quantile(1.0), Some(128.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = ObsHistogram::default();
        assert_eq!(empty.quantile(0.5), None);
        let h = ObsHistogram {
            name: "h".into(),
            count: 1,
            sum: 5,
            buckets: vec![ObsBucket { lo: 4, count: 1 }],
        };
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(
            h.quantile(0.5),
            Some(8.0),
            "single obs reports its bucket's top edge"
        );
    }

    #[test]
    fn render_table_includes_quantile_columns() {
        let s = obs_sample();
        let table = s.render_table();
        assert!(table.contains("p50 us"), "{table}");
        assert!(table.contains("p99 us"), "{table}");
        assert!(table.contains("p90"), "{table}");
    }

    #[test]
    fn phases_extracted_from_span_histograms() {
        let s = obs_sample();
        assert_eq!(s.phases(), vec![("detect".to_string(), 2, 4000)]);
        let table = s.render_table();
        assert!(table.contains("PHASES"));
        assert!(table.contains("detect"));
        assert!(table.contains("runtime_accesses_total"));
        assert!(table.contains("alloc_size_bytes"));
        assert!(
            !table.contains("span_detect_ns"),
            "spans render as phases, not histograms"
        );
    }

    fn span_hist(phase: &str, sum: u64) -> ObsHistogram {
        ObsHistogram {
            name: format!("span_{phase}_ns"),
            count: 1,
            sum,
            buckets: vec![ObsBucket {
                lo: sum.next_power_of_two() / 2,
                count: 1,
            }],
        }
    }

    #[test]
    fn phases_render_in_pipeline_order_with_share() {
        // Registry snapshots list histograms alphabetically; the table must
        // re-order them into pipeline order and append unknown phases last.
        let s = ObsSnapshot {
            histograms: vec![
                span_hist("detect", 1_000),
                span_hist("interpret", 3_000),
                span_hist("parse", 500),
                span_hist("replay", 250),
                span_hist("report", 250),
            ],
            ..Default::default()
        };
        let order: Vec<String> = s.phases().into_iter().map(|(p, _, _)| p).collect();
        assert_eq!(order, ["parse", "interpret", "detect", "report", "replay"]);

        let table = s.render_table();
        let pos = |needle: &str| {
            table
                .find(needle)
                .unwrap_or_else(|| panic!("{needle}\n{table}"))
        };
        assert!(pos("parse") < pos("interpret"), "{table}");
        assert!(pos("interpret") < pos("detect"), "{table}");
        assert!(
            pos("report") < pos("replay"),
            "pipeline phases before extras:\n{table}"
        );
        assert!(table.contains("share"), "{table}");
        // interpret holds 3000 of 5000 ns = 60%; the total row closes at 100%.
        assert!(table.contains("60.0%"), "{table}");
        let total_line = table
            .lines()
            .find(|l| l.trim_start().starts_with("total"))
            .unwrap();
        assert!(total_line.contains("100.0%"), "{total_line}");
    }
}
