//! Per-line detailed tracking state — the payload behind `CacheTracking`
//! (§2.3.1, §2.4.3).
//!
//! A [`CacheTrack`] exists only for lines whose write count crossed the
//! *TrackingThreshold*. It holds the two-entry history table, the
//! word-granularity counters, and the sampling window; during prediction it
//! also carries the list of [`PredictionUnit`]s whose virtual lines overlap
//! this physical line, so a single sampled access feeds both the physical
//! and every relevant virtual history table.
//!
//! Concurrency: the sampling decision is a lone `Relaxed` `fetch_add` on an
//! atomic access counter — the fast path for skipped accesses takes no lock
//! in either mode. Recorded accesses then go one of two ways, selected by
//! [`TrackingMode`]:
//!
//! * **Precise** — serialize on a per-line `std::sync::Mutex`, today's exact
//!   semantics and the differential oracle. The lock order is always
//!   *track → unit*; units never lock tracks.
//! * **Relaxed** — the paper-faithful lock-free path in [`crate::lockfree`]:
//!   packed-atomic history table (invalidation counts stay exact via a CAS
//!   loop over the pure §2.3.1 transition), batched `Relaxed` word/line
//!   counters, an `Acquire` fence only on the threshold-promotion edge.
//!
//! The attached prediction units live outside both cores in a lock-free
//! append-only list, traversed on every sampled access.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

use predator_sim::{packed, AccessKind, CacheGeometry, HistoryTable, ThreadId, WordTracker};

use crate::config::{DetectorConfig, TrackingMode};
use crate::lockfree::{RelaxedLine, UnitList};
use crate::predict::PredictionUnit;

/// Result of offering one access to a [`CacheTrack`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackOutcome {
    /// The access was inside the sampling burst and was recorded.
    pub sampled: bool,
    /// The access invalidated the physical line.
    pub invalidated: bool,
    /// The line's tracked write count just crossed a multiple of the
    /// PredictionThreshold: the caller should run hot-pair analysis.
    pub analysis_due: bool,
}

/// Immutable snapshot of a line's tracked state, for analysis and reporting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackSnapshot {
    /// First byte address of the line.
    pub line_start: u64,
    /// Invalidations recorded on the physical line.
    pub invalidations: u64,
    /// Sampled reads.
    pub reads: u64,
    /// Sampled writes.
    pub writes: u64,
    /// Total accesses offered (sampled or not).
    pub offered: u64,
    /// Word-granularity counters.
    pub words: WordTracker,
}

#[derive(Debug)]
struct TrackState {
    history: HistoryTable,
    words: WordTracker,
    invalidations: u64,
    reads: u64,
    writes: u64,
    /// Last word offset each thread was seen touching — maintained only
    /// while the flight recorder is enabled, to attribute a victim's side of
    /// an invalidation. Linear: a line is touched by a handful of threads.
    last_words: Vec<(ThreadId, u8)>,
}

impl TrackState {
    fn last_word(&self, tid: ThreadId) -> u8 {
        self.last_words
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|&(_, w)| w)
            .unwrap_or(predator_obs::recorder::WORD_UNKNOWN)
    }

    fn note_word(&mut self, tid: ThreadId, word: u8) {
        if let Some(slot) = self.last_words.iter_mut().find(|(t, _)| *t == tid) {
            slot.1 = word;
        } else {
            self.last_words.push((tid, word));
        }
    }
}

/// Mode-selected per-line shadow state.
#[derive(Debug)]
enum TrackCore {
    /// Mutex-serialized exact state.
    Precise(Mutex<TrackState>),
    /// Lock-free packed-atomic state.
    Relaxed(RelaxedLine),
}

/// Detailed tracking state for one cache line.
#[derive(Debug)]
pub struct CacheTrack {
    line_start: u64,
    offered: AtomicU64,
    units: UnitList,
    core: TrackCore,
}

impl CacheTrack {
    /// Creates tracking state for the line starting at `line_start`.
    pub fn new(line_start: u64, geom: CacheGeometry, mode: TrackingMode) -> Self {
        let core = match mode {
            TrackingMode::Precise => TrackCore::Precise(Mutex::new(TrackState {
                history: HistoryTable::new(),
                words: WordTracker::new(line_start, geom),
                invalidations: 0,
                reads: 0,
                writes: 0,
                last_words: Vec::new(),
            })),
            TrackingMode::Relaxed => TrackCore::Relaxed(RelaxedLine::new(geom.words_per_line())),
        };
        CacheTrack {
            line_start,
            offered: AtomicU64::new(0),
            units: UnitList::new(),
            core,
        }
    }

    /// First byte address of the tracked line.
    pub fn line_start(&self) -> u64 {
        self.line_start
    }

    /// Offers one access; applies the sampling policy, then records into the
    /// physical history table, the word counters, and any overlapping
    /// prediction units.
    pub fn handle(
        &self,
        tid: ThreadId,
        addr: u64,
        size: u8,
        kind: AccessKind,
        cfg: &DetectorConfig,
    ) -> TrackOutcome {
        let n = self.offered.fetch_add(1, Ordering::Relaxed);
        if cfg.sampling && n % cfg.sample_interval >= cfg.sample_burst {
            return TrackOutcome::default();
        }
        predator_obs::profile::mark(predator_obs::CostCenter::Track);
        // Flight-recorder and timeline feed: the victims of an invalidating
        // write are the remote entries sitting in the history table *before*
        // the write lands (≤ 2, distinct threads — §2.3.1), so capture them
        // up front in both modes.
        let flight = predator_obs::recorder::recorder().is_enabled();
        let tl = predator_obs::timeline();
        let want_victims = flight || tl.enabled();
        let word = ((addr.saturating_sub(self.line_start) / 8) as u8)
            .min(predator_obs::recorder::WORD_UNKNOWN - 1);
        let mut victims: [(u16, u8); 2] = [(0, 0); 2];
        let mut victim_count = 0usize;
        let invalidated;
        let analysis_due;
        match &self.core {
            TrackCore::Precise(state) => {
                let mut st = state.lock().unwrap();
                if want_victims && kind == AccessKind::Write {
                    for e in st.history.entries() {
                        if e.tid != tid {
                            victims[victim_count] = (e.tid.index() as u16, st.last_word(e.tid));
                            victim_count += 1;
                        }
                    }
                }
                invalidated = st.history.record(tid, kind);
                st.invalidations += invalidated as u64;
                if flight {
                    st.note_word(tid, word);
                }
                st.words.record(tid, addr, size, kind);
                let mut due = false;
                match kind {
                    AccessKind::Read => st.reads += 1,
                    AccessKind::Write => {
                        st.writes += 1;
                        due = cfg.prediction && st.writes.is_multiple_of(cfg.prediction_threshold);
                    }
                }
                analysis_due = due;
                // Feed units while still holding the line lock, preserving
                // the precise mode's full per-access serialization.
                self.units.for_each(|unit| {
                    if unit.range.contains(addr) {
                        unit.record(tid, kind);
                    }
                });
            }
            TrackCore::Relaxed(line) => {
                // In-line word span, mirroring `WordTracker::record`'s
                // clamping of straddling accesses.
                let end = addr + size.max(1) as u64 - 1;
                let line_end = self.line_start + cfg.geometry.line_size() - 1;
                let lo_word = ((addr.max(self.line_start) - self.line_start) / 8) as usize;
                let hi_word = ((end.min(line_end) - self.line_start) / 8) as usize;
                let threshold = cfg.prediction.then_some(cfg.prediction_threshold);
                let out = line.record(tid, lo_word, hi_word, kind, threshold);
                invalidated = out.invalidated;
                analysis_due = out.analysis_due;
                if want_victims && kind == AccessKind::Write {
                    for e in packed::unpack(out.prev_history).entries() {
                        if e.tid != tid {
                            victims[victim_count] = (e.tid.index() as u16, line.last_word(e.tid));
                            victim_count += 1;
                        }
                    }
                }
                if flight {
                    line.note_word(tid, word);
                }
                self.units.for_each(|unit| {
                    if unit.range.contains(addr) {
                        unit.record(tid, kind);
                    }
                });
            }
        }
        predator_obs::static_counter!("track_sampled_accesses_total").inc();
        if flight {
            predator_obs::profile::mark(predator_obs::CostCenter::Recorder);
            if invalidated {
                predator_obs::recorder::record_invalidation(
                    self.line_start,
                    tid.index() as u16,
                    word,
                    &victims[..victim_count],
                );
            } else {
                predator_obs::recorder::record(
                    self.line_start,
                    tid.index() as u16,
                    word,
                    kind == AccessKind::Write,
                );
            }
        }
        if invalidated {
            predator_obs::static_counter!("track_invalidations_total").inc();
            predator_obs::events().emit(
                "invalidation",
                &[
                    ("line_start", predator_obs::FieldVal::U64(self.line_start)),
                    ("tid", predator_obs::FieldVal::U64(tid.index() as u64)),
                ],
            );
            // Timeline: an instant on the writer's sim-thread lane plus one
            // flow arrow per victim, so Perfetto draws the causal link from
            // the invalidating write to the thread whose copy it killed.
            if tl.enabled() {
                let writer_lane = tid.index() as u64;
                tl.instant(
                    "invalidation",
                    "detector",
                    writer_lane,
                    vec![
                        ("line_start", predator_obs::ArgVal::U64(self.line_start)),
                        ("word", predator_obs::ArgVal::U64(word as u64)),
                    ],
                );
                for &(victim_tid, _) in &victims[..victim_count] {
                    tl.flow(
                        "invalidate",
                        "detector",
                        writer_lane,
                        victim_tid as u64,
                        tl.new_flow(),
                    );
                }
            }
        }
        TrackOutcome {
            sampled: true,
            invalidated,
            analysis_due,
        }
    }

    /// Attaches a prediction unit whose virtual line overlaps this physical
    /// line; deduplicated by unit identity.
    pub fn attach_unit(&self, unit: Arc<PredictionUnit>) {
        self.units.push_if_absent(unit);
    }

    /// Number of attached prediction units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Invalidations recorded on the physical line.
    pub fn invalidations(&self) -> u64 {
        match &self.core {
            TrackCore::Precise(state) => state.lock().unwrap().invalidations,
            TrackCore::Relaxed(line) => line.invalidations(),
        }
    }

    /// Snapshot for analysis/reporting (clones the word counters; in relaxed
    /// mode also drains the pending counter batch first).
    pub fn snapshot(&self) -> TrackSnapshot {
        let offered = self.offered.load(Ordering::Relaxed);
        match &self.core {
            TrackCore::Precise(state) => {
                let st = state.lock().unwrap();
                TrackSnapshot {
                    line_start: self.line_start,
                    invalidations: st.invalidations,
                    reads: st.reads,
                    writes: st.writes,
                    offered,
                    words: st.words.clone(),
                }
            }
            TrackCore::Relaxed(line) => {
                let (words, invalidations, reads, writes) = line.snapshot(self.line_start);
                TrackSnapshot {
                    line_start: self.line_start,
                    invalidations,
                    reads,
                    writes,
                    offered,
                    words,
                }
            }
        }
    }

    /// Clears all recorded state (history, words, counters) while keeping
    /// attached units — the metadata refresh applied when a heap object is
    /// freed without false sharing (§2.3.2), so a later object recycling the
    /// address starts clean.
    pub fn reset(&self, geom: CacheGeometry) {
        match &self.core {
            TrackCore::Precise(state) => {
                let mut st = state.lock().unwrap();
                st.history = HistoryTable::new();
                st.words = WordTracker::new(self.line_start, geom);
                st.invalidations = 0;
                st.reads = 0;
                st.writes = 0;
                st.last_words.clear();
            }
            TrackCore::Relaxed(line) => line.reset(),
        }
        self.offered.store(0, Ordering::Relaxed);
    }

    /// Approximate heap footprint of this track (for Figures 8–9). Both
    /// modes report the same formula so memory-overhead stats stay
    /// mode-independent.
    pub fn metadata_bytes(&self, geom: CacheGeometry) -> usize {
        std::mem::size_of::<Self>()
            + geom.words_per_line() * std::mem::size_of::<predator_sim::WordState>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::{HotPair, HotWord, UnitKey, UnitKind};
    use predator_sim::AccessKind::{Read, Write};
    use predator_sim::{Owner, VirtualGeometry, WordState};

    const MODES: [TrackingMode; 2] = [TrackingMode::Precise, TrackingMode::Relaxed];

    fn cfg_nosample() -> DetectorConfig {
        DetectorConfig::sensitive()
    }

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64)
    }

    #[test]
    fn records_invalidations_like_history_table() {
        for mode in MODES {
            let t = CacheTrack::new(0x4000_0000, geom(), mode);
            let cfg = cfg_nosample().with_tracking_mode(mode);
            let mut inv = 0;
            for i in 0..10u16 {
                let out = t.handle(
                    ThreadId(i % 2),
                    0x4000_0000 + (i as u64 % 2) * 8,
                    8,
                    Write,
                    &cfg,
                );
                inv += out.invalidated as u64;
                assert!(out.sampled);
            }
            assert_eq!(inv, 9, "{mode}");
            assert_eq!(t.invalidations(), 9);
            let snap = t.snapshot();
            assert_eq!(snap.writes, 10);
            assert_eq!(snap.reads, 0);
            assert_eq!(snap.offered, 10);
            assert_eq!(snap.words.words()[0].writes, 5);
            assert_eq!(snap.words.words()[1].writes, 5);
        }
    }

    #[test]
    fn sampling_skips_after_burst() {
        for mode in MODES {
            let mut cfg = DetectorConfig::sensitive().with_tracking_mode(mode);
            cfg.sampling = true;
            cfg.sample_interval = 100;
            cfg.sample_burst = 10;
            let t = CacheTrack::new(0, geom(), mode);
            let mut sampled = 0;
            for _ in 0..250 {
                sampled += t.handle(ThreadId(0), 0, 8, Write, &cfg).sampled as u64;
            }
            // Bursts at offsets [0,10) and [100,110) and [200,210) → 30 samples.
            assert_eq!(sampled, 30, "{mode}");
            assert_eq!(t.snapshot().writes, 30);
            assert_eq!(t.snapshot().offered, 250);
        }
    }

    #[test]
    fn analysis_due_fires_on_prediction_threshold_multiples() {
        for mode in MODES {
            let cfg = cfg_nosample().with_tracking_mode(mode); // prediction_threshold = 16
            let t = CacheTrack::new(0, geom(), mode);
            let mut due_at = Vec::new();
            for i in 1..=40u64 {
                if t.handle(ThreadId(0), 0, 8, Write, &cfg).analysis_due {
                    due_at.push(i);
                }
            }
            assert_eq!(due_at, vec![16, 32], "{mode}");
        }
    }

    #[test]
    fn analysis_not_due_when_prediction_disabled() {
        for mode in MODES {
            let mut cfg = cfg_nosample().with_tracking_mode(mode);
            cfg.prediction = false;
            let t = CacheTrack::new(0, geom(), mode);
            for _ in 0..64 {
                assert!(!t.handle(ThreadId(0), 0, 8, Write, &cfg).analysis_due);
            }
        }
    }

    #[test]
    fn reads_never_trigger_analysis() {
        for mode in MODES {
            let cfg = cfg_nosample().with_tracking_mode(mode);
            let t = CacheTrack::new(0, geom(), mode);
            for _ in 0..64 {
                assert!(!t.handle(ThreadId(0), 0, 8, Read, &cfg).analysis_due);
            }
            assert_eq!(t.snapshot().reads, 64);
        }
    }

    fn dummy_unit(range_start: u64, mode: TrackingMode) -> Arc<PredictionUnit> {
        let g = geom();
        let vg = VirtualGeometry::Doubled(g);
        let key = UnitKey {
            kind: UnitKind::Doubled,
            vline: vg.index(range_start),
        };
        let pair = HotPair {
            x: HotWord {
                addr: range_start,
                state: WordState {
                    reads: 0,
                    writes: 1,
                    owner: Owner::Exclusive(ThreadId(0)),
                },
            },
            y: HotWord {
                addr: range_start + 64,
                state: WordState {
                    reads: 0,
                    writes: 1,
                    owner: Owner::Exclusive(ThreadId(1)),
                },
            },
            estimate: 1,
        };
        Arc::new(PredictionUnit::new(key, vg, pair, mode))
    }

    #[test]
    fn attached_units_receive_in_range_accesses() {
        for mode in MODES {
            let cfg = cfg_nosample().with_tracking_mode(mode);
            let t = CacheTrack::new(0, geom(), mode);
            let u = dummy_unit(0, mode); // covers [0,128)
            t.attach_unit(u.clone());
            assert_eq!(t.unit_count(), 1);
            // Ping-pong inside the virtual line.
            for i in 0..10u16 {
                t.handle(ThreadId(i % 2), (i as u64 % 2) * 56, 8, Write, &cfg);
            }
            assert_eq!(u.invalidations(), 9, "{mode}");
        }
    }

    #[test]
    fn attach_unit_dedups_by_key() {
        for mode in MODES {
            let t = CacheTrack::new(0, geom(), mode);
            let u = dummy_unit(0, mode);
            t.attach_unit(u.clone());
            t.attach_unit(dummy_unit(0, mode));
            assert_eq!(t.unit_count(), 1);
        }
    }

    #[test]
    fn out_of_range_accesses_do_not_feed_unit() {
        for mode in MODES {
            let cfg = cfg_nosample().with_tracking_mode(mode);
            // Track for line 2 ([128,192)) with a unit covering [0,128).
            let t = CacheTrack::new(128, geom(), mode);
            let u = dummy_unit(0, mode);
            t.attach_unit(u.clone());
            for i in 0..10u16 {
                t.handle(ThreadId(i % 2), 128 + (i as u64 % 2) * 8, 8, Write, &cfg);
            }
            assert_eq!(u.invalidations(), 0, "accesses outside unit range ignored");
        }
    }

    #[test]
    fn reset_clears_counters_but_keeps_units() {
        for mode in MODES {
            let cfg = cfg_nosample().with_tracking_mode(mode);
            let t = CacheTrack::new(0, geom(), mode);
            t.attach_unit(dummy_unit(0, mode));
            for i in 0..10u16 {
                t.handle(ThreadId(i % 2), 0, 8, Write, &cfg);
            }
            assert!(t.invalidations() > 0);
            t.reset(geom());
            let snap = t.snapshot();
            assert_eq!(snap.invalidations, 0);
            assert_eq!(snap.reads + snap.writes, 0);
            assert_eq!(snap.offered, 0);
            assert_eq!(snap.words.total_accesses(), 0);
            assert_eq!(t.unit_count(), 1, "units survive reset");
        }
    }

    #[test]
    fn straddling_access_attributed_to_both_words() {
        for mode in MODES {
            let cfg = cfg_nosample().with_tracking_mode(mode);
            let t = CacheTrack::new(0, geom(), mode);
            // 8-byte write at offset 4 touches words 0 and 1.
            t.handle(ThreadId(0), 4, 8, Write, &cfg);
            let snap = t.snapshot();
            assert_eq!(snap.words.words()[0].writes, 1, "{mode}");
            assert_eq!(snap.words.words()[1].writes, 1, "{mode}");
            assert_eq!(snap.writes, 1, "line totals count the access once");
        }
    }

    #[test]
    fn concurrent_handling_is_consistent() {
        for mode in MODES {
            let cfg = cfg_nosample().with_tracking_mode(mode);
            let t = std::sync::Arc::new(CacheTrack::new(0, geom(), mode));
            std::thread::scope(|s| {
                for id in 0..4u16 {
                    let t = t.clone();
                    s.spawn(move || {
                        for _ in 0..10_000 {
                            t.handle(ThreadId(id), (id as u64) * 8, 8, Write, &cfg);
                        }
                    });
                }
            });
            let snap = t.snapshot();
            assert_eq!(
                snap.writes, 40_000,
                "no update lost under contention ({mode})"
            );
            assert_eq!(snap.offered, 40_000);
            assert_eq!(snap.words.exclusive_threads().len(), 4);
            // Real-thread interleaving is scheduler-dependent (threads may run
            // their whole loop in one timeslice), so only the lower bound is
            // deterministic: at least one invalidation per thread hand-off.
            assert!(snap.invalidations >= 3, "got {}", snap.invalidations);
            assert!(snap.invalidations <= 39_999);
        }
    }
}
