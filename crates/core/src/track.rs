//! Per-line detailed tracking state — the payload behind `CacheTracking`
//! (§2.3.1, §2.4.3).
//!
//! A [`CacheTrack`] exists only for lines whose write count crossed the
//! *TrackingThreshold*. It holds the two-entry history table, the
//! word-granularity counters, and the sampling window; during prediction it
//! also carries the list of [`PredictionUnit`]s whose virtual lines overlap
//! this physical line, so a single sampled access feeds both the physical
//! and every relevant virtual history table.
//!
//! Concurrency: the sampling decision is a lone `Relaxed` `fetch_add` on an
//! atomic access counter — the fast path for skipped accesses takes no lock.
//! Recorded accesses serialize on a per-line `std::sync::Mutex`. The lock
//! order is always *track → unit*; units never lock tracks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::Mutex;
use serde::{Deserialize, Serialize};

use predator_sim::{AccessKind, CacheGeometry, HistoryTable, ThreadId, WordTracker};

use crate::config::DetectorConfig;
use crate::predict::PredictionUnit;

/// Result of offering one access to a [`CacheTrack`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackOutcome {
    /// The access was inside the sampling burst and was recorded.
    pub sampled: bool,
    /// The access invalidated the physical line.
    pub invalidated: bool,
    /// The line's tracked write count just crossed a multiple of the
    /// PredictionThreshold: the caller should run hot-pair analysis.
    pub analysis_due: bool,
}

/// Immutable snapshot of a line's tracked state, for analysis and reporting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackSnapshot {
    /// First byte address of the line.
    pub line_start: u64,
    /// Invalidations recorded on the physical line.
    pub invalidations: u64,
    /// Sampled reads.
    pub reads: u64,
    /// Sampled writes.
    pub writes: u64,
    /// Total accesses offered (sampled or not).
    pub offered: u64,
    /// Word-granularity counters.
    pub words: WordTracker,
}

#[derive(Debug)]
struct TrackState {
    history: HistoryTable,
    words: WordTracker,
    invalidations: u64,
    reads: u64,
    writes: u64,
    units: Vec<Arc<PredictionUnit>>,
    /// Last word offset each thread was seen touching — maintained only
    /// while the flight recorder is enabled, to attribute a victim's side of
    /// an invalidation. Linear: a line is touched by a handful of threads.
    last_words: Vec<(ThreadId, u8)>,
}

impl TrackState {
    fn last_word(&self, tid: ThreadId) -> u8 {
        self.last_words
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|&(_, w)| w)
            .unwrap_or(predator_obs::recorder::WORD_UNKNOWN)
    }

    fn note_word(&mut self, tid: ThreadId, word: u8) {
        if let Some(slot) = self.last_words.iter_mut().find(|(t, _)| *t == tid) {
            slot.1 = word;
        } else {
            self.last_words.push((tid, word));
        }
    }
}

/// Detailed tracking state for one cache line.
#[derive(Debug)]
pub struct CacheTrack {
    line_start: u64,
    offered: AtomicU64,
    state: Mutex<TrackState>,
}

impl CacheTrack {
    /// Creates tracking state for the line starting at `line_start`.
    pub fn new(line_start: u64, geom: CacheGeometry) -> Self {
        CacheTrack {
            line_start,
            offered: AtomicU64::new(0),
            state: Mutex::new(TrackState {
                history: HistoryTable::new(),
                words: WordTracker::new(line_start, geom),
                invalidations: 0,
                reads: 0,
                writes: 0,
                units: Vec::new(),
                last_words: Vec::new(),
            }),
        }
    }

    /// First byte address of the tracked line.
    pub fn line_start(&self) -> u64 {
        self.line_start
    }

    /// Offers one access; applies the sampling policy, then records into the
    /// physical history table, the word counters, and any overlapping
    /// prediction units.
    pub fn handle(
        &self,
        tid: ThreadId,
        addr: u64,
        size: u8,
        kind: AccessKind,
        cfg: &DetectorConfig,
    ) -> TrackOutcome {
        let n = self.offered.fetch_add(1, Ordering::Relaxed);
        if cfg.sampling && n % cfg.sample_interval >= cfg.sample_burst {
            return TrackOutcome::default();
        }
        predator_obs::profile::mark(predator_obs::CostCenter::Track);
        let mut st = self.state.lock().unwrap();
        // Flight-recorder and timeline feed: the victims of an invalidating
        // write are the remote entries sitting in the history table *before*
        // the write lands (≤ 2, distinct threads — §2.3.1), so capture them
        // up front.
        let flight = predator_obs::recorder::recorder().is_enabled();
        let tl = predator_obs::timeline();
        let want_victims = flight || tl.enabled();
        let word = ((addr.saturating_sub(self.line_start) / 8) as u8)
            .min(predator_obs::recorder::WORD_UNKNOWN - 1);
        let mut victims: [(u16, u8); 2] = [(0, 0); 2];
        let mut victim_count = 0usize;
        if want_victims && kind == AccessKind::Write {
            for e in st.history.entries() {
                if e.tid != tid {
                    victims[victim_count] = (e.tid.index() as u16, st.last_word(e.tid));
                    victim_count += 1;
                }
            }
        }
        let invalidated = st.history.record(tid, kind);
        st.invalidations += invalidated as u64;
        predator_obs::static_counter!("track_sampled_accesses_total").inc();
        if flight {
            predator_obs::profile::mark(predator_obs::CostCenter::Recorder);
            st.note_word(tid, word);
            if invalidated {
                predator_obs::recorder::record_invalidation(
                    self.line_start,
                    tid.index() as u16,
                    word,
                    &victims[..victim_count],
                );
            } else {
                predator_obs::recorder::record(
                    self.line_start,
                    tid.index() as u16,
                    word,
                    kind == AccessKind::Write,
                );
            }
        }
        if invalidated {
            predator_obs::static_counter!("track_invalidations_total").inc();
            predator_obs::events().emit(
                "invalidation",
                &[
                    ("line_start", predator_obs::FieldVal::U64(self.line_start)),
                    ("tid", predator_obs::FieldVal::U64(tid.index() as u64)),
                ],
            );
            // Timeline: an instant on the writer's sim-thread lane plus one
            // flow arrow per victim, so Perfetto draws the causal link from
            // the invalidating write to the thread whose copy it killed.
            if tl.enabled() {
                let writer_lane = tid.index() as u64;
                tl.instant(
                    "invalidation",
                    "detector",
                    writer_lane,
                    vec![
                        ("line_start", predator_obs::ArgVal::U64(self.line_start)),
                        ("word", predator_obs::ArgVal::U64(word as u64)),
                    ],
                );
                for &(victim_tid, _) in &victims[..victim_count] {
                    tl.flow("invalidate", "detector", writer_lane, victim_tid as u64, tl.new_flow());
                }
            }
        }
        st.words.record(tid, addr, size, kind);
        let mut analysis_due = false;
        match kind {
            AccessKind::Read => st.reads += 1,
            AccessKind::Write => {
                st.writes += 1;
                analysis_due = cfg.prediction && st.writes.is_multiple_of(cfg.prediction_threshold);
            }
        }
        for unit in &st.units {
            if unit.range.contains(addr) {
                unit.record(tid, kind);
            }
        }
        TrackOutcome { sampled: true, invalidated, analysis_due }
    }

    /// Attaches a prediction unit whose virtual line overlaps this physical
    /// line; deduplicated by unit identity.
    pub fn attach_unit(&self, unit: Arc<PredictionUnit>) {
        let mut st = self.state.lock().unwrap();
        if !st.units.iter().any(|u| u.key == unit.key) {
            st.units.push(unit);
        }
    }

    /// Number of attached prediction units.
    pub fn unit_count(&self) -> usize {
        self.state.lock().unwrap().units.len()
    }

    /// Invalidations recorded on the physical line.
    pub fn invalidations(&self) -> u64 {
        self.state.lock().unwrap().invalidations
    }

    /// Snapshot for analysis/reporting (clones the word counters).
    pub fn snapshot(&self) -> TrackSnapshot {
        let st = self.state.lock().unwrap();
        TrackSnapshot {
            line_start: self.line_start,
            invalidations: st.invalidations,
            reads: st.reads,
            writes: st.writes,
            offered: self.offered.load(Ordering::Relaxed),
            words: st.words.clone(),
        }
    }

    /// Clears all recorded state (history, words, counters) while keeping
    /// attached units — the metadata refresh applied when a heap object is
    /// freed without false sharing (§2.3.2), so a later object recycling the
    /// address starts clean.
    pub fn reset(&self, geom: CacheGeometry) {
        let mut st = self.state.lock().unwrap();
        st.history = HistoryTable::new();
        st.words = WordTracker::new(self.line_start, geom);
        st.invalidations = 0;
        st.reads = 0;
        st.writes = 0;
        st.last_words.clear();
        self.offered.store(0, Ordering::Relaxed);
    }

    /// Approximate heap footprint of this track (for Figures 8–9).
    pub fn metadata_bytes(&self, geom: CacheGeometry) -> usize {
        std::mem::size_of::<Self>()
            + geom.words_per_line() * std::mem::size_of::<predator_sim::WordState>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::{HotPair, HotWord, UnitKey, UnitKind};
    use predator_sim::AccessKind::{Read, Write};
    use predator_sim::{Owner, VirtualGeometry, WordState};

    fn cfg_nosample() -> DetectorConfig {
        DetectorConfig::sensitive()
    }

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64)
    }

    #[test]
    fn records_invalidations_like_history_table() {
        let t = CacheTrack::new(0x4000_0000, geom());
        let cfg = cfg_nosample();
        let mut inv = 0;
        for i in 0..10u16 {
            let out = t.handle(ThreadId(i % 2), 0x4000_0000 + (i as u64 % 2) * 8, 8, Write, &cfg);
            inv += out.invalidated as u64;
            assert!(out.sampled);
        }
        assert_eq!(inv, 9);
        assert_eq!(t.invalidations(), 9);
        let snap = t.snapshot();
        assert_eq!(snap.writes, 10);
        assert_eq!(snap.reads, 0);
        assert_eq!(snap.offered, 10);
        assert_eq!(snap.words.words()[0].writes, 5);
        assert_eq!(snap.words.words()[1].writes, 5);
    }

    #[test]
    fn sampling_skips_after_burst() {
        let mut cfg = DetectorConfig::sensitive();
        cfg.sampling = true;
        cfg.sample_interval = 100;
        cfg.sample_burst = 10;
        let t = CacheTrack::new(0, geom());
        let mut sampled = 0;
        for _ in 0..250 {
            sampled += t.handle(ThreadId(0), 0, 8, Write, &cfg).sampled as u64;
        }
        // Bursts at offsets [0,10) and [100,110) and [200,210) → 30 samples.
        assert_eq!(sampled, 30);
        assert_eq!(t.snapshot().writes, 30);
        assert_eq!(t.snapshot().offered, 250);
    }

    #[test]
    fn analysis_due_fires_on_prediction_threshold_multiples() {
        let cfg = cfg_nosample(); // prediction_threshold = 16
        let t = CacheTrack::new(0, geom());
        let mut due_at = Vec::new();
        for i in 1..=40u64 {
            if t.handle(ThreadId(0), 0, 8, Write, &cfg).analysis_due {
                due_at.push(i);
            }
        }
        assert_eq!(due_at, vec![16, 32]);
    }

    #[test]
    fn analysis_not_due_when_prediction_disabled() {
        let mut cfg = cfg_nosample();
        cfg.prediction = false;
        let t = CacheTrack::new(0, geom());
        for _ in 0..64 {
            assert!(!t.handle(ThreadId(0), 0, 8, Write, &cfg).analysis_due);
        }
    }

    #[test]
    fn reads_never_trigger_analysis() {
        let cfg = cfg_nosample();
        let t = CacheTrack::new(0, geom());
        for _ in 0..64 {
            assert!(!t.handle(ThreadId(0), 0, 8, Read, &cfg).analysis_due);
        }
        assert_eq!(t.snapshot().reads, 64);
    }

    fn dummy_unit(range_start: u64) -> Arc<PredictionUnit> {
        let g = geom();
        let vg = VirtualGeometry::Doubled(g);
        let key = UnitKey { kind: UnitKind::Doubled, vline: vg.index(range_start) };
        let pair = HotPair {
            x: HotWord {
                addr: range_start,
                state: WordState { reads: 0, writes: 1, owner: Owner::Exclusive(ThreadId(0)) },
            },
            y: HotWord {
                addr: range_start + 64,
                state: WordState { reads: 0, writes: 1, owner: Owner::Exclusive(ThreadId(1)) },
            },
            estimate: 1,
        };
        Arc::new(PredictionUnit::new(key, vg, pair))
    }

    #[test]
    fn attached_units_receive_in_range_accesses() {
        let cfg = cfg_nosample();
        let t = CacheTrack::new(0, geom());
        let u = dummy_unit(0); // covers [0,128)
        t.attach_unit(u.clone());
        assert_eq!(t.unit_count(), 1);
        // Ping-pong inside the virtual line.
        for i in 0..10u16 {
            t.handle(ThreadId(i % 2), (i as u64 % 2) * 56, 8, Write, &cfg);
        }
        assert_eq!(u.invalidations(), 9);
    }

    #[test]
    fn attach_unit_dedups_by_key() {
        let t = CacheTrack::new(0, geom());
        let u = dummy_unit(0);
        t.attach_unit(u.clone());
        t.attach_unit(dummy_unit(0));
        assert_eq!(t.unit_count(), 1);
    }

    #[test]
    fn out_of_range_accesses_do_not_feed_unit() {
        let cfg = cfg_nosample();
        // Track for line 2 ([128,192)) with a unit covering [0,128).
        let t = CacheTrack::new(128, geom());
        let u = dummy_unit(0);
        t.attach_unit(u.clone());
        for i in 0..10u16 {
            t.handle(ThreadId(i % 2), 128 + (i as u64 % 2) * 8, 8, Write, &cfg);
        }
        assert_eq!(u.invalidations(), 0, "accesses outside unit range ignored");
    }

    #[test]
    fn reset_clears_counters_but_keeps_units() {
        let cfg = cfg_nosample();
        let t = CacheTrack::new(0, geom());
        t.attach_unit(dummy_unit(0));
        for i in 0..10u16 {
            t.handle(ThreadId(i % 2), 0, 8, Write, &cfg);
        }
        assert!(t.invalidations() > 0);
        t.reset(geom());
        let snap = t.snapshot();
        assert_eq!(snap.invalidations, 0);
        assert_eq!(snap.reads + snap.writes, 0);
        assert_eq!(snap.offered, 0);
        assert_eq!(snap.words.total_accesses(), 0);
        assert_eq!(t.unit_count(), 1, "units survive reset");
    }

    #[test]
    fn concurrent_handling_is_consistent() {
        let cfg = cfg_nosample();
        let t = std::sync::Arc::new(CacheTrack::new(0, geom()));
        std::thread::scope(|s| {
            for id in 0..4u16 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        t.handle(ThreadId(id), (id as u64) * 8, 8, Write, &cfg);
                    }
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.writes, 40_000, "no update lost under contention");
        assert_eq!(snap.offered, 40_000);
        assert_eq!(snap.words.exclusive_threads().len(), 4);
        // Real-thread interleaving is scheduler-dependent (threads may run
        // their whole loop in one timeslice), so only the lower bound is
        // deterministic: at least one invalidation per thread hand-off.
        assert!(snap.invalidations >= 3, "got {}", snap.invalidations);
        assert!(snap.invalidations <= 39_999);
    }
}
