//! Process-wide graceful-shutdown flag.
//!
//! Long-running modes (`predator serve`, and any workload driver that wants
//! to stop between passes) poll [`requested`]; the CLI's signal handler sets
//! it from SIGINT/SIGTERM. The flag lives here rather than in the CLI so
//! library layers — the serve pass loop, the fleet watcher, bench drivers —
//! can observe it without a dependency on the binary.
//!
//! A signal handler may only do async-signal-safe work, and a relaxed store
//! to a static atomic is exactly that. Everything else (flushing sinks,
//! writing timelines) happens on normal threads that notice the flag.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Requests a graceful shutdown. Async-signal-safe; idempotent.
pub fn request() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// True once a shutdown has been requested.
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Clears the flag — for tests that simulate a shutdown round-trip.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn request_sets_and_reset_clears() {
        super::reset();
        assert!(!super::requested());
        super::request();
        super::request(); // idempotent
        assert!(super::requested());
        super::reset();
        assert!(!super::requested());
    }
}
