//! The detector runtime: Figure 1's `HandleAccess` plus the §3.2 prediction
//! workflow.
//!
//! Hot-path structure (identical to the paper's pseudo-code):
//!
//! 1. Map the address to its cache line via shadow address arithmetic.
//! 2. Below the *TrackingThreshold*: writes bump the line's atomic
//!    `CacheWrites` counter; reads cost nothing.
//! 3. At the threshold, the crossing thread publishes a [`CacheTrack`] with
//!    a CAS — and, when prediction is on, forces the two adjacent lines into
//!    tracked mode too (§3.2 step 2 tracks "every word in both cache line L
//!    and its adjacent cache lines").
//! 4. Above the threshold, accesses flow into the track (sampled), feeding
//!    the history table, word counters, and any overlapping virtual-line
//!    prediction units.
//! 5. Every *PredictionThreshold* tracked writes, the hot-pair analysis of
//!    §3.3 runs over the line and its neighbors, spawning verification units
//!    (§3.4) for qualifying pairs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use serde::{Deserialize, Serialize};

use predator_shadow::{LineCounters, ShadowLayout, SimSpace, TrackSlots};
use predator_sim::{AccessKind, AccessSink, ThreadId};

use crate::config::DetectorConfig;
use crate::predict::{candidate_units, find_hot_pairs, PredictionUnit, UnitRegistry, UnitSnapshot};
use crate::track::{CacheTrack, TrackSnapshot};

/// A registered global variable (reported by name, address and size —
/// §2.3's "for global variables involved in false sharing, PREDATOR reports
/// their name, address and size").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalInfo {
    /// Source-level variable name.
    pub name: String,
    /// First simulated address.
    pub start: u64,
    /// Size in bytes.
    pub size: u64,
}

impl GlobalInfo {
    /// True if `addr` falls inside the global.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.start + self.size
    }
}

/// The PREDATOR detector runtime.
///
/// All methods take `&self`; the runtime is fully concurrent and is shared
/// across workload threads behind an `Arc`.
pub struct Predator {
    cfg: DetectorConfig,
    layout: ShadowLayout,
    writes: LineCounters,
    tracks: TrackSlots<CacheTrack>,
    units: Mutex<UnitRegistry>,
    globals: Mutex<BTreeMap<u64, GlobalInfo>>,
    /// Address ranges excluded from instrumentation — the runtime-side
    /// counterpart of the §2.4.2 blacklist ("the user could provide a
    /// blacklist so that given modules, functions or variables are not
    /// instrumented"). Sorted, non-overlapping `(start, end)` pairs behind a
    /// seqlock-free RwLock: reads are the common case.
    ignored: RwLock<Vec<(u64, u64)>>,
    events: AtomicU64,
    /// Optional event tap, consulted *before* every filter (including the
    /// master `enabled` switch): `predator record` installs a trace writer
    /// here and runs the workload with detection off, capturing the raw
    /// pre-filter stream so offline analysis can apply any configuration.
    /// One relaxed-ordering load when unset — negligible on the hot path.
    tap: OnceLock<Arc<dyn AccessSink + Send + Sync>>,
    /// Dynamic sampling-rate override ([`NO_OVERRIDE`] when inactive): the
    /// effective `sample_burst` the serve watchdog has dialed in. The hot
    /// path pays one relaxed load; only when the override is active does it
    /// build an adjusted config copy for the tracked-line handler.
    dyn_burst: AtomicU64,
    /// Dynamic analysis stride: run only every k-th due hot-pair analysis
    /// (1 = every one, the configured behaviour). The second watchdog knob —
    /// `analyze()` walks every neighbor track under the unit-registry lock,
    /// so its frequency matters as much as the sampling rate.
    analysis_stride: AtomicU64,
    /// Count of analysis-due edges, for the stride modulus.
    analysis_ticks: AtomicU64,
}

/// Sentinel for "no dynamic sampling override installed".
const NO_OVERRIDE: u64 = u64::MAX;

impl Predator {
    /// Creates a runtime covering the simulated range `[base, base+size)`.
    pub fn new(cfg: DetectorConfig, base: u64, size: u64) -> Self {
        cfg.validate().expect("invalid detector configuration");
        let layout = ShadowLayout::new(base, size, cfg.geometry);
        Predator {
            cfg,
            writes: LineCounters::new(layout),
            tracks: TrackSlots::new(layout.lines()),
            units: Mutex::new(UnitRegistry::new()),
            globals: Mutex::new(BTreeMap::new()),
            ignored: RwLock::new(Vec::new()),
            events: AtomicU64::new(0),
            tap: OnceLock::new(),
            dyn_burst: AtomicU64::new(NO_OVERRIDE),
            analysis_stride: AtomicU64::new(1),
            analysis_ticks: AtomicU64::new(0),
            layout,
        }
    }

    /// Creates a runtime shadowing an existing [`SimSpace`].
    pub fn for_space(cfg: DetectorConfig, space: &SimSpace) -> Self {
        Self::new(cfg, space.base(), space.size())
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// The shadow layout (for tests and reporting).
    pub fn layout(&self) -> &ShadowLayout {
        &self.layout
    }

    /// Registers a global variable for name attribution in reports.
    pub fn register_global(&self, name: impl Into<String>, start: u64, size: u64) {
        self.globals.lock().unwrap().insert(
            start,
            GlobalInfo {
                name: name.into(),
                start,
                size,
            },
        );
    }

    /// Looks up the registered global containing `addr`.
    pub fn global_at(&self, addr: u64) -> Option<GlobalInfo> {
        let globals = self.globals.lock().unwrap();
        let (_, g) = globals.range(..=addr).next_back()?;
        g.contains(addr).then(|| g.clone())
    }

    /// Total access events delivered to the runtime.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Excludes `[start, start + len)` from detection — the runtime
    /// counterpart of the §2.4.2 variable blacklist. Use for data whose
    /// sharing is intentional (e.g. a deliberately shared queue head) to
    /// silence it without raising global thresholds.
    pub fn ignore_range(&self, start: u64, len: u64) {
        let mut ranges = self.ignored.write().unwrap();
        ranges.push((start, start + len));
        ranges.sort_unstable();
    }

    /// True if `addr` falls inside an ignored range.
    pub fn is_ignored(&self, addr: u64) -> bool {
        let ranges = self.ignored.read().unwrap();
        if ranges.is_empty() {
            return false;
        }
        let i = ranges.partition_point(|&(s, _)| s <= addr);
        i > 0 && addr < ranges[i - 1].1
    }

    /// Dials the effective per-line sampling rate at runtime — the serve
    /// watchdog's load-shedding knob. `rate` is the absolute fraction of
    /// each sampling window recorded, in `(0, 1]`; passing the configured
    /// [`DetectorConfig::sampling_rate`] (or anything within rounding of it)
    /// clears the override so the hot path returns to the zero-cost branch.
    ///
    /// The override only narrows or widens the `sample_burst` of the
    /// *existing* window; window length, thresholds, and every other
    /// configuration field stay fixed, so findings remain comparable across
    /// rate changes (fewer samples, same semantics).
    pub fn set_sampling_rate(&self, rate: f64) {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "sampling rate must be in (0, 1], got {rate}"
        );
        let interval = self.cfg.sample_interval;
        let burst = if rate >= 1.0 {
            interval
        } else {
            (((interval as f64) * rate).round() as u64).clamp(1, interval)
        };
        let configured = if self.cfg.sampling {
            self.cfg.sample_burst
        } else {
            interval
        };
        let store = if burst == configured {
            NO_OVERRIDE
        } else {
            burst
        };
        self.dyn_burst.store(store, Ordering::Relaxed);
        predator_obs::static_gauge!("predator_sampling_rate_ppm")
            .set((self.sampling_rate() * 1e6).round() as i64);
    }

    /// The effective sampling rate: the dynamic override if one is active,
    /// the configured rate otherwise.
    pub fn sampling_rate(&self) -> f64 {
        match self.dyn_burst.load(Ordering::Relaxed) {
            NO_OVERRIDE => self.cfg.sampling_rate(),
            burst => (burst as f64 / self.cfg.sample_interval as f64).min(1.0),
        }
    }

    /// Sets the analysis stride: run only every `stride`-th due hot-pair
    /// analysis (1 restores the configured every-time behaviour).
    pub fn set_analysis_stride(&self, stride: u64) {
        self.analysis_stride.store(stride.max(1), Ordering::Relaxed);
        predator_obs::static_gauge!("predator_analysis_stride")
            .set(stride.max(1).min(i64::MAX as u64) as i64);
    }

    /// The current analysis stride.
    pub fn analysis_stride(&self) -> u64 {
        self.analysis_stride.load(Ordering::Relaxed)
    }

    /// Installs an event tap that sees every `handle_access` call before any
    /// filtering (read suppression, blacklist, the `enabled` switch). At most
    /// one tap per runtime; returns `Err` if one is already installed.
    pub fn install_tap(&self, tap: Arc<dyn AccessSink + Send + Sync>) -> Result<(), String> {
        self.tap
            .set(tap)
            .map_err(|_| "a tap is already installed".to_string())
    }

    /// The instrumentation entry point (Figure 1's `HandleAccess`).
    #[inline]
    pub fn handle_access(&self, tid: ThreadId, addr: u64, size: u8, kind: AccessKind) {
        if let Some(tap) = self.tap.get() {
            tap.access(tid, addr, size, kind);
        }
        if !self.cfg.enabled {
            return;
        }
        if !self.cfg.instrument_reads && kind == AccessKind::Read {
            return;
        }
        if self.is_ignored(addr) {
            return;
        }
        self.events.fetch_add(1, Ordering::Relaxed);
        predator_obs::hot_counter_inc!("runtime_accesses_total");
        predator_obs::profile::mark(predator_obs::CostCenter::HandleAccess);
        let geom = self.cfg.geometry;
        for line in geom.lines_touched(addr, size) {
            if let Some(idx) = self.layout.index_of(geom.line_start(line)) {
                self.access_line(tid, idx, addr, size, kind);
            }
        }
    }

    #[inline]
    fn access_line(&self, tid: ThreadId, idx: usize, addr: u64, size: u8, kind: AccessKind) {
        let count = self.writes.get(idx);
        if count < self.cfg.tracking_threshold {
            if kind.is_write() {
                let c = self.writes.increment(idx);
                if c == self.cfg.tracking_threshold {
                    // Exactly one thread observes the crossing value.
                    self.begin_tracking(idx);
                }
            }
        } else if let Some(track) = self.tracks.get(idx) {
            let burst = self.dyn_burst.load(Ordering::Relaxed);
            let out = if burst == NO_OVERRIDE {
                track.handle(tid, addr, size, kind, &self.cfg)
            } else {
                let mut cfg = self.cfg;
                cfg.sampling = burst < cfg.sample_interval;
                cfg.sample_burst = burst;
                track.handle(tid, addr, size, kind, &cfg)
            };
            if out.analysis_due {
                let stride = self.analysis_stride.load(Ordering::Relaxed).max(1);
                if stride == 1
                    || self
                        .analysis_ticks
                        .fetch_add(1, Ordering::Relaxed)
                        .is_multiple_of(stride)
                {
                    self.analyze(idx);
                } else {
                    predator_obs::static_counter!("runtime_analyses_deferred_total").inc();
                }
            }
        }
        // A null track with count >= threshold is the benign publish race of
        // Figure 1 (`if (track)`): the access is simply not recorded.
    }

    /// How far (in lines) the hot-pair search looks around a hot line: 1
    /// for the paper's scenarios (adjacent lines suffice for doubling and
    /// shifting), wider when the scaled-line extension is enabled — a
    /// `2^k`-line virtual line can pair words up to `2^k − 1` lines apart.
    fn analysis_radius(&self) -> usize {
        (1usize << self.cfg.max_scale_log2) - 1
    }

    /// Publishes detailed tracking for `idx`; with prediction on, also for
    /// its neighborhood (so word data exists for the §3.3 search).
    fn begin_tracking(&self, idx: usize) {
        self.ensure_tracked(idx);
        if self.cfg.prediction {
            let r = self.analysis_radius();
            for n in idx.saturating_sub(r)..=(idx + r).min(self.layout.lines() - 1) {
                self.ensure_tracked(n);
            }
        }
    }

    /// Forces line `idx` into tracked mode and returns its track.
    fn ensure_tracked(&self, idx: usize) -> &CacheTrack {
        self.writes.bump_to(idx, self.cfg.tracking_threshold);
        let newly = self.tracks.get(idx).is_none();
        let track = self.tracks.get_or_publish(idx, || {
            CacheTrack::new(
                self.layout.line_start(idx),
                self.cfg.geometry,
                self.cfg.tracking_mode,
            )
        });
        if newly {
            predator_obs::static_counter!("runtime_lines_promoted_total").inc();
            predator_obs::events().emit(
                "line_promoted",
                &[(
                    "line_start",
                    predator_obs::FieldVal::U64(track.line_start()),
                )],
            );
            // Tracking-state transition on the timeline: the line entered
            // CacheTracking (its history table now exists).
            let tl = predator_obs::timeline();
            if tl.enabled() {
                tl.instant(
                    "line_promoted",
                    "detector",
                    predator_obs::host_lane(),
                    vec![("line_start", predator_obs::ArgVal::U64(track.line_start()))],
                );
            }
        }
        track
    }

    /// §3.3: hot-access-pair search over line `idx` and its neighbors;
    /// qualifying pairs spawn §3.4 verification units.
    fn analyze(&self, idx: usize) {
        let _timer = predator_obs::static_histogram!("span_predict_ns").start_timer();
        predator_obs::static_counter!("predict_analyses_total").inc();
        let Some(track) = self.tracks.get(idx) else {
            return;
        };
        let snap_l = track.snapshot();
        let avg = snap_l.words.average_accesses();
        let geom = self.cfg.geometry;
        let r = self.analysis_radius();
        let lo = idx.saturating_sub(r);
        let hi = (idx + r).min(self.layout.lines() - 1);
        // One registry acquisition for the whole analysis: the nested
        // pair/candidate loops used to re-lock per candidate unit, taking
        // and releasing the global registry mutex O(pairs × scenarios)
        // times on every promotion edge.
        let mut units = self.units.lock().unwrap();
        for n_idx in (lo..=hi).filter(|&n| n != idx) {
            let Some(nt) = self.tracks.get(n_idx) else {
                continue;
            };
            let snap_n = nt.snapshot();
            for pair in find_hot_pairs(&snap_l.words, &snap_n.words, avg) {
                for (key, vg) in candidate_units(&pair, geom, self.cfg.max_scale_log2) {
                    let (unit, created) = units.get_or_create(key, || {
                        PredictionUnit::new(key, vg, pair, self.cfg.tracking_mode)
                    });
                    if created {
                        predator_obs::static_counter!("predict_units_spawned_total").inc();
                        let sink = predator_obs::events();
                        if sink.enabled() {
                            sink.emit(
                                "unit_spawned",
                                &[
                                    (
                                        "unit",
                                        predator_obs::FieldVal::Str(&format!("{:?}", key.kind)),
                                    ),
                                    ("start", predator_obs::FieldVal::U64(unit.range.start)),
                                    ("size", predator_obs::FieldVal::U64(unit.range.size)),
                                ],
                            );
                        }
                        self.attach_unit(&unit);
                    }
                }
            }
        }
    }

    /// Attaches `unit` to every physical line its virtual range overlaps,
    /// forcing those lines into tracked mode so verification sees their
    /// accesses.
    fn attach_unit(&self, unit: &Arc<PredictionUnit>) {
        let geom = self.cfg.geometry;
        let first = geom.line_index(unit.range.start);
        let last = geom.line_index(unit.range.end());
        for line in first..=last {
            if let Some(idx) = self.layout.index_of(geom.line_start(line)) {
                self.ensure_tracked(idx).attach_unit(unit.clone());
            }
        }
    }

    /// Free-time hook (§2.3.2's reuse rule). Returns `true` when the object
    /// was involved in (possibly predicted) false sharing — the caller must
    /// then quarantine it in the allocator. Otherwise the metadata of every
    /// line fully inside the object is refreshed so recycling starts clean.
    ///
    /// Lines only *partially* covered are left untouched: they may carry
    /// another live object's counts. That is safe because the per-thread
    /// allocator recycles a block only to its owning thread, and same-thread
    /// access mixing cannot fabricate cross-thread sharing.
    pub fn object_freed(&self, start: u64, usable: u64) -> bool {
        let geom = self.cfg.geometry;
        let end = start + usable;
        let mut involved = false;
        for line in geom.line_index(start)..=geom.line_index(end - 1) {
            let Some(idx) = self.layout.index_of(geom.line_start(line)) else {
                continue;
            };
            if let Some(track) = self.tracks.get(idx) {
                if track.invalidations() >= self.cfg.report_threshold {
                    involved = true;
                }
            }
        }
        for unit in self.units.lock().unwrap().all() {
            if unit.range.start < end
                && unit.range.end() >= start
                && unit.invalidations() >= self.cfg.report_threshold
            {
                involved = true;
            }
        }
        if !involved {
            for line in geom.line_index(start)..=geom.line_index(end - 1) {
                let line_start = geom.line_start(line);
                let fully_inside = line_start >= start && line_start + geom.line_size() <= end;
                if !fully_inside {
                    continue;
                }
                if let Some(idx) = self.layout.index_of(line_start) {
                    self.writes.reset(idx);
                    if let Some(track) = self.tracks.get(idx) {
                        track.reset(geom);
                    }
                }
            }
        }
        involved
    }

    /// Snapshots of every tracked line, with dense indices.
    pub fn tracked_snapshots(&self) -> Vec<(usize, TrackSnapshot)> {
        self.tracks
            .iter_published()
            .map(|(i, t)| (i, t.snapshot()))
            .collect()
    }

    /// Snapshot of a specific line's tracking state, if tracked.
    pub fn line_snapshot(&self, idx: usize) -> Option<TrackSnapshot> {
        self.tracks.get(idx).map(|t| t.snapshot())
    }

    /// Write counter of dense line `idx` (saturates near the threshold).
    pub fn line_writes(&self, idx: usize) -> u32 {
        self.writes.get(idx)
    }

    /// Snapshots of every prediction unit.
    pub fn unit_snapshots(&self) -> Vec<UnitSnapshot> {
        self.units.lock().unwrap().snapshots()
    }

    /// Total invalidations observed on *physical* lines (the coherence
    /// traffic a real machine would suffer; virtual-line verification counts
    /// are excluded). Drives the modeled-improvement estimates in the
    /// benchmark harness.
    pub fn total_invalidations(&self) -> u64 {
        self.tracks
            .iter_published()
            .map(|(_, t)| t.invalidations())
            .sum()
    }

    /// Number of lines in tracked mode.
    pub fn tracked_lines(&self) -> usize {
        self.tracks.published()
    }

    /// Registered globals, in address order.
    pub fn globals_snapshot(&self) -> Vec<GlobalInfo> {
        self.globals.lock().unwrap().values().cloned().collect()
    }

    /// Detector metadata footprint in bytes (Figures 8–9).
    pub fn metadata_bytes(&self) -> usize {
        self.metadata_fixed_bytes() + self.metadata_dynamic_bytes()
    }

    /// The *fixed* shadow arrays (`CacheWrites` + `CacheTracking` pointer
    /// slots): proportional to the configured heap size, independent of the
    /// application — 12 bytes per shadowed 64-byte line. Amortizes away for
    /// real heaps; dominates for miniature ones.
    pub fn metadata_fixed_bytes(&self) -> usize {
        self.writes.metadata_bytes() + self.tracks.metadata_bytes()
    }

    /// The *dynamic* metadata: published per-line tracks (history + word
    /// counters) plus prediction units — proportional to how much of the
    /// heap actually saw heavy write traffic.
    pub fn metadata_dynamic_bytes(&self) -> usize {
        let geom = self.cfg.geometry;
        let per_track: usize = self
            .tracks
            .iter_published()
            .map(|(_, t)| t.metadata_bytes(geom))
            .sum();
        per_track + self.units.lock().unwrap().len() * std::mem::size_of::<PredictionUnit>()
    }

    /// Published track boxes alone — the slice of
    /// [`metadata_fixed_bytes`](Self::metadata_fixed_bytes) that actually
    /// grows per tracked line. Merged reports sum this across shard
    /// runtimes (whose tracked lines are disjoint) so that
    /// `RunStats::metadata_bytes` matches a sequential run exactly.
    pub fn metadata_published_bytes(&self) -> usize {
        self.tracks.published_bytes()
    }
}

impl AccessSink for Predator {
    #[inline]
    fn access(&self, tid: ThreadId, addr: u64, size: u8, kind: AccessKind) {
        self.handle_access(tid, addr, size, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_sim::AccessKind::{Read, Write};

    const BASE: u64 = 0x4000_0000;

    fn rt() -> Predator {
        Predator::new(DetectorConfig::sensitive(), BASE, 1 << 20)
    }

    fn hammer_pingpong(rt: &Predator, line_start: u64, rounds: usize) {
        // Two threads write different words of the same line, alternating.
        for i in 0..rounds {
            let t = (i % 2) as u16;
            rt.handle_access(ThreadId(t), line_start + (t as u64) * 8, 8, Write);
        }
    }

    #[test]
    fn below_threshold_nothing_is_tracked() {
        let rt = rt();
        for _ in 0..3 {
            rt.handle_access(ThreadId(0), BASE, 8, Write);
        }
        assert_eq!(rt.tracked_lines(), 0);
        assert_eq!(rt.line_writes(0), 3);
        assert_eq!(rt.events(), 3);
    }

    #[test]
    fn reads_do_not_advance_the_threshold() {
        let rt = rt();
        for _ in 0..100 {
            rt.handle_access(ThreadId(0), BASE, 8, Read);
        }
        assert_eq!(rt.tracked_lines(), 0);
        assert_eq!(rt.line_writes(0), 0);
    }

    #[test]
    fn crossing_threshold_publishes_track_and_neighbors() {
        let rt = rt(); // threshold 4, prediction on
        for _ in 0..4 {
            rt.handle_access(ThreadId(0), BASE + 64, 8, Write);
        }
        // Line 1 plus neighbors 0 and 2.
        assert_eq!(rt.tracked_lines(), 3);
        assert!(rt.line_snapshot(0).is_some());
        assert!(rt.line_snapshot(1).is_some());
        assert!(rt.line_snapshot(2).is_some());
        assert!(rt.line_snapshot(3).is_none());
    }

    #[test]
    fn no_prediction_tracks_only_the_crossing_line() {
        let mut cfg = DetectorConfig::sensitive();
        cfg.prediction = false;
        let rt = Predator::new(cfg, BASE, 1 << 20);
        for _ in 0..4 {
            rt.handle_access(ThreadId(0), BASE + 64, 8, Write);
        }
        assert_eq!(rt.tracked_lines(), 1);
    }

    #[test]
    fn physical_false_sharing_counts_invalidations() {
        let rt = rt();
        hammer_pingpong(&rt, BASE, 200);
        let snap = rt.line_snapshot(0).unwrap();
        // First 4 writes consumed by the threshold counter; tracked
        // ping-pong writes invalidate nearly every time.
        assert!(snap.invalidations > 150, "got {}", snap.invalidations);
        assert_eq!(snap.words.exclusive_threads().len(), 2);
    }

    #[test]
    fn single_thread_traffic_never_invalidates() {
        let rt = rt();
        for i in 0..1000u64 {
            rt.handle_access(ThreadId(0), BASE + (i % 8) * 8, 8, Write);
        }
        let snap = rt.line_snapshot(0).unwrap();
        assert_eq!(snap.invalidations, 0);
    }

    #[test]
    fn adjacent_line_pattern_spawns_prediction_units() {
        let rt = rt();
        // linear_regression shape: t0 hammers last word of line 0, t1
        // hammers first word of line 1. No physical sharing.
        for _ in 0..600 {
            rt.handle_access(ThreadId(0), BASE + 56, 8, Write);
            rt.handle_access(ThreadId(1), BASE + 64, 8, Write);
        }
        let units = rt.unit_snapshots();
        assert!(!units.is_empty(), "prediction units should exist");
        // Both scenarios apply here (even/odd pair, distance 8 < 64).
        let kinds: Vec<_> = units.iter().map(|u| u.key.kind).collect();
        assert!(kinds.contains(&crate::predict::UnitKind::Doubled));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, crate::predict::UnitKind::Remap { .. })));
        // Verification: interleaved writes inside the virtual line → many
        // verified invalidations.
        let max_inv = units.iter().map(|u| u.invalidations).max().unwrap();
        assert!(max_inv > 100, "verified invalidations: {max_inv}");
        // Physical lines show no (or almost no) invalidations.
        let phys =
            rt.line_snapshot(0).unwrap().invalidations + rt.line_snapshot(1).unwrap().invalidations;
        assert_eq!(phys, 0, "no physical false sharing in this pattern");
    }

    #[test]
    fn scaled_prediction_reaches_across_line_pairs() {
        // Threads hot on lines 1 and 2 (never paired by doubling): only the
        // 4x extension catches them.
        let run = |max_scale_log2: u32| {
            let mut cfg = DetectorConfig::sensitive();
            cfg.max_scale_log2 = max_scale_log2;
            let rt = Predator::new(cfg, BASE, 1 << 20);
            for _ in 0..600 {
                rt.handle_access(ThreadId(0), BASE + 64, 8, Write);
                rt.handle_access(ThreadId(1), BASE + 128 + 56, 8, Write);
            }
            rt.unit_snapshots()
        };
        assert!(run(1).is_empty(), "paper setting: no candidate");
        let units = run(2);
        assert_eq!(units.len(), 1);
        assert!(matches!(
            units[0].key.kind,
            crate::predict::UnitKind::Scaled { factor_log2: 2 }
        ));
        assert!(
            units[0].invalidations > 100,
            "verified: {}",
            units[0].invalidations
        );
    }

    #[test]
    fn no_units_when_prediction_off() {
        let mut cfg = DetectorConfig::sensitive();
        cfg.prediction = false;
        let rt = Predator::new(cfg, BASE, 1 << 20);
        for _ in 0..600 {
            rt.handle_access(ThreadId(0), BASE + 56, 8, Write);
            rt.handle_access(ThreadId(1), BASE + 64, 8, Write);
        }
        assert!(rt.unit_snapshots().is_empty());
    }

    #[test]
    fn same_thread_adjacent_traffic_spawns_nothing() {
        let rt = rt();
        for _ in 0..600 {
            rt.handle_access(ThreadId(0), BASE + 56, 8, Write);
            rt.handle_access(ThreadId(0), BASE + 64, 8, Write);
        }
        assert!(rt.unit_snapshots().is_empty());
    }

    #[test]
    fn write_only_mode_ignores_reads_entirely() {
        let mut cfg = DetectorConfig::sensitive();
        cfg.instrument_reads = false;
        let rt = Predator::new(cfg, BASE, 1 << 20);
        for _ in 0..100 {
            rt.handle_access(ThreadId(0), BASE, 8, Read);
        }
        assert_eq!(rt.events(), 0);
        hammer_pingpong(&rt, BASE, 100);
        assert_eq!(rt.events(), 100);
        assert!(rt.line_snapshot(0).unwrap().invalidations > 50);
    }

    #[test]
    fn ignored_ranges_suppress_detection() {
        let rt = rt();
        // Intentional sharing on line 5 — blacklisted.
        rt.ignore_range(BASE + 5 * 64, 64);
        assert!(rt.is_ignored(BASE + 5 * 64));
        assert!(rt.is_ignored(BASE + 5 * 64 + 63));
        assert!(!rt.is_ignored(BASE + 6 * 64));
        assert!(!rt.is_ignored(BASE));
        for i in 0..200u64 {
            let t = (i % 2) as u16;
            rt.handle_access(ThreadId(t), BASE + 5 * 64 + t as u64 * 8, 8, Write);
        }
        assert_eq!(rt.tracked_lines(), 0, "blacklisted traffic is invisible");
        assert_eq!(rt.events(), 0);
        // Unlisted lines still detect.
        hammer_pingpong(&rt, BASE, 100);
        assert!(rt.line_snapshot(0).unwrap().invalidations > 50);
    }

    #[test]
    fn multiple_ignore_ranges_resolve_correctly() {
        let rt = rt();
        rt.ignore_range(BASE + 128, 64);
        rt.ignore_range(BASE + 512, 128);
        rt.ignore_range(BASE, 8);
        assert!(rt.is_ignored(BASE + 4));
        assert!(!rt.is_ignored(BASE + 8));
        assert!(rt.is_ignored(BASE + 128));
        assert!(!rt.is_ignored(BASE + 192));
        assert!(rt.is_ignored(BASE + 639));
        assert!(!rt.is_ignored(BASE + 640));
    }

    #[test]
    fn disabled_runtime_records_nothing() {
        let mut cfg = DetectorConfig::sensitive();
        cfg.enabled = false;
        let rt = Predator::new(cfg, BASE, 1 << 20);
        hammer_pingpong(&rt, BASE, 1000);
        assert_eq!(rt.events(), 0);
        assert_eq!(rt.tracked_lines(), 0);
        assert_eq!(rt.line_writes(0), 0);
    }

    #[test]
    fn out_of_range_accesses_are_ignored() {
        let rt = rt();
        rt.handle_access(ThreadId(0), 0x100, 8, Write); // below base
        rt.handle_access(ThreadId(0), BASE + (2 << 20), 8, Write); // above end
        assert_eq!(rt.tracked_lines(), 0);
        assert_eq!(rt.events(), 2, "events counted, lines not");
    }

    #[test]
    fn straddling_write_feeds_both_lines() {
        let rt = rt();
        for _ in 0..10 {
            rt.handle_access(ThreadId(0), BASE + 60, 8, Write);
        }
        assert!(rt.line_writes(0) >= 4);
        assert!(rt.line_writes(1) >= 4);
    }

    #[test]
    fn globals_are_attributed_by_range() {
        let rt = rt();
        rt.register_global("counter_array", BASE + 128, 64);
        assert_eq!(rt.global_at(BASE + 128).unwrap().name, "counter_array");
        assert_eq!(rt.global_at(BASE + 191).unwrap().name, "counter_array");
        assert!(rt.global_at(BASE + 192).is_none());
        assert!(rt.global_at(BASE).is_none());
        assert_eq!(rt.globals_snapshot().len(), 1);
    }

    #[test]
    fn object_freed_without_sharing_resets_lines() {
        let rt = rt();
        // Single-thread traffic on lines 4..6 (an object of 128 bytes).
        let start = BASE + 4 * 64;
        for i in 0..100u64 {
            rt.handle_access(ThreadId(0), start + (i % 16) * 8, 8, Write);
        }
        assert!(rt.line_snapshot(4).is_some());
        let involved = rt.object_freed(start, 128);
        assert!(!involved);
        let snap = rt.line_snapshot(4).unwrap();
        assert_eq!(
            snap.words.total_accesses(),
            0,
            "line reset after clean free"
        );
        assert_eq!(rt.line_writes(4), 0);
    }

    #[test]
    fn object_freed_with_false_sharing_reports_involvement() {
        let rt = rt();
        hammer_pingpong(&rt, BASE, 200);
        let involved = rt.object_freed(BASE, 64);
        assert!(involved);
        // Metadata NOT reset for involved objects.
        assert!(rt.line_snapshot(0).unwrap().invalidations > 0);
    }

    #[test]
    fn partially_covered_lines_survive_free() {
        let rt = rt();
        // Object covers only half of line 0.
        for i in 0..100u64 {
            rt.handle_access(ThreadId(0), BASE + (i % 4) * 8, 8, Write);
        }
        let before = rt.line_snapshot(0).unwrap().words.total_accesses();
        assert!(before > 0);
        rt.object_freed(BASE, 32);
        assert_eq!(
            rt.line_snapshot(0).unwrap().words.total_accesses(),
            before,
            "partial line must not be reset"
        );
    }

    #[test]
    fn metadata_accounting_grows_with_tracking() {
        let rt = rt();
        let base_bytes = rt.metadata_bytes();
        hammer_pingpong(&rt, BASE, 100);
        assert!(rt.metadata_bytes() > base_bytes);
    }

    #[test]
    fn tap_sees_events_even_when_disabled() {
        struct Counting(AtomicU64);
        impl AccessSink for Counting {
            fn access(&self, _: ThreadId, _: u64, _: u8, _: AccessKind) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut cfg = DetectorConfig::sensitive();
        cfg.enabled = false;
        let rt = Predator::new(cfg, BASE, 1 << 20);
        let tap = Arc::new(Counting(AtomicU64::new(0)));
        rt.install_tap(tap.clone()).unwrap();
        assert!(rt.install_tap(tap.clone()).is_err(), "second tap rejected");
        hammer_pingpong(&rt, BASE, 100);
        rt.handle_access(ThreadId(0), BASE, 8, Read);
        assert_eq!(
            tap.0.load(Ordering::Relaxed),
            101,
            "tap sees the pre-filter stream"
        );
        assert_eq!(rt.events(), 0, "detector itself stays off");
    }

    #[test]
    fn sampling_override_narrows_the_recorded_fraction() {
        let mut cfg = DetectorConfig::sensitive();
        cfg.sample_interval = 10;
        cfg.prediction = false;
        let rt = Predator::new(cfg, BASE, 1 << 20);
        for _ in 0..4 {
            rt.handle_access(ThreadId(0), BASE, 8, Write);
        }
        assert_eq!(rt.sampling_rate(), 1.0, "sensitive config records all");
        rt.set_sampling_rate(0.1); // 1 recorded per 10-access window
        assert!((rt.sampling_rate() - 0.1).abs() < 1e-9);
        for _ in 0..100 {
            rt.handle_access(ThreadId(0), BASE, 8, Write);
        }
        let throttled = rt.line_snapshot(0).unwrap().words.total_accesses();
        assert!(
            (1..=20).contains(&throttled),
            "expected ~10 recorded accesses, got {throttled}"
        );
        // Restoring the configured rate clears the override entirely.
        rt.set_sampling_rate(1.0);
        assert_eq!(rt.sampling_rate(), 1.0);
        for _ in 0..100 {
            rt.handle_access(ThreadId(0), BASE, 8, Write);
        }
        let restored = rt.line_snapshot(0).unwrap().words.total_accesses();
        assert_eq!(restored, throttled + 100, "full recording after re-arm");
    }

    #[test]
    fn analysis_stride_defers_hot_pair_analysis() {
        let run = |stride: u64| {
            let rt = rt();
            rt.set_analysis_stride(stride);
            // Consume the first due analysis (tick 0 always runs) with
            // single-thread traffic that can never produce a hot pair...
            for _ in 0..20 {
                rt.handle_access(ThreadId(0), BASE, 8, Write);
            }
            // ...then drive the adjacent-line pattern that *would* spawn
            // prediction units on every later analysis.
            for _ in 0..600 {
                rt.handle_access(ThreadId(0), BASE + 56, 8, Write);
                rt.handle_access(ThreadId(1), BASE + 64, 8, Write);
            }
            rt.unit_snapshots().len()
        };
        assert_eq!(run(10_000), 0, "all later analyses deferred");
        assert!(run(1) > 0, "stride 1 analyzes as configured");
    }

    #[test]
    fn concurrent_hammering_from_real_threads() {
        let rt = std::sync::Arc::new(rt());
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let rt = rt.clone();
                s.spawn(move || {
                    for _ in 0..20_000 {
                        rt.handle_access(ThreadId(t), BASE + (t as u64) * 8, 8, Write);
                    }
                });
            }
        });
        assert_eq!(rt.events(), 80_000);
        let snap = rt.line_snapshot(0).unwrap();
        // Scheduler-dependent interleaving: only the hand-off lower bound is
        // guaranteed; exact-count assertions live in deterministic tests.
        assert!(snap.invalidations >= 3, "got {}", snap.invalidations);
        assert_eq!(snap.words.exclusive_threads().len(), 4);
    }
}
