//! Potential-false-sharing search and verification state (§3.3, §3.4).
//!
//! Once a tracked line `L` accumulates `PredictionThreshold` writes, the
//! runtime searches `L` and its adjacent lines for *hot access pairs*: two
//! words, each hotter than `L`'s per-word average, issued by different
//! threads, at least one written, and close enough to land on one virtual
//! line. Each qualifying pair — with a conservatively estimated invalidation
//! count above the per-word average — spawns a [`PredictionUnit`]: a history
//! table over the candidate *virtual* line that subsequent accesses feed, so
//! the prediction is **verified** against the same invalidation model used
//! for physical lines (§3.4) rather than reported on estimation alone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

use crate::config::TrackingMode;
use crate::lockfree;

use predator_sim::vline::{
    doubled_vline_possible, offset_vline_possible, place_offset_vline, scaled_vline_possible,
};
use predator_sim::{
    AccessKind, CacheGeometry, HistoryTable, ThreadId, VirtualGeometry, VirtualRange, WordState,
    WordTracker,
};

/// What kind of what-if scenario a prediction unit verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UnitKind {
    /// Hardware with doubled cache-line size (Figure 3b).
    Doubled,
    /// Extension: hardware with `2^factor_log2`-times larger lines
    /// (`factor_log2 >= 2`; one doubling is [`UnitKind::Doubled`]).
    Scaled {
        /// log2 of the line-size multiple.
        factor_log2: u32,
    },
    /// Object placement shifted by `delta` bytes (Figure 3c).
    Remap {
        /// Partition shift in bytes (`0 ≤ delta < line_size`, word-aligned).
        delta: u64,
    },
}

/// Unique identity of a prediction unit: scenario plus virtual-line index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UnitKey {
    /// Scenario.
    pub kind: UnitKind,
    /// Virtual line index under the scenario's [`VirtualGeometry`].
    pub vline: u64,
}

/// One hot word: its address and counters at analysis time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotWord {
    /// Word start address.
    pub addr: u64,
    /// Counter snapshot.
    pub state: WordState,
}

/// A qualifying hot access pair (§3.3's X and Y).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotPair {
    /// Hot word on the analyzed line.
    pub x: HotWord,
    /// Hot word on the adjacent line.
    pub y: HotWord,
    /// Conservative estimate of invalidations the pair could cause on a
    /// shared virtual line (interleaved schedule assumption).
    pub estimate: u64,
}

/// Conservative invalidation estimate for two words sharing a virtual line.
///
/// PREDATOR "conservatively assumes that accesses from different threads
/// occur in an interleaved manner". Under perfect interleaving, every access
/// of the less-frequent word can pair with a remote access, and each pair
/// with at least one write yields an invalidation — unless *neither* side
/// writes, in which case sharing is harmless.
pub fn estimate_pair_invalidations(x: &WordState, y: &WordState) -> u64 {
    if x.writes == 0 && y.writes == 0 {
        return 0;
    }
    x.total().min(y.total())
}

/// Finds §3.3 hot access pairs between line `l` and an adjacent line `n`.
///
/// `avg` is the per-word average of the *analyzed* line `l` (the paper
/// measures both hotness and the estimate cutoff against `l`). Pairs must:
/// be hot on their respective lines; be owned exclusively by *different*
/// threads (a word already marked shared is true sharing, not a false-sharing
/// candidate); include at least one write; and have an estimate above `avg`.
pub fn find_hot_pairs(l: &WordTracker, n: &WordTracker, avg: f64) -> Vec<HotPair> {
    let mut out = Vec::new();
    let hot_l = l.hot_words();
    let hot_n = n.hot_words();
    for &ix in &hot_l {
        let xs = l.words()[ix];
        let Some(tx) = xs.owner.thread() else {
            continue;
        };
        for &iy in &hot_n {
            let ys = n.words()[iy];
            let Some(ty) = ys.owner.thread() else {
                continue;
            };
            if tx == ty {
                continue;
            }
            if xs.writes == 0 && ys.writes == 0 {
                continue;
            }
            let estimate = estimate_pair_invalidations(&xs, &ys);
            if (estimate as f64) > avg {
                out.push(HotPair {
                    x: HotWord {
                        addr: l.word_addr(ix),
                        state: xs,
                    },
                    y: HotWord {
                        addr: n.word_addr(iy),
                        state: ys,
                    },
                    estimate,
                });
            }
        }
    }
    out
}

/// The virtual-line scenarios a hot pair makes worth verifying, considering
/// line-size scales up to `2^max_scale_log2` (the paper stops at one
/// doubling, `max_scale_log2 = 1`).
pub fn candidate_units(
    pair: &HotPair,
    geom: CacheGeometry,
    max_scale_log2: u32,
) -> Vec<(UnitKey, VirtualGeometry)> {
    let (x, y) = (pair.x.addr, pair.y.addr);
    let mut out = Vec::new();
    if doubled_vline_possible(x, y, geom) {
        let vg = VirtualGeometry::Doubled(geom);
        out.push((
            UnitKey {
                kind: UnitKind::Doubled,
                vline: vg.index(x),
            },
            vg,
        ));
    }
    for factor_log2 in 2..=max_scale_log2 {
        if scaled_vline_possible(x, y, geom, factor_log2) {
            let vg = VirtualGeometry::Scaled { geom, factor_log2 };
            out.push((
                UnitKey {
                    kind: UnitKind::Scaled { factor_log2 },
                    vline: vg.index(x),
                },
                vg,
            ));
        }
    }
    if offset_vline_possible(x, y, geom) {
        let vg = place_offset_vline(x, y, geom);
        if vg.same_vline(x, y) {
            out.push((
                UnitKey {
                    kind: UnitKind::Remap { delta: vg.delta() },
                    vline: vg.index(x),
                },
                vg,
            ));
        }
    }
    out
}

/// Verification state for one candidate virtual line.
///
/// Lives behind an `Arc`, attached to every physical-line tracker the
/// virtual line overlaps; sampled accesses inside [`PredictionUnit::range`]
/// feed the history table, counting the invalidations that *would* occur if
/// the virtual line were a real cache line.
#[derive(Debug)]
pub struct PredictionUnit {
    /// Identity (scenario + vline index).
    pub key: UnitKey,
    /// The scenario's partition of the address space.
    pub geometry: VirtualGeometry,
    /// The concrete address range verified.
    pub range: VirtualRange,
    /// The hot pair that spawned this unit.
    pub origin: HotPair,
    core: UnitCore,
}

#[derive(Debug, Default)]
struct UnitState {
    history: HistoryTable,
    invalidations: u64,
    accesses: u64,
}

/// Mode-selected verification state, mirroring `TrackCore`: the mutexed
/// exact oracle, or the packed-atomic lock-free path whose history CAS loop
/// keeps verified invalidation counts exact (see [`crate::lockfree`]).
#[derive(Debug)]
enum UnitCore {
    Precise(Mutex<UnitState>),
    Relaxed {
        /// Packed two-entry history table ([`predator_sim::packed`]).
        history: AtomicU64,
        invalidations: AtomicU64,
        accesses: AtomicU64,
    },
}

/// Immutable snapshot of a unit's verification progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitSnapshot {
    /// Identity.
    pub key: UnitKey,
    /// Verified address range.
    pub range: VirtualRange,
    /// Originating hot pair.
    pub origin: HotPair,
    /// Invalidations verified on the virtual line so far.
    pub invalidations: u64,
    /// Accesses that fed the virtual history table.
    pub accesses: u64,
}

impl PredictionUnit {
    /// Creates a unit for `key` under `geometry`, spawned by `origin`, with
    /// `mode` selecting the mutexed or lock-free verification state.
    pub fn new(
        key: UnitKey,
        geometry: VirtualGeometry,
        origin: HotPair,
        mode: TrackingMode,
    ) -> Self {
        let core = match mode {
            TrackingMode::Precise => UnitCore::Precise(Mutex::new(UnitState::default())),
            TrackingMode::Relaxed => UnitCore::Relaxed {
                history: AtomicU64::new(predator_sim::packed::EMPTY),
                invalidations: AtomicU64::new(0),
                accesses: AtomicU64::new(0),
            },
        };
        PredictionUnit {
            key,
            geometry,
            range: geometry.range(key.vline),
            origin,
            core,
        }
    }

    /// Feeds one access *already known to fall inside `range`*; returns true
    /// if it invalidated the virtual line.
    pub fn record(&self, tid: ThreadId, kind: AccessKind) -> bool {
        let inv = match &self.core {
            UnitCore::Precise(state) => {
                let mut st = state.lock().unwrap();
                st.accesses += 1;
                let inv = st.history.record(tid, kind);
                st.invalidations += inv as u64;
                inv
            }
            UnitCore::Relaxed {
                history,
                invalidations,
                accesses,
            } => {
                accesses.fetch_add(1, Ordering::Relaxed);
                let (_, inv) = lockfree::record_history(history, tid, kind);
                if inv {
                    invalidations.fetch_add(1, Ordering::Relaxed);
                }
                inv
            }
        };
        if inv {
            predator_obs::static_counter!("predict_verified_invalidations_total").inc();
        }
        inv
    }

    /// Verified invalidations so far.
    pub fn invalidations(&self) -> u64 {
        match &self.core {
            UnitCore::Precise(state) => state.lock().unwrap().invalidations,
            UnitCore::Relaxed { invalidations, .. } => invalidations.load(Ordering::Relaxed),
        }
    }

    /// Snapshot for reporting.
    pub fn snapshot(&self) -> UnitSnapshot {
        let (invalidations, accesses) = match &self.core {
            UnitCore::Precise(state) => {
                let st = state.lock().unwrap();
                (st.invalidations, st.accesses)
            }
            UnitCore::Relaxed {
                invalidations,
                accesses,
                ..
            } => (
                invalidations.load(Ordering::Relaxed),
                accesses.load(Ordering::Relaxed),
            ),
        };
        UnitSnapshot {
            key: self.key,
            range: self.range,
            origin: self.origin,
            invalidations,
            accesses,
        }
    }
}

/// Deduplicating registry of all live prediction units.
#[derive(Debug, Default)]
pub struct UnitRegistry {
    units: HashMap<UnitKey, Arc<PredictionUnit>>,
}

impl UnitRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the unit for `key`, creating it from `make` if new; the bool
    /// is true when the unit was just created.
    pub fn get_or_create(
        &mut self,
        key: UnitKey,
        make: impl FnOnce() -> PredictionUnit,
    ) -> (Arc<PredictionUnit>, bool) {
        match self.units.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
            std::collections::hash_map::Entry::Vacant(v) => {
                let u = Arc::new(make());
                v.insert(u.clone());
                (u, true)
            }
        }
    }

    /// Number of live units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when no units exist.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Snapshots of every unit, in deterministic (key) order.
    pub fn snapshots(&self) -> Vec<UnitSnapshot> {
        let mut v: Vec<UnitSnapshot> = self.units.values().map(|u| u.snapshot()).collect();
        v.sort_by_key(|s| s.key);
        v
    }

    /// All units, unordered.
    pub fn all(&self) -> Vec<Arc<PredictionUnit>> {
        self.units.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_sim::AccessKind::{Read, Write};
    use predator_sim::{Owner, WORD_SIZE};

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64)
    }

    fn ws(reads: u64, writes: u64, owner: Owner) -> WordState {
        WordState {
            reads,
            writes,
            owner,
        }
    }

    #[test]
    fn estimate_zero_without_writes() {
        let a = ws(100, 0, Owner::Exclusive(ThreadId(0)));
        let b = ws(100, 0, Owner::Exclusive(ThreadId(1)));
        assert_eq!(estimate_pair_invalidations(&a, &b), 0);
    }

    #[test]
    fn estimate_is_min_of_totals() {
        let a = ws(10, 90, Owner::Exclusive(ThreadId(0)));
        let b = ws(0, 40, Owner::Exclusive(ThreadId(1)));
        assert_eq!(estimate_pair_invalidations(&a, &b), 40);
        // One-sided write still counts.
        let c = ws(50, 0, Owner::Exclusive(ThreadId(2)));
        assert_eq!(estimate_pair_invalidations(&b, &c), 40);
    }

    /// Builds the linear_regression-like pattern: thread 0 hammers the last
    /// word of line 0, thread 1 hammers the first word of line 1.
    fn lreg_trackers(hits: usize) -> (WordTracker, WordTracker) {
        let g = geom();
        let mut l = WordTracker::new(0x4000_0000, g);
        let mut n = WordTracker::new(0x4000_0040, g);
        for _ in 0..hits {
            l.record(ThreadId(0), 0x4000_0038, 8, Write);
            n.record(ThreadId(1), 0x4000_0040, 8, Write);
        }
        (l, n)
    }

    #[test]
    fn finds_cross_line_hot_pair() {
        let (l, n) = lreg_trackers(100);
        let pairs = find_hot_pairs(&l, &n, l.average_accesses());
        assert_eq!(pairs.len(), 1);
        let p = pairs[0];
        assert_eq!(p.x.addr, 0x4000_0038);
        assert_eq!(p.y.addr, 0x4000_0040);
        assert_eq!(p.estimate, 100);
    }

    #[test]
    fn same_thread_pairs_rejected() {
        let g = geom();
        let mut l = WordTracker::new(0, g);
        let mut n = WordTracker::new(64, g);
        for _ in 0..100 {
            l.record(ThreadId(0), 56, 8, Write);
            n.record(ThreadId(0), 64, 8, Write);
        }
        assert!(find_hot_pairs(&l, &n, l.average_accesses()).is_empty());
    }

    #[test]
    fn read_only_pairs_rejected() {
        let g = geom();
        let mut l = WordTracker::new(0, g);
        let mut n = WordTracker::new(64, g);
        for _ in 0..100 {
            l.record(ThreadId(0), 56, 8, Read);
            n.record(ThreadId(1), 64, 8, Read);
        }
        assert!(find_hot_pairs(&l, &n, l.average_accesses()).is_empty());
    }

    #[test]
    fn shared_words_not_paired() {
        let g = geom();
        let mut l = WordTracker::new(0, g);
        let mut n = WordTracker::new(64, g);
        for _ in 0..50 {
            l.record(ThreadId(0), 56, 8, Write);
            l.record(ThreadId(1), 56, 8, Write); // word becomes Shared
            n.record(ThreadId(2), 64, 8, Write);
        }
        let pairs = find_hot_pairs(&l, &n, l.average_accesses());
        assert!(pairs.is_empty(), "shared-owner word must not seed a pair");
    }

    #[test]
    fn low_estimate_pairs_filtered_by_average() {
        let g = geom();
        let mut l = WordTracker::new(0, g);
        let mut n = WordTracker::new(64, g);
        // Uniformly busy line: high average…
        for w in 0..8u64 {
            for _ in 0..100 {
                l.record(ThreadId(0), w * 8, 8, Write);
            }
        }
        // …make one word slightly hotter so it qualifies as hot…
        for _ in 0..10 {
            l.record(ThreadId(0), 56, 8, Write);
        }
        // …but the neighbor's hot word is too cold for the estimate to beat
        // the average (estimate = min(110, 30) = 30 < avg ≈ 101).
        for _ in 0..30 {
            n.record(ThreadId(1), 64, 8, Write);
        }
        assert!(find_hot_pairs(&l, &n, l.average_accesses()).is_empty());
    }

    #[test]
    fn candidates_include_doubled_and_remap_for_adjacent_even_odd_pair() {
        let (l, n) = lreg_trackers(100);
        let pair = find_hot_pairs(&l, &n, l.average_accesses())[0];
        let cands = candidate_units(&pair, geom(), 1);
        // Lines 0x1000000 (even) and 0x1000001 pair up under doubling, and
        // the words are 8 bytes apart → remap candidate too.
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().any(|(k, _)| k.kind == UnitKind::Doubled));
        assert!(cands
            .iter()
            .any(|(k, _)| matches!(k.kind, UnitKind::Remap { .. })));
        for (k, vg) in &cands {
            let r = vg.range(k.vline);
            assert!(r.contains(pair.x.addr));
            assert!(r.contains(pair.y.addr + WORD_SIZE - 1));
        }
    }

    #[test]
    fn odd_even_boundary_gets_remap_but_not_doubled() {
        let g = geom();
        // Hot words across lines 1|2 (odd→even boundary): doubling cannot
        // merge them, remapping can.
        let mut l = WordTracker::new(64, g);
        let mut n = WordTracker::new(128, g);
        for _ in 0..100 {
            l.record(ThreadId(0), 64 + 56, 8, Write);
            n.record(ThreadId(1), 128, 8, Write);
        }
        let pair = find_hot_pairs(&l, &n, l.average_accesses())[0];
        let cands = candidate_units(&pair, g, 1);
        assert_eq!(cands.len(), 1);
        assert!(matches!(cands[0].0.kind, UnitKind::Remap { .. }));
    }

    #[test]
    fn scaled_candidates_appear_at_higher_factors() {
        let g = geom();
        // Hot words on lines 1 and 2: merge first at the 4x scale.
        let mut l = WordTracker::new(64, g);
        let mut n = WordTracker::new(128, g);
        for _ in 0..100 {
            l.record(ThreadId(0), 64, 8, Write);
            n.record(ThreadId(1), 128 + 56, 8, Write);
        }
        let pair = find_hot_pairs(&l, &n, l.average_accesses())[0];
        // Paper setting: only the doubled scenario is considered, and lines
        // 1|2 do not pair under doubling; the words are 120 bytes apart, so
        // no remap either.
        assert!(candidate_units(&pair, g, 1).is_empty());
        // Extension: at max scale 4x, the pair becomes a candidate.
        let cands = candidate_units(&pair, g, 2);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].0.kind, UnitKind::Scaled { factor_log2: 2 });
        let r = cands[0].1.range(cands[0].0.vline);
        assert_eq!(r.size, 256);
        assert!(r.contains(pair.x.addr) && r.contains(pair.y.addr));
    }

    #[test]
    fn unit_verifies_interleaved_invalidations() {
        let g = geom();
        let vg = VirtualGeometry::Doubled(g);
        let key = UnitKey {
            kind: UnitKind::Doubled,
            vline: 0,
        };
        let pair = HotPair {
            x: HotWord {
                addr: 56,
                state: ws(0, 100, Owner::Exclusive(ThreadId(0))),
            },
            y: HotWord {
                addr: 64,
                state: ws(0, 100, Owner::Exclusive(ThreadId(1))),
            },
            estimate: 100,
        };
        for mode in [TrackingMode::Precise, TrackingMode::Relaxed] {
            let u = PredictionUnit::new(key, vg, pair, mode);
            assert_eq!(
                u.range,
                VirtualRange {
                    start: 0,
                    size: 128
                }
            );
            for i in 0..10 {
                u.record(ThreadId(i % 2), Write);
            }
            assert_eq!(u.invalidations(), 9, "{mode}");
            let snap = u.snapshot();
            assert_eq!(snap.accesses, 10);
            assert_eq!(snap.invalidations, 9);
        }
    }

    #[test]
    fn relaxed_unit_conserves_counts_under_contention() {
        let g = geom();
        let vg = VirtualGeometry::Doubled(g);
        let key = UnitKey {
            kind: UnitKind::Doubled,
            vline: 0,
        };
        let pair = HotPair {
            x: HotWord {
                addr: 56,
                state: ws(0, 100, Owner::Exclusive(ThreadId(0))),
            },
            y: HotWord {
                addr: 64,
                state: ws(0, 100, Owner::Exclusive(ThreadId(1))),
            },
            estimate: 100,
        };
        let u = Arc::new(PredictionUnit::new(key, vg, pair, TrackingMode::Relaxed));
        std::thread::scope(|s| {
            for id in 0..4u16 {
                let u = u.clone();
                s.spawn(move || {
                    for _ in 0..5_000 {
                        u.record(ThreadId(id), Write);
                    }
                });
            }
        });
        let snap = u.snapshot();
        assert_eq!(snap.accesses, 20_000, "no access lost under contention");
        assert!(snap.invalidations >= 3 && snap.invalidations < snap.accesses);
    }

    #[test]
    fn registry_dedups_by_key() {
        let g = geom();
        let vg = VirtualGeometry::Doubled(g);
        let key = UnitKey {
            kind: UnitKind::Doubled,
            vline: 3,
        };
        let pair = HotPair {
            x: HotWord {
                addr: 0,
                state: ws(0, 1, Owner::Exclusive(ThreadId(0))),
            },
            y: HotWord {
                addr: 8,
                state: ws(0, 1, Owner::Exclusive(ThreadId(1))),
            },
            estimate: 1,
        };
        let mut reg = UnitRegistry::new();
        let mk = || PredictionUnit::new(key, vg, pair, TrackingMode::Precise);
        let (u1, created1) = reg.get_or_create(key, mk);
        let (u2, created2) = reg.get_or_create(key, mk);
        assert!(created1);
        assert!(!created2);
        assert!(Arc::ptr_eq(&u1, &u2));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.snapshots().len(), 1);
    }
}
