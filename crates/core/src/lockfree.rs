//! Lock-free per-line shadow state — the `relaxed` tracking mode.
//!
//! The paper's runtime updates per-cache-line metadata without locks,
//! accepting benign races for speed (§2.3, Figure 1). This module rebuilds
//! the tracked-line hot path in that spirit while keeping the one count that
//! the detector's verdicts hinge on — **invalidations** — exact:
//!
//! * the two-entry history table (§2.3.1) is packed into a single `AtomicU64`
//!   ([`predator_sim::packed`]) and advanced by a CAS loop over the *pure*
//!   sequential transition function, so every interleaving of concurrent
//!   accesses linearizes to some serial order and no invalidation is ever
//!   lost or double-counted (model-checked in `tests/loom_model.rs`);
//! * word/line counters are plain `Relaxed` atomics fed through a per-line
//!   *batch slot*: one packed word remembering the last writer's `(thread,
//!   word)` plus its pending read/write counts, so a thread streaming over
//!   its own word coalesces counter updates into one CAS each and drains
//!   only when displaced by another thread (or when the next write would
//!   land on a `PredictionThreshold` multiple — see [`batch`]);
//! * the only ordering stronger than `Relaxed` is an `Acquire` fence on the
//!   threshold-promotion edge, taken once per `PredictionThreshold` writes,
//!   so the hot-pair analysis that follows observes the counter updates
//!   drained before the threshold was crossed.
//!
//! The algorithms are generic over [`RawU64`] — a minimal atomic-word
//! interface implemented by `std::sync::atomic::AtomicU64` for production
//! and by the vendored `loom` shim's `AtomicU64` in the model tests, so the
//! code that is model-checked is the code that ships, not a replica.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

use predator_sim::{packed, AccessKind, Owner, ThreadId, WordState, WordTracker};

/// Minimal atomic `u64` cell the lock-free algorithms are written against.
///
/// All operations are `Relaxed`: the protocols below rely only on the
/// per-location total modification order that every atomic RMW already
/// participates in, never on cross-location ordering (the single exception,
/// the promotion-edge `Acquire` fence, is issued by the caller).
pub trait RawU64 {
    /// Relaxed load.
    fn load(&self) -> u64;
    /// Relaxed compare-exchange (strong); `Err` carries the observed value.
    fn cas(&self, current: u64, new: u64) -> Result<u64, u64>;
    /// Relaxed fetch-add.
    fn fetch_add(&self, val: u64) -> u64;
    /// Relaxed store.
    fn store(&self, val: u64);
}

impl RawU64 for AtomicU64 {
    #[inline]
    fn load(&self) -> u64 {
        AtomicU64::load(self, Ordering::Relaxed)
    }

    #[inline]
    fn cas(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }

    #[inline]
    fn fetch_add(&self, val: u64) -> u64 {
        AtomicU64::fetch_add(self, val, Ordering::Relaxed)
    }

    #[inline]
    fn store(&self, val: u64) {
        AtomicU64::store(self, val, Ordering::Relaxed)
    }
}

/// Advances a packed history table (see [`predator_sim::packed`]) by one
/// access, lock-free. Returns `(previous_packed_table, invalidated)`.
///
/// The CAS loop applies the pure `HistoryTable::record` transition; because
/// an access whose transition is the identity never invalidates, the common
/// case of a thread re-touching a line it already owns is a single relaxed
/// load with no RMW at all. Every *successful* CAS is one linearized
/// application of the sequential rules, so summing the returned `invalidated`
/// flags across threads counts exactly the invalidations of the history's
/// modification order — no interleaving can lose or duplicate one.
pub fn record_history<A: RawU64>(hist: &A, tid: ThreadId, kind: AccessKind) -> (u64, bool) {
    let mut cur = hist.load();
    loop {
        let (next, invalidated) = packed::transition(cur, tid, kind);
        if next == cur {
            return (cur, false);
        }
        match hist.cas(cur, next) {
            Ok(_) => return (cur, invalidated),
            Err(actual) => cur = actual,
        }
    }
}

/// True when adding `added` writes to a counter previously at `prev` crosses
/// (or lands on) a multiple of `threshold` — the promotion edge that makes
/// hot-pair analysis due.
#[inline]
pub fn crosses_threshold(prev: u64, added: u64, threshold: u64) -> bool {
    added > 0 && (prev + added) / threshold > prev / threshold
}

/// The per-line batch slot: last-writer word state packed into one atomic.
///
/// Layout (low to high):
///
/// ```text
/// [allowance:8][writes:8][reads:8][word:8][tid:16][unused:15][present:1]
/// ```
///
/// A thread streaming accesses over one word of a line parks its pending
/// read/write counts here with single CASes; the counts drain into the
/// per-word atomics when another `(thread, word)` displaces the batch, when
/// a snapshot claims it, or when `allowance` — the number of further writes
/// that may defer before the line's committed write count reaches the next
/// `PredictionThreshold` multiple — runs out. The allowance cap is what
/// keeps `analysis_due` firing on exactly the k·threshold-th write under any
/// serialized feed, which the differential suite checks against the mutexed
/// precise mode.
pub mod batch {
    /// Maximum pending count per kind before a forced drain.
    pub const MAX_PENDING: u64 = u8::MAX as u64;
    const PRESENT: u64 = 1 << 63;

    /// True when the slot holds a batch.
    #[inline]
    pub fn present(bits: u64) -> bool {
        bits & PRESENT != 0
    }

    /// Owning thread of the batch.
    #[inline]
    pub fn tid(bits: u64) -> u16 {
        (bits >> 32) as u16
    }

    /// Word index the batch accumulates on.
    #[inline]
    pub fn word(bits: u64) -> u8 {
        (bits >> 24) as u8
    }

    /// Pending reads.
    #[inline]
    pub fn reads(bits: u64) -> u64 {
        (bits >> 16) & 0xff
    }

    /// Pending writes.
    #[inline]
    pub fn writes(bits: u64) -> u64 {
        (bits >> 8) & 0xff
    }

    /// Writes this batch may still absorb before a forced drain.
    #[inline]
    pub fn allowance(bits: u64) -> u64 {
        bits & 0xff
    }

    /// A fresh batch holding exactly the offering access. `write_allowance`
    /// is the distance (in writes, inclusive) to the next threshold
    /// multiple; the caller guarantees `write_allowance > 1` for writes.
    #[inline]
    pub fn new(tid: u16, word: u8, is_write: bool, write_allowance: u64) -> u64 {
        let clamped = write_allowance.min(MAX_PENDING + 1);
        let left = clamped - is_write as u64;
        PRESENT
            | ((tid as u64) << 32)
            | ((word as u64) << 24)
            | ((!is_write as u64) << 16)
            | ((is_write as u64) << 8)
            | left.min(MAX_PENDING)
    }

    /// Absorbs one more read.
    #[inline]
    pub fn bump_read(bits: u64) -> u64 {
        bits + (1 << 16)
    }

    /// Absorbs one more write, consuming one unit of allowance.
    #[inline]
    pub fn bump_write(bits: u64) -> u64 {
        bits + (1 << 8) - 1
    }
}

/// Outcome of offering one access to a line's batch slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The access was absorbed into the pending batch; nothing to drain.
    Deferred,
    /// The caller claimed the slot. It must drain `displaced` (`0` when the
    /// slot was empty) into the per-word counters and then apply its own
    /// access directly.
    Claimed {
        /// The batch that was displaced, in [`batch`] encoding.
        displaced: u64,
    },
}

/// Offers one single-word access to the batch slot.
///
/// `write_allowance` is the number of writes (inclusive) until the line's
/// committed write count reaches the next `PredictionThreshold` multiple; a
/// write arriving with `write_allowance <= 1` *is* the threshold-crossing
/// write and is never deferred, so the promotion edge is observed by the
/// access that causes it.
///
/// Conservation invariant (model-checked): every offered access is counted
/// exactly once — either inside the batch word (pending) or by the caller
/// that drains it — under all interleavings.
pub fn offer_batch<A: RawU64>(
    slot: &A,
    tid: u16,
    word: u8,
    is_write: bool,
    write_allowance: u64,
) -> Offer {
    let mut cur = slot.load();
    loop {
        let res = if !batch::present(cur) {
            if is_write && write_allowance <= 1 {
                return Offer::Claimed { displaced: 0 };
            }
            slot.cas(cur, batch::new(tid, word, is_write, write_allowance))
        } else if batch::tid(cur) == tid
            && batch::word(cur) == word
            && if is_write {
                batch::allowance(cur) > 1 && batch::writes(cur) < batch::MAX_PENDING
            } else {
                batch::reads(cur) < batch::MAX_PENDING
            }
        {
            let next = if is_write {
                batch::bump_write(cur)
            } else {
                batch::bump_read(cur)
            };
            slot.cas(cur, next)
        } else {
            match slot.cas(cur, 0) {
                Ok(_) => return Offer::Claimed { displaced: cur },
                Err(actual) => Err(actual),
            }
        };
        match res {
            Ok(_) => return Offer::Deferred,
            Err(actual) => cur = actual,
        }
    }
}

/// Claims whatever batch is pending (for snapshots, resets and straddling
/// accesses that bypass the single-word fast path). Returns `0` when empty.
pub fn take_batch<A: RawU64>(slot: &A) -> u64 {
    let mut cur = slot.load();
    while batch::present(cur) {
        match slot.cas(cur, 0) {
            Ok(_) => return cur,
            Err(actual) => cur = actual,
        }
    }
    0
}

// ---- concrete per-line state (std atomics) ----

/// Word-owner encoding inside an `AtomicU32`: untouched / shared / tid.
const OWNER_UNTOUCHED: u32 = 0;
const OWNER_SHARED: u32 = 1;

#[inline]
fn owner_encode(tid: u16) -> u32 {
    tid as u32 + 2
}

#[inline]
fn owner_decode(bits: u32) -> Owner {
    match bits {
        OWNER_UNTOUCHED => Owner::Untouched,
        OWNER_SHARED => Owner::Shared,
        other => Owner::Exclusive(ThreadId((other - 2) as u16)),
    }
}

/// Per-word counters of the relaxed path: two relaxed totals plus the
/// exclusive/shared owner state machine (monotone: untouched → exclusive →
/// shared, so CAS races can only converge).
#[derive(Debug)]
struct RelaxedWord {
    reads: AtomicU64,
    writes: AtomicU64,
    owner: AtomicU32,
}

impl RelaxedWord {
    fn new() -> Self {
        RelaxedWord {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            owner: AtomicU32::new(OWNER_UNTOUCHED),
        }
    }

    fn note_owner(&self, tid: u16) {
        let enc = owner_encode(tid);
        let mut cur = self.owner.load(Ordering::Relaxed);
        loop {
            let next = match cur {
                OWNER_UNTOUCHED => enc,
                OWNER_SHARED => return,
                c if c == enc => return,
                _ => OWNER_SHARED,
            };
            match self
                .owner
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    fn snapshot(&self) -> WordState {
        WordState {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            owner: owner_decode(self.owner.load(Ordering::Relaxed)),
        }
    }
}

/// Slots for remembering the last word each thread touched (flight-recorder
/// victim attribution). A line is touched by a handful of threads; overflow
/// degrades to `WORD_UNKNOWN`, never blocks.
const LAST_WORD_SLOTS: usize = 16;
const LAST_PRESENT: u32 = 1 << 31;

/// Lock-free shadow state for one tracked cache line (`relaxed` mode).
#[derive(Debug)]
pub(crate) struct RelaxedLine {
    /// Packed two-entry history table ([`predator_sim::packed`]).
    hist: AtomicU64,
    /// Batch slot ([`batch`] encoding).
    slot: AtomicU64,
    invalidations: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    words: Box<[RelaxedWord]>,
    /// `[present:1][unused:7][tid:16][word:8]` per slot; 0 = empty.
    last_words: [AtomicU32; LAST_WORD_SLOTS],
}

/// What one relaxed access did, mirroring the mutexed path's outcome.
pub(crate) struct RelaxedOutcome {
    pub invalidated: bool,
    pub analysis_due: bool,
    /// History entries as they stood *before* this access landed — the
    /// victim candidates of an invalidating write.
    pub prev_history: u64,
}

impl RelaxedLine {
    pub fn new(words_per_line: usize) -> Self {
        RelaxedLine {
            hist: AtomicU64::new(packed::EMPTY),
            slot: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            words: (0..words_per_line).map(|_| RelaxedWord::new()).collect(),
            last_words: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    /// Records one access: exact history/invalidation update, batched
    /// counter update, threshold-promotion detection.
    ///
    /// `lo_word..=hi_word` is the access's in-line word span (empty span
    /// callers skip the counter path); `prediction_threshold` is
    /// `u64::MAX`-like (never crossed) when prediction is off.
    pub fn record(
        &self,
        tid: ThreadId,
        lo_word: usize,
        hi_word: usize,
        kind: AccessKind,
        prediction_threshold: Option<u64>,
    ) -> RelaxedOutcome {
        let (prev_history, invalidated) = record_history(&self.hist, tid, kind);
        if invalidated {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        let is_write = kind == AccessKind::Write;
        let mut due = false;
        if lo_word == hi_word {
            // Single-word access: the batchable fast path.
            // Distance (in writes) to the next threshold multiple, computed
            // for reads too: a read may found the batch that later writes
            // join, and the allowance it seeds must still bound them.
            let allowance = match prediction_threshold {
                Some(t) => t - self.writes.load(Ordering::Relaxed) % t,
                None => u64::MAX,
            };
            match offer_batch(&self.slot, tid.0, lo_word as u8, is_write, allowance) {
                Offer::Deferred => {}
                Offer::Claimed { displaced } => {
                    due |= self.drain(displaced, prediction_threshold);
                    due |= self.apply(tid, lo_word, hi_word, kind, prediction_threshold);
                }
            }
        } else {
            // Straddling access: flush any pending batch, then apply each
            // touched word directly (mirrors `WordTracker::record`).
            due |= self.drain(take_batch(&self.slot), prediction_threshold);
            due |= self.apply(tid, lo_word, hi_word, kind, prediction_threshold);
        }
        if due {
            // The promotion edge: make the counter updates drained above
            // visible to the hot-pair analysis that runs next.
            fence(Ordering::Acquire);
        }
        RelaxedOutcome {
            invalidated,
            analysis_due: due,
            prev_history,
        }
    }

    /// Drains a claimed batch into the per-word and per-line counters.
    /// Returns true when the drained writes crossed the threshold.
    fn drain(&self, bits: u64, prediction_threshold: Option<u64>) -> bool {
        if !batch::present(bits) {
            return false;
        }
        let (r, w) = (batch::reads(bits), batch::writes(bits));
        let word = &self.words[batch::word(bits) as usize];
        word.note_owner(batch::tid(bits));
        if r > 0 {
            word.reads.fetch_add(r, Ordering::Relaxed);
            self.reads.fetch_add(r, Ordering::Relaxed);
        }
        if w > 0 {
            word.writes.fetch_add(w, Ordering::Relaxed);
            let prev = self.writes.fetch_add(w, Ordering::Relaxed);
            if let Some(t) = prediction_threshold {
                return crosses_threshold(prev, w, t);
            }
        }
        false
    }

    /// Applies one access directly (no batching) to every touched word.
    /// Line totals count the access once, as the precise path does.
    fn apply(
        &self,
        tid: ThreadId,
        lo_word: usize,
        hi_word: usize,
        kind: AccessKind,
        prediction_threshold: Option<u64>,
    ) -> bool {
        for word in &self.words[lo_word..=hi_word] {
            word.note_owner(tid.0);
            match kind {
                AccessKind::Read => word.reads.fetch_add(1, Ordering::Relaxed),
                AccessKind::Write => word.writes.fetch_add(1, Ordering::Relaxed),
            };
        }
        match kind {
            AccessKind::Read => {
                self.reads.fetch_add(1, Ordering::Relaxed);
                false
            }
            AccessKind::Write => {
                let prev = self.writes.fetch_add(1, Ordering::Relaxed);
                prediction_threshold.is_some_and(|t| crosses_threshold(prev, 1, t))
            }
        }
    }

    /// Drains the pending batch (if any) and snapshots all counters.
    pub fn snapshot(&self, base: u64) -> (WordTracker, u64, u64, u64) {
        self.drain(take_batch(&self.slot), None);
        let words = self.words.iter().map(RelaxedWord::snapshot).collect();
        (
            WordTracker::from_parts(base, words),
            self.invalidations.load(Ordering::Relaxed),
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }

    /// Verified invalidations so far (drains nothing).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Clears all recorded state (the metadata refresh on object free).
    pub fn reset(&self) {
        self.hist.store(packed::EMPTY, Ordering::Relaxed);
        self.slot.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        for w in self.words.iter() {
            w.reads.store(0, Ordering::Relaxed);
            w.writes.store(0, Ordering::Relaxed);
            w.owner.store(OWNER_UNTOUCHED, Ordering::Relaxed);
        }
        for s in &self.last_words {
            s.store(0, Ordering::Relaxed);
        }
    }

    /// Remembers the last word `tid` touched (recorder attribution).
    pub fn note_word(&self, tid: ThreadId, word: u8) {
        let enc = LAST_PRESENT | ((tid.0 as u32) << 8) | word as u32;
        for slot in &self.last_words {
            let cur = slot.load(Ordering::Relaxed);
            if cur & LAST_PRESENT != 0 && (cur >> 8) as u16 == tid.0 {
                slot.store(enc, Ordering::Relaxed);
                return;
            }
            if cur == 0
                && slot
                    .compare_exchange(cur, enc, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            // Slot raced to another thread: keep scanning.
        }
    }

    /// Last word `tid` was seen touching, or `WORD_UNKNOWN`.
    pub fn last_word(&self, tid: ThreadId) -> u8 {
        for slot in &self.last_words {
            let cur = slot.load(Ordering::Relaxed);
            if cur & LAST_PRESENT != 0 && (cur >> 8) as u16 == tid.0 {
                return cur as u8;
            }
        }
        predator_obs::recorder::WORD_UNKNOWN
    }
}

// ---- lock-free unit list ----

use std::sync::atomic::AtomicPtr;
use std::sync::Arc;

use crate::predict::PredictionUnit;

struct UnitNode {
    unit: Arc<PredictionUnit>,
    next: *mut UnitNode,
}

/// Append-only lock-free list of prediction units attached to a line.
///
/// Attachment is rare (once per unit per overlapped line) while traversal is
/// the per-sampled-access hot path, so the structure optimizes reads: a
/// singly-linked list published by a Release CAS on the head and walked with
/// Acquire loads. Nodes are never unlinked before the list drops, so
/// traversals need no reclamation scheme.
#[derive(Debug)]
pub(crate) struct UnitList {
    head: AtomicPtr<UnitNode>,
}

impl std::fmt::Debug for UnitNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnitNode")
            .field("key", &self.unit.key)
            .finish()
    }
}

impl UnitList {
    pub fn new() -> Self {
        UnitList {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Appends `unit` unless a unit with the same key is already present.
    /// Linearizable dedup: after a failed CAS the whole list is rescanned
    /// from the new head, so two racing inserts of one key cannot both land.
    pub fn push_if_absent(&self, unit: Arc<PredictionUnit>) -> bool {
        let mut node = Box::new(UnitNode {
            unit,
            next: std::ptr::null_mut(),
        });
        loop {
            let head = self.head.load(Ordering::Acquire);
            let mut cur = head;
            while !cur.is_null() {
                let n = unsafe { &*cur };
                if n.unit.key == node.unit.key {
                    return false;
                }
                cur = n.next;
            }
            node.next = head;
            let raw = Box::into_raw(node);
            match self
                .head
                .compare_exchange(head, raw, Ordering::Release, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(_) => node = unsafe { Box::from_raw(raw) },
            }
        }
    }

    /// Visits every attached unit (newest first).
    pub fn for_each(&self, mut f: impl FnMut(&Arc<PredictionUnit>)) {
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            let n = unsafe { &*cur };
            f(&n.unit);
            cur = n.next;
        }
    }

    /// Number of attached units.
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.for_each(|_| n += 1);
        n
    }
}

impl Drop for UnitList {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next;
        }
    }
}

// The raw pointers reference heap nodes owned by the list; the payloads are
// Send + Sync (`Arc<PredictionUnit>`), and all mutation is CAS-published.
unsafe impl Send for UnitList {}
unsafe impl Sync for UnitList {}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_sim::AccessKind::{Read, Write};
    use predator_sim::HistoryTable;
    use proptest::prelude::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn record_history_matches_sequential_rules() {
        let h = AtomicU64::new(packed::EMPTY);
        let mut seq = HistoryTable::new();
        for i in 0..10u16 {
            let tid = ThreadId(i % 2);
            let (_, inv) = record_history(&h, tid, Write);
            assert_eq!(inv, seq.record(tid, Write));
        }
        assert_eq!(packed::unpack(h.load(Ordering::Relaxed)), seq);
    }

    #[test]
    fn redundant_access_skips_rmw_and_reports_prev() {
        let h = AtomicU64::new(packed::EMPTY);
        record_history(&h, T0, Write);
        let before = h.load(Ordering::Relaxed);
        let (prev, inv) = record_history(&h, T0, Write);
        assert_eq!(prev, before);
        assert!(!inv);
        assert_eq!(h.load(Ordering::Relaxed), before);
    }

    #[test]
    fn crosses_threshold_exact_multiples() {
        assert!(crosses_threshold(15, 1, 16));
        assert!(!crosses_threshold(14, 1, 16));
        assert!(!crosses_threshold(16, 0, 16));
        assert!(crosses_threshold(10, 10, 16));
        assert!(crosses_threshold(0, 32, 16));
        assert!(crosses_threshold(0, 1, 1));
    }

    #[test]
    fn batch_roundtrip_encoding() {
        let b = batch::new(7, 3, true, 16);
        assert!(batch::present(b));
        assert_eq!(batch::tid(b), 7);
        assert_eq!(batch::word(b), 3);
        assert_eq!(batch::reads(b), 0);
        assert_eq!(batch::writes(b), 1);
        assert_eq!(batch::allowance(b), 15);
        let b = batch::bump_read(batch::bump_write(b));
        assert_eq!(batch::reads(b), 1);
        assert_eq!(batch::writes(b), 2);
        assert_eq!(batch::allowance(b), 14);
    }

    #[test]
    fn threshold_write_is_never_deferred() {
        let slot = AtomicU64::new(0);
        // Distance 1: this write lands on the multiple, must be applied now.
        assert_eq!(
            offer_batch(&slot, 0, 0, true, 1),
            Offer::Claimed { displaced: 0 }
        );
        // Distance 2: defers; the *next* write must then claim.
        assert_eq!(offer_batch(&slot, 0, 0, true, 2), Offer::Deferred);
        match offer_batch(&slot, 0, 0, true, 1) {
            Offer::Claimed { displaced } => {
                assert_eq!(batch::writes(displaced), 1);
            }
            other => panic!("expected claim, got {other:?}"),
        }
    }

    #[test]
    fn displacement_hands_back_full_batch() {
        let slot = AtomicU64::new(0);
        for _ in 0..5 {
            assert_eq!(offer_batch(&slot, 1, 2, false, u64::MAX), Offer::Deferred);
        }
        match offer_batch(&slot, 2, 2, false, u64::MAX) {
            Offer::Claimed { displaced } => {
                assert_eq!(batch::tid(displaced), 1);
                assert_eq!(batch::reads(displaced), 5);
                assert_eq!(batch::writes(displaced), 0);
            }
            other => panic!("expected claim, got {other:?}"),
        }
    }

    #[test]
    fn relaxed_line_serial_feed_matches_word_tracker() {
        let line = RelaxedLine::new(8);
        let mut oracle = WordTracker::new(0, predator_sim::CacheGeometry::new(64));
        let script: Vec<(u16, u64, u8, AccessKind)> = (0..200)
            .map(|i| {
                let tid = (i % 3) as u16;
                let addr = ((i * 7) % 56) as u64;
                let size = if i % 5 == 0 { 8 } else { 4 };
                let kind = if i % 2 == 0 { Write } else { Read };
                (tid, addr, size, kind)
            })
            .collect();
        for &(tid, addr, size, kind) in &script {
            let lo = (addr / 8) as usize;
            let hi = ((addr + size as u64 - 1).min(63) / 8) as usize;
            line.record(ThreadId(tid), lo, hi, kind, Some(16));
            oracle.record(ThreadId(tid), addr, size, kind);
        }
        let (words, _inv, reads, writes) = line.snapshot(0);
        assert_eq!(words, oracle);
        assert_eq!(reads, script.iter().filter(|a| a.3 == Read).count() as u64);
        assert_eq!(
            writes,
            script.iter().filter(|a| a.3 == Write).count() as u64
        );
    }

    #[test]
    fn analysis_due_fires_on_exact_multiples_in_serial_feed() {
        let line = RelaxedLine::new(8);
        let mut due_at = Vec::new();
        for i in 1..=40u64 {
            if line.record(T0, 0, 0, Write, Some(16)).analysis_due {
                due_at.push(i);
            }
        }
        assert_eq!(due_at, vec![16, 32]);
    }

    #[test]
    fn due_still_fires_across_displacements() {
        let line = RelaxedLine::new(8);
        let mut due_at = Vec::new();
        for i in 1..=32u64 {
            let tid = ThreadId((i % 2) as u16);
            if line
                .record(tid, tid.index(), tid.index(), Write, Some(16))
                .analysis_due
            {
                due_at.push(i);
            }
        }
        assert_eq!(due_at, vec![16, 32]);
    }

    #[test]
    fn last_words_attribution() {
        let line = RelaxedLine::new(8);
        assert_eq!(line.last_word(T0), predator_obs::recorder::WORD_UNKNOWN);
        line.note_word(T0, 3);
        line.note_word(T1, 5);
        line.note_word(T0, 4);
        assert_eq!(line.last_word(T0), 4);
        assert_eq!(line.last_word(T1), 5);
    }

    #[test]
    fn reset_clears_everything() {
        let line = RelaxedLine::new(8);
        for i in 0..20u16 {
            line.record(ThreadId(i % 2), 0, 0, Write, Some(16));
        }
        line.note_word(T0, 1);
        line.reset();
        let (words, inv, reads, writes) = line.snapshot(0);
        assert_eq!((inv, reads, writes), (0, 0, 0));
        assert_eq!(words.total_accesses(), 0);
        assert_eq!(line.last_word(T0), predator_obs::recorder::WORD_UNKNOWN);
    }

    #[test]
    fn concurrent_counts_conserved() {
        let line = std::sync::Arc::new(RelaxedLine::new(8));
        std::thread::scope(|s| {
            for id in 0..4u16 {
                let line = line.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        let kind = if i % 4 == 0 { Read } else { Write };
                        line.record(ThreadId(id), id as usize, id as usize, kind, Some(1024));
                    }
                });
            }
        });
        let (words, inv, reads, writes) = line.snapshot(0);
        assert_eq!(reads, 4 * 2_500);
        assert_eq!(writes, 4 * 7_500);
        assert_eq!(words.total_accesses(), 40_000);
        assert!(inv >= 3 && inv < writes);
        for w in 0..4 {
            assert_eq!(words.words()[w].owner, Owner::Exclusive(ThreadId(w as u16)));
        }
    }

    proptest! {
        /// Serialized relaxed feeds reproduce the sequential oracle exactly:
        /// same per-word counters, same line totals, same invalidations,
        /// same analysis-due points.
        #[test]
        fn prop_serial_relaxed_equals_sequential(
            script in proptest::collection::vec(
                (0u16..4, 0usize..8, prop::bool::ANY), 0..300),
            threshold in 1u64..32,
        ) {
            let line = RelaxedLine::new(8);
            let mut hist = HistoryTable::new();
            let mut oracle = WordTracker::new(0, predator_sim::CacheGeometry::new(64));
            let (mut inv, mut writes) = (0u64, 0u64);
            for &(tid, word, w) in &script {
                let kind = if w { Write } else { Read };
                let out = line.record(ThreadId(tid), word, word, kind, Some(threshold));
                let expect_inv = hist.record(ThreadId(tid), kind);
                prop_assert_eq!(out.invalidated, expect_inv);
                inv += expect_inv as u64;
                oracle.record(ThreadId(tid), (word * 8) as u64, 8, kind);
                if w {
                    writes += 1;
                    prop_assert_eq!(out.analysis_due, writes.is_multiple_of(threshold));
                } else {
                    prop_assert!(!out.analysis_due);
                }
            }
            let (words, line_inv, _, line_writes) = line.snapshot(0);
            prop_assert_eq!(words, oracle);
            prop_assert_eq!(line_inv, inv);
            prop_assert_eq!(line_writes, writes);
        }
    }
}
