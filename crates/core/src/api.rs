//! [`Session`]: the ergonomic front door tying space, heap, and detector
//! together.
//!
//! A session models one instrumented program execution: workloads allocate
//! through it (callsites captured), register globals, spawn threads, and
//! perform typed reads/writes that both touch the simulated memory and
//! notify the detector — exactly what the compiler instrumentation of §2.2
//! arranges for a real program. `Session` is `Sync`; share it across workload
//! threads by reference (`std::thread::scope`) or `Arc`.

use predator_alloc::{AllocError, Callsite, FreeError, ObjectInfo, TrackedHeap};
use predator_shadow::{Scalar, SimSpace};
use predator_sim::{AccessKind, ThreadId};

use crate::config::DetectorConfig;
use crate::registry::ThreadRegistry;
use crate::report::{build_report, Report};
use crate::runtime::Predator;

/// Default simulated heap size (64 MiB).
pub const DEFAULT_HEAP_BYTES: u64 = 64 << 20;

/// One instrumented execution: simulated memory + allocator + detector.
pub struct Session {
    space: SimSpace,
    heap: TrackedHeap,
    runtime: Predator,
    threads: ThreadRegistry,
}

impl Session {
    /// Creates a session with `heap_bytes` of simulated memory under `cfg`.
    pub fn new(cfg: DetectorConfig, heap_bytes: u64) -> Self {
        let space = SimSpace::new(heap_bytes as usize);
        let runtime = Predator::for_space(cfg, &space);
        let heap = TrackedHeap::new(
            space.base(),
            space.size(),
            cfg.geometry.line_size(),
            predator_alloc::heap::DEFAULT_SEGMENT,
        );
        Session {
            space,
            heap,
            runtime,
            threads: ThreadRegistry::new(),
        }
    }

    /// A session with the default heap size.
    pub fn with_config(cfg: DetectorConfig) -> Self {
        Self::new(cfg, DEFAULT_HEAP_BYTES)
    }

    /// The simulated address space.
    pub fn space(&self) -> &SimSpace {
        &self.space
    }

    /// The tracked allocator.
    pub fn heap(&self) -> &TrackedHeap {
        &self.heap
    }

    /// The detector runtime.
    pub fn runtime(&self) -> &Predator {
        &self.runtime
    }

    /// Registers the calling workload thread, returning its dense id.
    pub fn register_thread(&self) -> ThreadId {
        self.threads.register()
    }

    /// Number of threads registered so far.
    pub fn thread_count(&self) -> usize {
        self.threads.count()
    }

    /// Allocates `size` bytes for `tid`, recording `callsite`.
    pub fn malloc(
        &self,
        tid: ThreadId,
        size: u64,
        callsite: Callsite,
    ) -> Result<ObjectInfo, AllocError> {
        self.heap.malloc(tid, size, callsite)
    }

    /// Frees the object starting at `addr`, applying the §2.3.2 reuse rules:
    /// objects involved in (observed or predicted) false sharing are
    /// quarantined; otherwise the object's line metadata is refreshed and
    /// the block recycled.
    pub fn free(&self, tid: ThreadId, addr: u64) -> Result<(), FreeError> {
        let info = self
            .heap
            .object_at(addr)
            .filter(|o| o.start == addr)
            .ok_or(FreeError::UnknownObject(addr))?;
        let involved = self.runtime.object_freed(info.start, info.usable);
        if involved {
            self.heap.mark_no_reuse(info.start);
        }
        self.heap.free(tid, addr).map(|_| ())
    }

    /// Reallocates the object at `addr` to `new_size` bytes: allocates a
    /// new block, copies the overlapping prefix, then frees the old block
    /// under the usual lifecycle rules (metadata refresh or quarantine).
    ///
    /// The copy is *uninstrumented*, matching the paper's toolchain: libc's
    /// `memcpy` is not compiled by the instrumenting pass, so its accesses
    /// never reach the runtime.
    pub fn realloc(
        &self,
        tid: ThreadId,
        addr: u64,
        new_size: u64,
        callsite: Callsite,
    ) -> Result<ObjectInfo, FreeError> {
        let old = self
            .heap
            .object_at(addr)
            .filter(|o| o.start == addr)
            .ok_or(FreeError::UnknownObject(addr))?;
        let new = self
            .heap
            .malloc(tid, new_size, callsite)
            .expect("simulated heap exhausted during realloc");
        let copy_words = old.size.min(new_size) / 8;
        for w in 0..copy_words {
            let v = self.space.load::<u64>(old.start + w * 8);
            self.space.store::<u64>(new.start + w * 8, v);
        }
        self.free(tid, addr)?;
        Ok(new)
    }

    /// Allocates and registers a named global variable, returning its
    /// address. Globals are attributed by name in reports.
    pub fn global(&self, name: &str, size: u64) -> u64 {
        let info = self
            .heap
            .malloc(ThreadId::MAIN, size, Callsite::from_frames(vec![]))
            .expect("global allocation failed");
        self.runtime.register_global(name, info.start, size);
        info.start
    }

    /// Instrumented typed load: notifies the detector, then reads memory.
    #[inline]
    pub fn read<T: Scalar>(&self, tid: ThreadId, addr: u64) -> T {
        self.runtime
            .handle_access(tid, addr, T::SIZE, AccessKind::Read);
        self.space.load(addr)
    }

    /// Instrumented typed store.
    #[inline]
    pub fn write<T: Scalar>(&self, tid: ThreadId, addr: u64, value: T) {
        self.runtime
            .handle_access(tid, addr, T::SIZE, AccessKind::Write);
        self.space.store(addr, value)
    }

    /// Instrumented read-modify-write (`addr += delta`), reported as a
    /// write — models an atomic counter or uninstrumented `x += v`.
    #[inline]
    pub fn fetch_add(&self, tid: ThreadId, addr: u64, delta: u64) -> u64 {
        self.runtime.handle_access(tid, addr, 8, AccessKind::Write);
        self.space.fetch_add_u64(addr, delta)
    }

    /// Instrumented compare-exchange, reported as a write (models a lock
    /// acquisition attempt, e.g. a spinlock in a pool).
    #[inline]
    pub fn compare_exchange(
        &self,
        tid: ThreadId,
        addr: u64,
        current: u64,
        new: u64,
    ) -> Result<u64, u64> {
        self.runtime.handle_access(tid, addr, 8, AccessKind::Write);
        self.space.compare_exchange_u64(addr, current, new)
    }

    /// Uninstrumented store — models initialization code the compiler pass
    /// skips (or a blacklisted module, §2.4.2).
    #[inline]
    pub fn write_untracked<T: Scalar>(&self, addr: u64, value: T) {
        self.space.store(addr, value)
    }

    /// Uninstrumented load.
    #[inline]
    pub fn read_untracked<T: Scalar>(&self, addr: u64) -> T {
        self.space.load(addr)
    }

    /// Builds the ranked report for everything observed/predicted so far.
    pub fn report(&self) -> Report {
        build_report(&self.runtime, Some(&self.heap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::FindingKind;

    fn session() -> Session {
        Session::new(DetectorConfig::sensitive(), 4 << 20)
    }

    #[test]
    fn typed_rw_roundtrip_is_instrumented() {
        let s = session();
        let tid = s.register_thread();
        let obj = s.malloc(tid, 64, Callsite::here()).unwrap();
        s.write::<u64>(tid, obj.start, 77);
        assert_eq!(s.read::<u64>(tid, obj.start), 77);
        assert_eq!(s.runtime().events(), 2);
    }

    #[test]
    fn untracked_accesses_bypass_the_detector() {
        let s = session();
        s.write_untracked::<u64>(s.space().base(), 5);
        assert_eq!(s.read_untracked::<u64>(s.space().base()), 5);
        assert_eq!(s.runtime().events(), 0);
    }

    #[test]
    fn end_to_end_false_sharing_detection() {
        let s = session();
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let obj = s.malloc(t0, 64, Callsite::here()).unwrap();
        // Interleaved writes to adjacent words — classic false sharing.
        for _ in 0..300 {
            s.write::<u64>(t0, obj.start, 1);
            s.write::<u64>(t1, obj.start + 8, 2);
        }
        let r = s.report();
        assert!(r.has_observed_false_sharing());
        let f = r.false_sharing().next().unwrap();
        assert_eq!(f.object.start, obj.start);
    }

    #[test]
    fn end_to_end_prediction_across_lines() {
        let s = session();
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        // 128-byte object: t0 at the end of its first line, t1 at the start
        // of its second.
        let obj = s.malloc(t0, 128, Callsite::here()).unwrap();
        assert_eq!(obj.start % 64, 0);
        for _ in 0..600 {
            s.write::<u64>(t0, obj.start + 56, 1);
            s.write::<u64>(t1, obj.start + 64, 2);
        }
        let r = s.report();
        assert!(!r.has_observed_false_sharing());
        assert!(r.has_predicted_false_sharing());
    }

    #[test]
    fn quarantine_applies_to_falsely_shared_objects() {
        let s = session();
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let obj = s.malloc(t0, 64, Callsite::here()).unwrap();
        for _ in 0..300 {
            s.write::<u64>(t0, obj.start, 1);
            s.write::<u64>(t1, obj.start + 8, 2);
        }
        s.free(t0, obj.start).unwrap();
        assert!(s.heap().is_quarantined(obj.start));
        // Metadata persists: the report still shows the problem.
        assert!(s.report().has_false_sharing());
    }

    #[test]
    fn clean_free_resets_and_recycles() {
        let s = session();
        let tid = s.register_thread();
        let obj = s.malloc(tid, 64, Callsite::here()).unwrap();
        for i in 0..100u64 {
            s.write::<u64>(tid, obj.start + (i % 8) * 8, i);
        }
        s.free(tid, obj.start).unwrap();
        assert!(!s.heap().is_quarantined(obj.start));
        let again = s.malloc(tid, 64, Callsite::here()).unwrap();
        assert_eq!(again.start, obj.start, "clean blocks recycle");
    }

    #[test]
    fn realloc_copies_and_applies_lifecycle_rules() {
        let s = session();
        let tid = s.register_thread();
        let obj = s.malloc(tid, 64, Callsite::here()).unwrap();
        for w in 0..8u64 {
            s.write::<u64>(tid, obj.start + w * 8, w + 100);
        }
        let grown = s.realloc(tid, obj.start, 256, Callsite::here()).unwrap();
        assert_eq!(grown.size, 256);
        assert_ne!(grown.start, obj.start);
        for w in 0..8u64 {
            assert_eq!(s.read_untracked::<u64>(grown.start + w * 8), w + 100);
        }
        // The old clean block was recycled (not quarantined).
        assert!(!s.heap().is_quarantined(obj.start));
        let next = s.malloc(tid, 64, Callsite::here()).unwrap();
        assert_eq!(next.start, obj.start);
        // Shrinking copies only the prefix.
        let shrunk = s.realloc(tid, grown.start, 16, Callsite::here()).unwrap();
        assert_eq!(s.read_untracked::<u64>(shrunk.start), 100);
        assert_eq!(s.read_untracked::<u64>(shrunk.start + 8), 101);
    }

    #[test]
    fn realloc_of_falsely_shared_object_quarantines_the_old_block() {
        let s = session();
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let obj = s.malloc(t0, 64, Callsite::here()).unwrap();
        for _ in 0..300 {
            s.write::<u64>(t0, obj.start, 1);
            s.write::<u64>(t1, obj.start + 8, 2);
        }
        s.realloc(t0, obj.start, 128, Callsite::here()).unwrap();
        assert!(s.heap().is_quarantined(obj.start));
    }

    #[test]
    fn realloc_of_unknown_pointer_fails() {
        let s = session();
        let tid = s.register_thread();
        assert!(s.realloc(tid, 0xdead, 64, Callsite::here()).is_err());
    }

    #[test]
    fn free_of_interior_pointer_fails() {
        let s = session();
        let tid = s.register_thread();
        let obj = s.malloc(tid, 64, Callsite::here()).unwrap();
        assert!(s.free(tid, obj.start + 8).is_err());
    }

    #[test]
    fn globals_are_reported_by_name() {
        let s = session();
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let g = s.global("shared_counters", 64);
        for _ in 0..300 {
            s.write::<u64>(t0, g, 1);
            s.write::<u64>(t1, g + 8, 2);
        }
        let r = s.report();
        let f = r.false_sharing().next().unwrap();
        assert!(
            matches!(&f.object.site, crate::report::SiteKind::Global { name } if name == "shared_counters")
        );
    }

    #[test]
    fn fetch_add_counts_as_write() {
        let s = session();
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let g = s.global("c", 8);
        for _ in 0..300 {
            s.fetch_add(t0, g, 1);
            s.fetch_add(t1, g, 1);
        }
        assert_eq!(s.read_untracked::<u64>(g), 600);
        let r = s.report();
        // Same word from two threads: true sharing, not false.
        assert!(!r.has_false_sharing());
        assert!(r.findings.iter().any(|f| f.kind == FindingKind::Observed));
    }

    #[test]
    fn compare_exchange_is_instrumented() {
        let s = session();
        let tid = s.register_thread();
        let g = s.global("lock", 8);
        assert_eq!(s.compare_exchange(tid, g, 0, 1), Ok(0));
        assert_eq!(s.compare_exchange(tid, g, 0, 1), Err(1));
        assert_eq!(s.runtime().events(), 2);
    }

    #[test]
    fn multithreaded_session_usage() {
        let s = session();
        let g = s.global("array", 256);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let tid = s.register_thread();
                    let slot = g + tid.0 as u64 * 8;
                    for i in 0..5_000u64 {
                        s.write::<u64>(tid, slot, i);
                    }
                });
            }
        });
        assert_eq!(s.thread_count(), 4);
        let r = s.report();
        // 4 threads × adjacent words in a 256-byte object: lines 0..3 each
        // hold words of 2+ threads? No — 8-byte slots, threads 0..3 all in
        // the first line (32 bytes). Observed false sharing.
        assert!(r.has_observed_false_sharing());
    }
}
