//! False-vs-true sharing discrimination (§2.3.2).
//!
//! A line with many invalidations is only *false* sharing if distinct
//! threads dominate *distinct* words (with at least one of them writing) —
//! padding can then separate them. If the invalidations come from multiple
//! threads hammering the *same* word (a word in the `Shared` origin state
//! with writes), that is *true* sharing: a real communication pattern that
//! padding cannot fix. Both can coexist on one line ([`SharingClass::Mixed`]).

use serde::{Deserialize, Serialize};

use predator_sim::{Owner, WordTracker};

/// The kind of sharing a tracked line's word data reveals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharingClass {
    /// Distinct threads on distinct words; fixable by padding/alignment.
    FalseSharing,
    /// Multiple threads on the same word(s); inherent communication.
    TrueSharing,
    /// Both patterns present on the same line.
    Mixed,
}

impl std::fmt::Display for SharingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharingClass::FalseSharing => f.write_str("FALSE SHARING"),
            SharingClass::TrueSharing => f.write_str("TRUE SHARING"),
            SharingClass::Mixed => f.write_str("MIXED FALSE/TRUE SHARING"),
        }
    }
}

/// Classifies one line's word-granularity data.
///
/// Returns `None` when the data shows no multi-thread interaction at all
/// (single-thread lines can still accumulate invalidation-free tracking).
pub fn classify(words: &WordTracker) -> Option<SharingClass> {
    // False-sharing pattern: a word written *exclusively* by one thread,
    // with a *different* word touched by someone who is provably not that
    // thread — either a different exclusive owner, or a shared word (shared
    // means ≥2 distinct threads, so at least one differs from any single
    // writer). The exclusive-writer requirement keeps multi-writer records
    // (e.g. a hash bucket whose count and payload are both updated by
    // whichever thread inserts) classified as true sharing, matching the
    // paper's word-origin scheme.
    let mut false_pattern = false;
    for (i, w1) in words.words().iter().enumerate() {
        let Owner::Exclusive(t1) = w1.owner else {
            continue;
        };
        if w1.writes == 0 {
            continue;
        }
        false_pattern = words.words().iter().enumerate().any(|(j, w2)| {
            i != j
                && w2.total() > 0
                && match w2.owner {
                    Owner::Exclusive(t2) => t2 != t1,
                    Owner::Shared => true,
                    Owner::Untouched => false,
                }
        });
        if false_pattern {
            break;
        }
    }

    // True-sharing pattern: a word touched by several threads, written at
    // least once.
    let true_pattern = words
        .words()
        .iter()
        .any(|w| w.owner == Owner::Shared && w.writes > 0);

    match (false_pattern, true_pattern) {
        (true, true) => Some(SharingClass::Mixed),
        (true, false) => Some(SharingClass::FalseSharing),
        (false, true) => Some(SharingClass::TrueSharing),
        (false, false) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_sim::AccessKind::{Read, Write};
    use predator_sim::{CacheGeometry, ThreadId};

    fn tracker() -> WordTracker {
        WordTracker::new(0, CacheGeometry::new(64))
    }

    #[test]
    fn untouched_line_is_unclassified() {
        assert_eq!(classify(&tracker()), None);
    }

    #[test]
    fn single_thread_line_is_unclassified() {
        let mut t = tracker();
        for w in 0..8u64 {
            t.record(ThreadId(0), w * 8, 8, Write);
        }
        assert_eq!(classify(&t), None);
    }

    #[test]
    fn classic_false_sharing() {
        let mut t = tracker();
        t.record(ThreadId(0), 0, 8, Write);
        t.record(ThreadId(1), 8, 8, Write);
        assert_eq!(classify(&t), Some(SharingClass::FalseSharing));
    }

    #[test]
    fn reader_writer_false_sharing() {
        // One thread writes word 0; another only reads word 1. Still false
        // sharing: the writes invalidate the reader's line.
        let mut t = tracker();
        t.record(ThreadId(0), 0, 8, Write);
        t.record(ThreadId(1), 8, 8, Read);
        assert_eq!(classify(&t), Some(SharingClass::FalseSharing));
    }

    #[test]
    fn read_read_is_not_sharing() {
        let mut t = tracker();
        t.record(ThreadId(0), 0, 8, Read);
        t.record(ThreadId(1), 8, 8, Read);
        assert_eq!(classify(&t), None);
    }

    #[test]
    fn shared_counter_is_true_sharing() {
        let mut t = tracker();
        t.record(ThreadId(0), 0, 8, Write);
        t.record(ThreadId(1), 0, 8, Write);
        assert_eq!(classify(&t), Some(SharingClass::TrueSharing));
    }

    #[test]
    fn shared_read_only_word_is_not_true_sharing() {
        // A word read by everyone but never written is harmless (S state).
        let mut t = tracker();
        t.record(ThreadId(0), 0, 8, Read);
        t.record(ThreadId(1), 0, 8, Read);
        assert_eq!(classify(&t), None);
    }

    #[test]
    fn mixed_pattern_detected() {
        let mut t = tracker();
        // False sharing on words 0/1…
        t.record(ThreadId(0), 0, 8, Write);
        t.record(ThreadId(1), 8, 8, Write);
        // …and a true-shared counter on word 7.
        t.record(ThreadId(0), 56, 8, Write);
        t.record(ThreadId(2), 56, 8, Write);
        assert_eq!(classify(&t), Some(SharingClass::Mixed));
    }

    #[test]
    fn shared_word_plus_lone_reader_is_true_sharing_only() {
        // Word 0 truly shared (written); word 1 read by one of the same
        // threads — no second exclusive thread writing elsewhere.
        let mut t = tracker();
        t.record(ThreadId(0), 0, 8, Write);
        t.record(ThreadId(1), 0, 8, Write);
        t.record(ThreadId(0), 8, 8, Read);
        assert_eq!(classify(&t), Some(SharingClass::TrueSharing));
    }

    #[test]
    fn exclusive_writer_plus_shared_word_is_mixed() {
        // Word 0 written exclusively by t0; word 1 shared (written by
        // t1/t2). The shared word is true sharing AND t0's writes falsely
        // share with t1/t2's word — Mixed.
        let mut t = tracker();
        t.record(ThreadId(0), 0, 8, Write);
        t.record(ThreadId(1), 8, 8, Write);
        t.record(ThreadId(2), 8, 8, Write);
        assert_eq!(classify(&t), Some(SharingClass::Mixed));
    }

    #[test]
    fn exclusive_writer_plus_shared_readonly_word_is_false_sharing() {
        // The reader-writer pattern: t0 writes word 0; t1 and t2 only read
        // word 1. Every t0 write invalidates the readers' copies — false
        // sharing, with no true sharing anywhere.
        let mut t = tracker();
        t.record(ThreadId(0), 0, 8, Write);
        t.record(ThreadId(1), 8, 8, Read);
        t.record(ThreadId(2), 8, 8, Read);
        assert_eq!(classify(&t), Some(SharingClass::FalseSharing));
    }

    #[test]
    fn multi_writer_record_stays_true_sharing() {
        // A bucket record whose count (word 0) and payload (word 1) are both
        // written by whichever thread inserts: both words Shared-written, no
        // exclusive writer → true sharing, not false.
        let mut t = tracker();
        for tid in [0u16, 1, 2] {
            t.record(ThreadId(tid), 0, 8, Write);
            t.record(ThreadId(tid), 8, 8, Write);
        }
        assert_eq!(classify(&t), Some(SharingClass::TrueSharing));
    }

    #[test]
    fn display_strings() {
        assert_eq!(SharingClass::FalseSharing.to_string(), "FALSE SHARING");
        assert_eq!(SharingClass::TrueSharing.to_string(), "TRUE SHARING");
        assert_eq!(SharingClass::Mixed.to_string(), "MIXED FALSE/TRUE SHARING");
    }
}
