//! # predator-core
//!
//! A Rust reproduction of **PREDATOR: Predictive False Sharing Detection**
//! (Tongping Liu, Chen Tian, Ziang Hu, Emery D. Berger — PPoPP 2014).
//!
//! False sharing — distinct objects updated by distinct threads landing on
//! one cache line — can degrade performance by an order of magnitude while
//! being invisible in source code. PREDATOR detects it by counting *cache
//! invalidations* per line with a two-entry history table, discriminates
//! false from true sharing with word-granularity access data, and — its key
//! contribution — **predicts** false sharing that is latent in the current
//! run but would appear with a doubled cache-line size or a shifted object
//! placement, by verifying invalidations on *virtual cache lines*.
//!
//! ## Quick start
//!
//! ```
//! use predator_core::{Callsite, DetectorConfig, Session};
//!
//! let session = Session::new(DetectorConfig::sensitive(), 1 << 20);
//! let t0 = session.register_thread();
//! let t1 = session.register_thread();
//!
//! // Two threads hammer adjacent words of one heap object.
//! let obj = session.malloc(t0, 64, Callsite::here()).unwrap();
//! for _ in 0..300 {
//!     session.write::<u64>(t0, obj.start, 1);
//!     session.write::<u64>(t1, obj.start + 8, 2);
//! }
//!
//! let report = session.report();
//! assert!(report.has_observed_false_sharing());
//! println!("{report}");
//! ```
//!
//! ## Crate layout
//!
//! * [`config`] — thresholds, sampling, prediction switches;
//! * [`runtime`] — the concurrent `HandleAccess` pipeline (paper Figure 1);
//! * [`track`] — per-line detailed tracking (history table + word counters
//!   + sampling window);
//! * [`predict`] — hot-access-pair search and virtual-line verification
//!   (§3.3–3.4);
//! * [`detect`] — false-vs-true sharing classification (§2.3.2);
//! * [`report`] — ranked, source-attributed findings (Figure 5 format);
//! * [`api`] — [`Session`], bundling simulated memory, the per-thread-heap
//!   allocator, and the detector;
//! * [`adaptive`] — the self-overhead watchdog: calibrated cost model plus
//!   tiered backoff controller driving dynamic sampling (`predator serve`);
//! * [`shutdown`] — the process-wide graceful-shutdown flag set by signal
//!   handlers and polled by long-running loops;
//! * [`registry`], [`stats`] — thread ids and run statistics.

pub mod adaptive;
pub mod api;
pub mod config;
pub mod detect;
pub mod fixes;
pub mod lockfree;
pub mod predict;
pub mod registry;
pub mod report;
pub mod runtime;
pub mod shutdown;
pub mod stats;
pub mod track;

pub use adaptive::{
    BackoffAction, BackoffConfig, BackoffController, Decision, SelfCostModel, TickOutcome, Watchdog,
};
pub use api::Session;
pub use config::{DetectorConfig, TrackingMode};
pub use detect::SharingClass;
pub use fixes::{lower_fix, suggest_fixes, FixSuggestion, LayoutEdit};
pub use predict::{HotPair, PredictionUnit, UnitKind, UnitSnapshot};
pub use report::{
    build_report, build_report_merged, Attribution, Finding, FindingKind, FixVerdict,
    GeometryDelta, InvalidationTrace, ObjectDirectory, ObjectReport, RecordedObject, Report,
    SiteKind, TimelineOp, TimelineRecord, VerifiedFix, WordReport,
};
pub use runtime::{GlobalInfo, Predator};
pub use stats::{ObsSnapshot, RunStats};
pub use track::{CacheTrack, TrackSnapshot};

// Re-export the vocabulary types callers need.
pub use predator_alloc::{Callsite, Frame, ObjectInfo, TrackedHeap};
pub use predator_sim::{Access, AccessKind, CacheGeometry, ThreadId};
