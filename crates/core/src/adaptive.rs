//! The self-overhead watchdog: measured-cost-driven adaptive sampling.
//!
//! PREDATOR's production story (ROADMAP item 1) needs the detector to *see
//! its own cost* and throttle itself before it perturbs the workload it is
//! watching. This module is that control loop, split into three testable
//! pieces:
//!
//! * [`SelfCostModel`] — turns hot-path counter deltas into an overhead
//!   estimate. The per-access costs are *calibrated*, not guessed: at
//!   startup a scratch runtime is micro-timed on its filtered and tracked
//!   paths, and each tick multiplies those unit costs by the counters the
//!   runtime already maintains (`runtime_accesses_total`,
//!   `track_sampled_accesses_total`) plus the directly-measured hot-pair
//!   analysis time (`span_predict_ns`).
//! * [`BackoffController`] — a tiered state machine deciding how to react.
//!   Sustained budget violations escalate one tier (sampling rate divided
//!   by `step`, analysis stride doubled); sustained headroom relaxes one
//!   tier. Following Owlyshield's `is_prediction_required` discipline, the
//!   controller reconsiders *less often the more it has already
//!   intervened* — escalating modulo thresholds on the evaluation count —
//!   so a steady state stops burning decisions. A **new allocation site**
//!   re-arms the controller to full configured sampling immediately: new
//!   code paths deserve full-rate observation before being shed.
//! * [`Watchdog`] — glues them to a live [`Predator`]: reads counter
//!   deltas, asks the model for the overhead, lets the controller decide,
//!   and applies the decision through the runtime's dynamic hooks
//!   ([`Predator::set_sampling_rate`] / [`Predator::set_analysis_stride`]).
//!
//! Every decision is observable: `predator_sampling_rate_ppm`,
//! `predator_analysis_stride`, `predator_backoff_tier` and
//! `predator_watchdog_overhead_ppm` gauges, and a
//! `predator_backoff_transitions_total` counter.

use std::time::Instant;

use predator_sim::{AccessKind, ThreadId};

use crate::config::DetectorConfig;
use crate::runtime::Predator;

/// Tuning for the [`BackoffController`].
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// Overhead budget as a fraction of workload time (default 0.05).
    pub budget: f64,
    /// Sampling rate at tier 0: the *configured* detector rate — what
    /// "fully armed" means.
    pub base_rate: f64,
    /// Sampling-rate floor: backoff never sheds below this.
    pub min_rate: f64,
    /// Per-tier rate divisor (tier t samples at `base_rate / step^t`).
    pub step: f64,
    /// Highest tier (where the rate clamps to `min_rate`).
    pub max_tier: u32,
    /// Consecutive over-budget evaluations before escalating.
    pub sustain: u32,
    /// Consecutive well-under-budget evaluations before relaxing.
    pub recover: u32,
}

impl BackoffConfig {
    /// A controller budgeted at `budget` for a detector whose configured
    /// sampling rate is `base_rate`: rate floor 1/1000th of base, 4x rate
    /// steps, escalate after 2 sustained violations, relax after 4 calm
    /// evaluations.
    pub fn new(budget: f64, base_rate: f64) -> Self {
        assert!(budget > 0.0, "budget must be positive");
        assert!(
            base_rate > 0.0 && base_rate <= 1.0,
            "base rate must be in (0, 1]"
        );
        let min_rate = (base_rate / 1000.0).max(1e-7);
        let step = 4.0f64;
        let max_tier = ((base_rate / min_rate).ln() / step.ln()).ceil() as u32;
        BackoffConfig {
            budget,
            base_rate,
            min_rate,
            step,
            max_tier,
            sustain: 2,
            recover: 4,
        }
    }

    /// Controller config matching a detector configuration.
    pub fn for_detector(det: &DetectorConfig, budget: f64) -> Self {
        Self::new(budget, det.sampling_rate())
    }
}

/// What one evaluation decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffAction {
    /// Considered the reading; no tier change.
    Hold,
    /// Not considered: suppressed by the escalating-modulo discipline.
    Skipped,
    /// Sustained violation: moved one tier down (less sampling).
    Escalated,
    /// Sustained headroom: moved one tier up (more sampling).
    Relaxed,
    /// New allocation site: restored full configured sampling.
    Rearmed,
}

/// One evaluation's outcome plus the settings now in force.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// What happened.
    pub action: BackoffAction,
    /// Tier now in force (0 = fully armed).
    pub tier: u32,
    /// Sampling rate now in force.
    pub sampling_rate: f64,
    /// Analysis stride now in force.
    pub analysis_stride: u64,
}

impl Decision {
    /// True when the decision changed the runtime settings.
    pub fn changed(&self) -> bool {
        matches!(
            self.action,
            BackoffAction::Escalated | BackoffAction::Relaxed | BackoffAction::Rearmed
        )
    }
}

/// The tiered backoff state machine. Pure — drive it with measured (or
/// synthetic) overhead readings; it never touches a runtime itself.
#[derive(Debug)]
pub struct BackoffController {
    cfg: BackoffConfig,
    tier: u32,
    evals: u64,
    transitions: u64,
    violations: u32,
    headroom: u32,
}

impl BackoffController {
    /// A fully-armed controller (tier 0).
    pub fn new(cfg: BackoffConfig) -> Self {
        BackoffController {
            cfg,
            tier: 0,
            evals: 0,
            transitions: 0,
            violations: 0,
            headroom: 0,
        }
    }

    /// Tier currently in force.
    pub fn tier(&self) -> u32 {
        self.tier
    }

    /// Tier changes made so far (escalations + relaxations + re-arms).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The configuration in force.
    pub fn config(&self) -> &BackoffConfig {
        &self.cfg
    }

    /// Sampling rate at `tier`.
    pub fn rate_for(&self, tier: u32) -> f64 {
        (self.cfg.base_rate / self.cfg.step.powi(tier as i32)).max(self.cfg.min_rate)
    }

    /// Analysis stride at `tier`: doubles per tier, capped at 64.
    pub fn stride_for(&self, tier: u32) -> u64 {
        1 << tier.min(6)
    }

    fn decision(&self, action: BackoffAction) -> Decision {
        Decision {
            action,
            tier: self.tier,
            sampling_rate: self.rate_for(self.tier),
            analysis_stride: self.stride_for(self.tier),
        }
    }

    /// Feeds one overhead reading (fraction of workload time spent in the
    /// detector) and whether new allocation sites appeared since the last
    /// evaluation; returns the decision.
    pub fn evaluate(&mut self, overhead: f64, new_sites: bool) -> Decision {
        self.evals += 1;
        if new_sites {
            // New code paths get full-rate observation immediately — the
            // re-arm bypasses the modulo discipline below on purpose.
            self.violations = 0;
            self.headroom = 0;
            if self.tier != 0 {
                self.tier = 0;
                self.transitions += 1;
                return self.decision(BackoffAction::Rearmed);
            }
            return self.decision(BackoffAction::Hold);
        }
        // Owlyshield's escalating-modulo discipline: the more the controller
        // has already intervened, the less often it reconsiders.
        let modulo = match self.transitions {
            0..=1 => 1,
            2..=10 => 5,
            11..=50 => 15,
            _ => 30,
        };
        if !self.evals.is_multiple_of(modulo) {
            return self.decision(BackoffAction::Skipped);
        }
        if overhead > self.cfg.budget {
            self.headroom = 0;
            self.violations += 1;
            if self.violations >= self.cfg.sustain && self.tier < self.cfg.max_tier {
                self.violations = 0;
                self.tier += 1;
                self.transitions += 1;
                return self.decision(BackoffAction::Escalated);
            }
        } else if overhead < self.cfg.budget / 2.0 {
            self.violations = 0;
            self.headroom += 1;
            if self.headroom >= self.cfg.recover && self.tier > 0 {
                self.headroom = 0;
                self.tier -= 1;
                self.transitions += 1;
                return self.decision(BackoffAction::Relaxed);
            }
        } else {
            // Inside the comfort band: neither streak survives.
            self.violations = 0;
            self.headroom = 0;
        }
        self.decision(BackoffAction::Hold)
    }
}

/// Calibrated per-access detector costs, for estimating self-overhead from
/// hot-path counter deltas.
#[derive(Debug, Clone, Copy)]
pub struct SelfCostModel {
    /// Cost of one `handle_access` on the filtered/below-threshold path.
    pub ns_per_access: f64,
    /// Additional cost of one access that reaches a tracked line's
    /// recording path.
    pub ns_per_sampled: f64,
}

impl SelfCostModel {
    /// A model with explicit unit costs (tests, or pre-measured values).
    pub fn with_costs(ns_per_access: f64, ns_per_sampled: f64) -> Self {
        SelfCostModel {
            ns_per_access,
            ns_per_sampled,
        }
    }

    /// Micro-times the two hot paths on a scratch runtime mirroring `det`
    /// (geometry, thresholds, tracking mode) and returns the measured unit
    /// costs. Prediction is disabled for the measurement — analysis time is
    /// not a per-access cost; it is measured directly via `span_predict_ns`.
    pub fn calibrate(det: &DetectorConfig) -> Self {
        const BASE: u64 = 0x5000_0000;
        const N: u64 = 20_000;
        let mut cfg = *det;
        cfg.enabled = true;
        cfg.prediction = false;
        cfg.sampling = false;
        cfg.instrument_reads = true;
        let rt = Predator::new(cfg, BASE, 1 << 16);

        // Filtered path: reads below the tracking threshold record nothing.
        let t = Instant::now();
        for i in 0..N {
            rt.handle_access(ThreadId(0), BASE + (i % 512) * 8, 8, AccessKind::Read);
        }
        let ns_per_access = t.elapsed().as_nanos() as f64 / N as f64;

        // Tracked path: promote one line, then hammer its words.
        for _ in 0..=cfg.tracking_threshold {
            rt.handle_access(ThreadId(0), BASE, 8, AccessKind::Write);
        }
        let t = Instant::now();
        for i in 0..N {
            rt.handle_access(
                ThreadId((i % 2) as u16),
                BASE + (i % 8) * 8,
                8,
                AccessKind::Write,
            );
        }
        let tracked = t.elapsed().as_nanos() as f64 / N as f64;
        SelfCostModel {
            ns_per_access,
            ns_per_sampled: (tracked - ns_per_access).max(0.0),
        }
    }

    /// Detector overhead over one interval, as a fraction of total wall
    /// time: counter deltas × unit costs, plus directly-measured analysis
    /// nanoseconds, divided by the interval's wall nanoseconds.
    pub fn overhead(&self, accesses: u64, sampled: u64, analysis_ns: u64, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            return 0.0;
        }
        let detector_ns = accesses as f64 * self.ns_per_access
            + sampled as f64 * self.ns_per_sampled
            + analysis_ns as f64;
        (detector_ns / wall_ns as f64).min(1.0)
    }
}

/// Counter values at the previous tick, for delta computation.
#[derive(Debug, Default, Clone, Copy)]
struct TickBase {
    accesses: u64,
    sampled: u64,
    analysis_ns: u64,
    callsites: u64,
    wall_ns: u64,
}

/// One tick's measurement and decision.
#[derive(Debug, Clone, Copy)]
pub struct TickOutcome {
    /// Estimated detector overhead over the interval.
    pub overhead: f64,
    /// The controller's decision.
    pub decision: Decision,
}

/// The periodic watchdog task: measures, decides, applies, and exposes
/// every step through the metrics registry.
pub struct Watchdog {
    model: SelfCostModel,
    ctl: BackoffController,
    prev: TickBase,
}

fn monotone_delta(prev: u64, cur: u64) -> u64 {
    cur.saturating_sub(prev)
}

impl Watchdog {
    /// A watchdog from explicit parts.
    pub fn new(model: SelfCostModel, ctl: BackoffController) -> Self {
        Watchdog {
            model,
            ctl,
            prev: TickBase::default(),
        }
    }

    /// Calibrates a model against `det` and budgets the controller at
    /// `budget` — the `predator serve --overhead-budget` entry point.
    pub fn for_detector(det: &DetectorConfig, budget: f64) -> Self {
        Self::new(
            SelfCostModel::calibrate(det),
            BackoffController::new(BackoffConfig::for_detector(det, budget)),
        )
    }

    /// The controller (tier, transition count).
    pub fn controller(&self) -> &BackoffController {
        &self.ctl
    }

    /// The cost model in use.
    pub fn model(&self) -> &SelfCostModel {
        &self.model
    }

    /// One watchdog tick: derive self-cost from counter deltas since the
    /// previous tick, evaluate the controller, and apply any change to
    /// `rt`. `callsites` is the current distinct-allocation-site count
    /// (its growth is the re-arm signal); `wall_ns_total` is cumulative
    /// workload wall time (the overhead denominator).
    pub fn tick(&mut self, rt: &Predator, callsites: u64, wall_ns_total: u64) -> TickOutcome {
        let reg = predator_obs::global();
        let cur = TickBase {
            accesses: reg.counter("runtime_accesses_total").get(),
            sampled: reg.counter("track_sampled_accesses_total").get(),
            analysis_ns: reg.histogram("span_predict_ns").sum(),
            callsites,
            wall_ns: wall_ns_total,
        };
        let overhead = self.model.overhead(
            monotone_delta(self.prev.accesses, cur.accesses),
            monotone_delta(self.prev.sampled, cur.sampled),
            monotone_delta(self.prev.analysis_ns, cur.analysis_ns),
            monotone_delta(self.prev.wall_ns, cur.wall_ns),
        );
        let new_sites = cur.callsites > self.prev.callsites;
        self.prev = cur;

        let decision = self.ctl.evaluate(overhead, new_sites);
        if decision.changed() {
            rt.set_sampling_rate(decision.sampling_rate);
            rt.set_analysis_stride(decision.analysis_stride);
            predator_obs::static_counter!("predator_backoff_transitions_total").inc();
        }
        predator_obs::static_gauge!("predator_backoff_tier").set(decision.tier as i64);
        predator_obs::static_gauge!("predator_watchdog_overhead_ppm")
            .set((overhead * 1e6).round() as i64);
        predator_obs::events().emit(
            "watchdog_tick",
            &[
                (
                    "overhead_ppm",
                    predator_obs::FieldVal::U64((overhead * 1e6) as u64),
                ),
                ("tier", predator_obs::FieldVal::U64(decision.tier as u64)),
                (
                    "action",
                    predator_obs::FieldVal::Str(&format!("{:?}", decision.action)),
                ),
            ],
        );
        TickOutcome { overhead, decision }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(budget: f64) -> BackoffController {
        BackoffController::new(BackoffConfig::new(budget, 0.01))
    }

    #[test]
    fn sustained_violation_escalates() {
        let mut c = ctl(0.05);
        assert_eq!(c.evaluate(0.10, false).action, BackoffAction::Hold);
        let d = c.evaluate(0.10, false);
        assert_eq!(d.action, BackoffAction::Escalated);
        assert_eq!(d.tier, 1);
        assert!((d.sampling_rate - 0.01 / 4.0).abs() < 1e-12);
        assert_eq!(d.analysis_stride, 2);
    }

    #[test]
    fn single_spike_does_not_escalate() {
        let mut c = ctl(0.05);
        assert_eq!(c.evaluate(0.10, false).action, BackoffAction::Hold);
        assert_eq!(c.evaluate(0.01, false).action, BackoffAction::Hold);
        assert_eq!(c.evaluate(0.10, false).action, BackoffAction::Hold);
        assert_eq!(c.tier(), 0, "violation streak was broken");
    }

    #[test]
    fn sustained_headroom_relaxes_one_tier() {
        let mut c = ctl(0.05);
        c.evaluate(0.10, false);
        c.evaluate(0.10, false); // tier 1, 1 transition
                                 // Modulo is still 1 (transitions <= 1)... after the second
                                 // transition it becomes 5, so feed enough calm evaluations.
        let mut relaxed = false;
        for _ in 0..40 {
            if c.evaluate(0.001, false).action == BackoffAction::Relaxed {
                relaxed = true;
                break;
            }
        }
        assert!(relaxed);
        assert_eq!(c.tier(), 0);
    }

    #[test]
    fn rearm_restores_tier_zero_immediately() {
        let mut c = ctl(0.05);
        for _ in 0..20 {
            c.evaluate(0.50, false);
        }
        assert!(c.tier() >= 2, "sustained violations escalate: {:?}", c);
        let d = c.evaluate(0.50, true);
        assert_eq!(d.action, BackoffAction::Rearmed);
        assert_eq!(d.tier, 0);
        assert!((d.sampling_rate - 0.01).abs() < 1e-12);
        assert_eq!(d.analysis_stride, 1);
    }

    #[test]
    fn escalating_modulo_throttles_reconsideration() {
        let mut c = ctl(0.05);
        // Drive past two transitions so the modulo rises to 5.
        for _ in 0..4 {
            c.evaluate(0.50, false);
        }
        assert!(c.transitions() >= 2);
        let skipped = (0..10)
            .filter(|_| c.evaluate(0.50, false).action == BackoffAction::Skipped)
            .count();
        assert!(skipped >= 7, "most evaluations skipped, got {skipped}");
    }

    #[test]
    fn rate_floor_and_tier_cap_hold() {
        let mut c = ctl(0.05);
        for _ in 0..10_000 {
            c.evaluate(0.99, false);
        }
        let d = c.evaluate(0.99, false);
        assert!(d.tier <= c.cfg.max_tier);
        assert!(d.sampling_rate >= c.cfg.min_rate - 1e-15);
        assert!(d.analysis_stride <= 64);
    }

    #[test]
    fn cost_model_overhead_math() {
        let m = SelfCostModel::with_costs(10.0, 100.0);
        // 1000 accesses * 10ns + 100 sampled * 100ns + 5000ns analysis
        // = 25_000ns over 1_000_000ns wall = 2.5%.
        let o = m.overhead(1000, 100, 5000, 1_000_000);
        assert!((o - 0.025).abs() < 1e-9, "{o}");
        assert_eq!(m.overhead(1000, 100, 5000, 0), 0.0, "no wall time yet");
        assert_eq!(m.overhead(u64::MAX, 0, 0, 1), 1.0, "clamped to 100%");
    }

    #[test]
    fn calibration_yields_positive_costs() {
        let m = SelfCostModel::calibrate(&DetectorConfig::sensitive());
        assert!(m.ns_per_access > 0.0);
        // The tracked path can only be costlier than the filtered one; the
        // subtraction clamps at zero, so just require it to be finite.
        assert!(m.ns_per_sampled.is_finite());
    }
}
