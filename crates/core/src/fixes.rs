//! Fix suggestions — the paper's §6 "Suggest Fixes" future work.
//!
//! "We believe that leveraging memory trace information will make it
//! possible for PREDATOR to prescribe fixes to the programmer." This module
//! does exactly that: it walks a [`Report`]'s findings and derives concrete,
//! word-accurate prescriptions from the recorded access information —
//! padding sizes computed from the actual per-thread word footprints,
//! alignment advice for placement-sensitive objects, and honest "this is
//! true sharing, padding will not help" calls.

use serde::{Deserialize, Serialize};

use predator_sim::{CacheGeometry, Owner, ThreadId};

use crate::detect::SharingClass;
use crate::report::{Finding, FindingKind, Report, WordReport};

/// One prescription for one finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FixSuggestion {
    /// Separate each thread's words onto private lines by padding the
    /// per-thread regions of the object.
    PadPerThread {
        /// The victim object's start address.
        object: u64,
        /// Distinct threads whose words share lines.
        threads: Vec<ThreadId>,
        /// Bytes of separation required between any two threads' data so no
        /// predicted scenario — shift, line scaling up to the analyzed
        /// factor, or any line size in the verification portfolio
        /// ([`CacheGeometry::PORTFOLIO_LINE_SIZES`]) — can re-merge them.
        min_separation: u64,
    },
    /// The object is placement-sensitive: it is clean at the current
    /// alignment but predicted to share under a shifted start. Pin its
    /// alignment (e.g. `aligned_alloc`, `#[repr(align(N))]`).
    AlignObject {
        /// The victim object's start address.
        object: u64,
        /// Required alignment in bytes.
        alignment: u64,
    },
    /// Multiple threads hammer the *same* word: true sharing. Padding will
    /// not help; restructure (per-thread accumulation + reduction, striping,
    /// or a different algorithm).
    RestructureTrueSharing {
        /// The contended word's address.
        word: u64,
    },
}

impl std::fmt::Display for FixSuggestion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FixSuggestion::PadPerThread {
                object,
                threads,
                min_separation,
            } => write!(
                f,
                "pad object {object:#x}: keep each of {} threads' fields at least \
                 {min_separation} bytes apart (one thread per {min_separation}-byte block)",
                threads.len()
            ),
            FixSuggestion::AlignObject { object, alignment } => write!(
                f,
                "pin the alignment of object {object:#x} to {alignment} bytes \
                 (current placement is safe only by accident)"
            ),
            FixSuggestion::RestructureTrueSharing { word } => write!(
                f,
                "word {word:#x} is truly shared by multiple threads; padding cannot \
                 help — use per-thread accumulation with a reduction instead"
            ),
        }
    }
}

/// A concrete, mechanical layout change: insert `pad` bytes of dead space
/// immediately before address `at`. Every [`FixSuggestion`] lowers to a list
/// of these via [`lower_fix`]; the trace layer turns the list into an
/// injective, order-preserving address remap and replays the recorded trace
/// through it (`predator whatif`), so suggestions ship with measured
/// before/after invalidation counts instead of untested advice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutEdit {
    /// First address shifted by the pad: bytes `< at` stay put, bytes
    /// `>= at` move up by `pad`.
    pub at: u64,
    /// Bytes of dead space inserted.
    pub pad: u64,
}

/// Lowers one suggestion for one finding into mechanical layout edits.
///
/// * [`FixSuggestion::PadPerThread`] walks the finding's words in address
///   order and inserts `min_separation` bytes at every boundary where the
///   exclusive owner changes — each thread's block lands at least
///   `min_separation` bytes from its neighbours.
/// * [`FixSuggestion::AlignObject`] pads the object's start up to the next
///   multiple of the requested alignment (a no-op if already aligned).
/// * [`FixSuggestion::RestructureTrueSharing`] lowers to *no* edits: padding
///   cannot fix true sharing, and the empty remap makes the what-if replay
///   prove exactly that (zero delta).
pub fn lower_fix(finding: &Finding, fix: &FixSuggestion) -> Vec<LayoutEdit> {
    match fix {
        FixSuggestion::PadPerThread { min_separation, .. } => {
            let mut words: Vec<&WordReport> = finding
                .words
                .iter()
                .filter(|w| w.reads + w.writes > 0)
                .collect();
            words.sort_by_key(|w| w.addr);
            let mut edits = Vec::new();
            let mut last_owner: Option<ThreadId> = None;
            for w in words {
                if let Owner::Exclusive(t) = w.owner {
                    if let Some(prev) = last_owner {
                        if prev != t {
                            edits.push(LayoutEdit {
                                at: w.addr,
                                pad: *min_separation,
                            });
                        }
                    }
                    last_owner = Some(t);
                }
            }
            edits
        }
        FixSuggestion::AlignObject { object, alignment } => {
            let pad = (alignment - object % alignment) % alignment;
            if pad == 0 {
                Vec::new()
            } else {
                vec![LayoutEdit { at: *object, pad }]
            }
        }
        FixSuggestion::RestructureTrueSharing { .. } => Vec::new(),
    }
}

/// Derives fix suggestions for every finding in `report`.
///
/// `geom` is the physical geometry the detector ran with; the suggested
/// separation covers the largest scenario the finding was verified under
/// (doubled/scaled lines need proportionally more padding).
pub fn suggest_fixes(report: &Report, geom: CacheGeometry) -> Vec<(usize, FixSuggestion)> {
    let mut out = Vec::new();
    for (i, finding) in report.findings.iter().enumerate() {
        out.extend(suggest_for(finding, geom).into_iter().map(|s| (i, s)));
    }
    out
}

fn involved_threads(words: &[WordReport]) -> Vec<ThreadId> {
    let mut ts: Vec<ThreadId> = words
        .iter()
        .filter_map(|w| match w.owner {
            Owner::Exclusive(t) if w.reads + w.writes > 0 => Some(t),
            _ => None,
        })
        .collect();
    ts.sort_unstable();
    ts.dedup();
    ts
}

fn suggest_for(finding: &Finding, geom: CacheGeometry) -> Vec<FixSuggestion> {
    let mut out = Vec::new();
    let object = finding.object.start;

    match finding.class {
        SharingClass::TrueSharing => {
            // Point at the hottest shared word.
            if let Some(w) = finding
                .words
                .iter()
                .filter(|w| w.owner == Owner::Shared && w.writes > 0)
                .max_by_key(|w| w.reads + w.writes)
            {
                out.push(FixSuggestion::RestructureTrueSharing { word: w.addr });
            }
            return out;
        }
        SharingClass::Mixed => {
            if let Some(w) = finding
                .words
                .iter()
                .filter(|w| w.owner == Owner::Shared && w.writes > 0)
                .max_by_key(|w| w.reads + w.writes)
            {
                out.push(FixSuggestion::RestructureTrueSharing { word: w.addr });
            }
            // Fall through to the padding advice for the false half.
        }
        SharingClass::FalseSharing => {}
    }

    // The scenario determines the separation that makes the layout robust:
    // a shifted placement needs a full line between threads; an N-times
    // line needs N lines. On top of the per-scenario floor, the claim is
    // verified against the whole prediction portfolio (32..256-byte lines,
    // shifted placements): two words less than 2x the largest portfolio
    // line apart can still land in one shifted 256-byte window, so clamp
    // up to `portfolio_separation()`. That value (512) is a whole-line
    // multiple of every portfolio geometry, which also keeps the lowered
    // remap in the invalidation-monotone class (see DESIGN.md).
    let scenario = match finding.kind {
        FindingKind::Observed => geom.line_size(),
        FindingKind::PredictedRemap { .. } => geom.line_size() * 2,
        FindingKind::PredictedDoubled => geom.line_size() * 2,
        FindingKind::PredictedScaled { factor_log2 } => geom.line_size() << factor_log2,
    };
    let min_separation = scenario.max(CacheGeometry::portfolio_separation());
    let threads = involved_threads(&finding.words);
    if threads.len() >= 2 {
        out.push(FixSuggestion::PadPerThread {
            object,
            threads,
            min_separation,
        });
    }

    // Placement-sensitive layouts additionally warrant pinning alignment.
    if matches!(finding.kind, FindingKind::PredictedRemap { .. }) {
        out.push(FixSuggestion::AlignObject {
            object,
            alignment: geom.line_size(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Session;
    use crate::config::DetectorConfig;
    use crate::Callsite;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64)
    }

    #[test]
    fn observed_false_sharing_gets_padding_advice() {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let obj = s.malloc(t0, 64, Callsite::here()).unwrap();
        for i in 0..500u64 {
            s.write::<u64>(t0, obj.start, i);
            s.write::<u64>(t1, obj.start + 8, i);
        }
        let report = s.report();
        let fixes = suggest_fixes(&report, geom());
        assert!(!fixes.is_empty());
        let (_, fix) = &fixes[0];
        match fix {
            FixSuggestion::PadPerThread {
                object,
                threads,
                min_separation,
            } => {
                assert_eq!(*object, obj.start);
                assert_eq!(threads.len(), 2);
                // One observed 64-byte line would need 64 bytes, but the
                // claim is verified across the whole 32..256-byte portfolio,
                // so the floor is portfolio_separation() = 512.
                assert_eq!(*min_separation, CacheGeometry::portfolio_separation());
            }
            other => panic!("expected padding advice, got {other:?}"),
        }
        assert!(fix.to_string().contains("pad object"));
    }

    #[test]
    fn predicted_remap_also_suggests_alignment() {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let obj = s.malloc(t0, 128, Callsite::here()).unwrap();
        for _ in 0..600 {
            s.write::<u64>(t0, obj.start + 56, 1);
            s.write::<u64>(t1, obj.start + 64, 2);
        }
        let report = s.report();
        let fixes = suggest_fixes(&report, geom());
        assert!(
            fixes
                .iter()
                .any(|(_, f)| matches!(f, FixSuggestion::AlignObject { alignment: 64, .. })),
            "{fixes:?}"
        );
        // The remap scenario alone needs 2-line separation; the portfolio
        // clamp raises that to 512.
        assert!(fixes.iter().any(|(_, f)| matches!(
            f,
            FixSuggestion::PadPerThread {
                min_separation: 512,
                ..
            }
        )));
    }

    #[test]
    fn padding_fix_lowers_to_edits_at_owner_boundaries() {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let obj = s.malloc(t0, 64, Callsite::here()).unwrap();
        for i in 0..500u64 {
            s.write::<u64>(t0, obj.start, i);
            s.write::<u64>(t1, obj.start + 8, i);
        }
        let report = s.report();
        let fixes = suggest_fixes(&report, geom());
        let (idx, fix) = &fixes[0];
        let edits = lower_fix(&report.findings[*idx], fix);
        // One owner change (t0's word -> t1's word): one pad at t1's word.
        assert_eq!(edits.len(), 1, "{edits:?}");
        assert_eq!(edits[0].at, obj.start + 8);
        assert_eq!(edits[0].pad, CacheGeometry::portfolio_separation());
    }

    #[test]
    fn true_sharing_fix_lowers_to_no_edits() {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let ctr = s.global("counter", 8);
        for _ in 0..500 {
            s.fetch_add(t0, ctr, 1);
            s.fetch_add(t1, ctr, 1);
        }
        let report = s.report();
        let fixes = suggest_fixes(&report, geom());
        let (idx, fix) = &fixes[0];
        assert!(matches!(fix, FixSuggestion::RestructureTrueSharing { .. }));
        assert!(lower_fix(&report.findings[*idx], fix).is_empty());
    }

    #[test]
    fn align_fix_lowers_to_single_shift_or_nothing() {
        let finding_stub = |start: u64| Finding {
            kind: FindingKind::PredictedRemap { delta: 8 },
            class: SharingClass::FalseSharing,
            object: crate::report::ObjectReport {
                start,
                end: start + 64,
                size: 64,
                site: crate::report::SiteKind::Unknown,
            },
            invalidations: 0,
            accesses: 0,
            writes: 0,
            words: Vec::new(),
            virtual_lines: Vec::new(),
            timeline: Vec::new(),
            invalidation_traces: Vec::new(),
            verified: None,
        };
        let aligned = FixSuggestion::AlignObject {
            object: 0x1000,
            alignment: 64,
        };
        assert!(lower_fix(&finding_stub(0x1000), &aligned).is_empty());
        let misaligned = FixSuggestion::AlignObject {
            object: 0x1008,
            alignment: 64,
        };
        let edits = lower_fix(&finding_stub(0x1008), &misaligned);
        assert_eq!(
            edits,
            vec![LayoutEdit {
                at: 0x1008,
                pad: 56
            }]
        );
    }

    #[test]
    fn true_sharing_gets_restructuring_advice_not_padding() {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let ctr = s.global("counter", 8);
        for _ in 0..500 {
            s.fetch_add(t0, ctr, 1);
            s.fetch_add(t1, ctr, 1);
        }
        let report = s.report();
        let fixes = suggest_fixes(&report, geom());
        assert_eq!(fixes.len(), 1, "{fixes:?}");
        match &fixes[0].1 {
            FixSuggestion::RestructureTrueSharing { word } => assert_eq!(*word, ctr),
            other => panic!("expected restructuring advice, got {other:?}"),
        }
        assert!(fixes[0].1.to_string().contains("truly shared"));
    }

    #[test]
    fn clean_report_yields_no_fixes() {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let obj = s.malloc(t0, 64, Callsite::here()).unwrap();
        for i in 0..500u64 {
            s.write::<u64>(t0, obj.start, i);
        }
        let report = s.report();
        assert!(suggest_fixes(&report, geom()).is_empty());
    }

    #[test]
    fn suggestions_index_back_into_findings() {
        let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
        let t0 = s.register_thread();
        let t1 = s.register_thread();
        let a = s.malloc(t0, 64, Callsite::here()).unwrap();
        let b = s.malloc(t0, 64, Callsite::here()).unwrap();
        for i in 0..500u64 {
            s.write::<u64>(t0, a.start, i);
            s.write::<u64>(t1, a.start + 8, i);
            s.write::<u64>(t0, b.start, i);
            s.write::<u64>(t1, b.start + 8, i);
        }
        let report = s.report();
        for (idx, fix) in suggest_fixes(&report, geom()) {
            if let FixSuggestion::PadPerThread { object, .. } = fix {
                assert_eq!(object, report.findings[idx].object.start);
            }
        }
    }
}
