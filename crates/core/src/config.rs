//! Detector configuration: thresholds, sampling, prediction switches.
//!
//! The paper's tunables (§2.4, §3.2) and their defaults here:
//!
//! * **TrackingThreshold** — writes to a line before detailed tracking
//!   begins (§2.4.1). Lines with few writes can never matter.
//! * **PredictionThreshold** — tracked writes before the hot-access-pair
//!   analysis of §3.3 runs (and re-runs at every further multiple).
//! * **Sampling** — once a line is tracked, only the first
//!   `sample_burst` of every `sample_interval` accesses are recorded
//!   (§2.4.3; the paper's default is 10 000 per 1 000 000 = 1%).
//! * **Prediction on/off** — Figure 7 evaluates PREDATOR-NP (no
//!   prediction) against full PREDATOR.
//! * **Read instrumentation on/off** — §2.4.2's write-only mode trades
//!   read-write false sharing detection for speed, as SHERIFF does.

use serde::{Deserialize, Serialize};

use predator_sim::CacheGeometry;

/// How per-line shadow state is updated by concurrent application threads.
///
/// The paper's runtime updates per-line metadata without locks, accepting
/// benign races for speed (§2.3). This reproduction ships both semantics and
/// lets them be diffed against each other:
///
/// * [`Precise`](TrackingMode::Precise) — every tracked access takes the
///   per-line mutex; counters and analysis timing are exact under any
///   interleaving. This is the differential oracle.
/// * [`Relaxed`](TrackingMode::Relaxed) — the paper-faithful lock-free path:
///   the two-entry history table lives in one packed atomic word updated by a
///   CAS loop (so invalidation counts stay exact), while word/line counters
///   use `Relaxed` atomics with per-thread batching that drains on writer
///   displacement. Counter attribution may lag by a batch under truly racy
///   interleavings, but on any serialized (deterministically interleaved)
///   feed the two modes produce byte-identical reports — enforced by the
///   differential suite in `tests/differential_modes.rs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackingMode {
    /// Mutex-serialized per-line state: today's exact semantics.
    #[default]
    Precise,
    /// Lock-free packed-atomic per-line state: the paper's fast path.
    Relaxed,
}

impl std::fmt::Display for TrackingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TrackingMode::Precise => "precise",
            TrackingMode::Relaxed => "relaxed",
        })
    }
}

impl std::str::FromStr for TrackingMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "precise" => Ok(TrackingMode::Precise),
            "relaxed" => Ok(TrackingMode::Relaxed),
            other => Err(format!(
                "unknown tracking mode '{other}' (want precise|relaxed)"
            )),
        }
    }
}

/// Complete detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Master switch: when false, `handle_access` returns immediately. The
    /// "Original" baseline of the Figure 7 overhead experiment runs the
    /// identical harness with the detector disabled, so the measured ratio
    /// isolates detection cost.
    pub enabled: bool,
    /// Physical cache-line geometry to detect against.
    pub geometry: CacheGeometry,
    /// Writes to a line before detailed tracking starts (`TrackingThreshold`).
    pub tracking_threshold: u32,
    /// Tracked writes before potential-false-sharing analysis runs
    /// (`PredictionThreshold`).
    pub prediction_threshold: u64,
    /// Minimum invalidations (observed on a physical line, or verified on a
    /// virtual line) for a finding to be reported. "PREDATOR only reports
    /// those global variables or heap objects on cache lines with a large
    /// number of cache invalidations."
    pub report_threshold: u64,
    /// Master switch for the §3 prediction machinery (off = PREDATOR-NP).
    pub prediction: bool,
    /// Largest predicted line-size scale, as log2 of the multiple of the
    /// physical line. The paper predicts one doubling (`1`); higher values
    /// extend the same machinery to 4x, 8x, … lines (future-work extension).
    pub max_scale_log2: u32,
    /// Instrument read accesses (write-only mode detects only write-write
    /// false sharing).
    pub instrument_reads: bool,
    /// Enable access sampling on tracked lines.
    pub sampling: bool,
    /// Sampling window length in accesses.
    pub sample_interval: u64,
    /// Accesses recorded at the start of each window.
    pub sample_burst: u64,
    /// Locking discipline for per-line shadow state (see [`TrackingMode`]).
    pub tracking_mode: TrackingMode,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            enabled: true,
            geometry: CacheGeometry::default(),
            tracking_threshold: 128,
            max_scale_log2: 1,
            prediction_threshold: 1024,
            report_threshold: 1000,
            prediction: true,
            instrument_reads: true,
            sampling: true,
            sample_interval: 1_000_000,
            sample_burst: 10_000,
            tracking_mode: TrackingMode::Precise,
        }
    }
}

impl DetectorConfig {
    /// The paper's evaluation configuration (1% sampling).
    pub fn paper() -> Self {
        Self::default()
    }

    /// PREDATOR-NP: identical but with prediction disabled (Figure 7).
    pub fn no_prediction() -> Self {
        DetectorConfig {
            prediction: false,
            ..Self::default()
        }
    }

    /// Detector off: the "Original" overhead baseline (Figure 7).
    pub fn disabled() -> Self {
        DetectorConfig {
            enabled: false,
            ..Self::default()
        }
    }

    /// A configuration with tiny thresholds for unit tests: tracking starts
    /// after 4 writes, analysis runs every 16 tracked writes, everything
    /// is recorded (no sampling), and a single invalidation is reportable.
    pub fn sensitive() -> Self {
        DetectorConfig {
            enabled: true,
            geometry: CacheGeometry::default(),
            tracking_threshold: 4,
            max_scale_log2: 1,
            prediction_threshold: 16,
            report_threshold: 1,
            prediction: true,
            instrument_reads: true,
            sampling: false,
            sample_interval: 1_000_000,
            sample_burst: 10_000,
            tracking_mode: TrackingMode::Precise,
        }
    }

    /// Switches to the paper-faithful lock-free hot path.
    pub fn with_tracking_mode(mut self, mode: TrackingMode) -> Self {
        self.tracking_mode = mode;
        self
    }

    /// Sets the sampling rate as a fraction (e.g. `0.01` for the paper's 1%),
    /// keeping the window length.
    pub fn with_sampling_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "sampling rate must be in [0,1]"
        );
        self.sampling = rate < 1.0;
        self.sample_burst = ((self.sample_interval as f64) * rate).round() as u64;
        self
    }

    /// Effective sampling rate in `[0, 1]`.
    pub fn sampling_rate(&self) -> f64 {
        if !self.sampling {
            1.0
        } else {
            (self.sample_burst as f64 / self.sample_interval as f64).min(1.0)
        }
    }

    /// Validates internal consistency (thresholds non-zero, burst ≤ window).
    pub fn validate(&self) -> Result<(), String> {
        if self.tracking_threshold == 0 {
            return Err("tracking_threshold must be at least 1".into());
        }
        if self.prediction_threshold == 0 {
            return Err("prediction_threshold must be at least 1".into());
        }
        if self.max_scale_log2 == 0 || self.max_scale_log2 > 4 {
            return Err(format!(
                "max_scale_log2 must be in 1..=4, got {}",
                self.max_scale_log2
            ));
        }
        if self.sampling && self.sample_burst > self.sample_interval {
            return Err(format!(
                "sample_burst ({}) exceeds sample_interval ({})",
                self.sample_burst, self.sample_interval
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DetectorConfig::default();
        assert_eq!(c.geometry.line_size(), 64);
        assert_eq!(c.sample_interval, 1_000_000);
        assert_eq!(c.sample_burst, 10_000);
        assert!((c.sampling_rate() - 0.01).abs() < 1e-9);
        assert!(c.prediction);
        c.validate().unwrap();
    }

    #[test]
    fn no_prediction_flips_only_that_switch() {
        let c = DetectorConfig::no_prediction();
        assert!(!c.prediction);
        assert_eq!(
            DetectorConfig {
                prediction: true,
                ..c
            },
            DetectorConfig::default()
        );
    }

    #[test]
    fn sampling_rate_setter() {
        let c = DetectorConfig::default().with_sampling_rate(0.001);
        assert_eq!(c.sample_burst, 1_000);
        let full = DetectorConfig::default().with_sampling_rate(1.0);
        assert!(!full.sampling);
        assert_eq!(full.sampling_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn sampling_rate_rejects_out_of_range() {
        let _ = DetectorConfig::default().with_sampling_rate(1.5);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = DetectorConfig {
            tracking_threshold: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let base = DetectorConfig::default();
        let c = DetectorConfig {
            sample_burst: base.sample_interval + 1,
            ..base
        };
        assert!(c.validate().is_err());
        let c = DetectorConfig {
            prediction_threshold: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = DetectorConfig {
            max_scale_log2: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = DetectorConfig {
            max_scale_log2: 5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn disabled_profile_only_flips_the_master_switch() {
        let c = DetectorConfig::disabled();
        assert!(!c.enabled);
        assert_eq!(
            DetectorConfig { enabled: true, ..c },
            DetectorConfig::default()
        );
    }

    #[test]
    fn tracking_mode_parses_and_displays() {
        assert_eq!(
            "precise".parse::<TrackingMode>().unwrap(),
            TrackingMode::Precise
        );
        assert_eq!(
            "relaxed".parse::<TrackingMode>().unwrap(),
            TrackingMode::Relaxed
        );
        assert!("lossy".parse::<TrackingMode>().is_err());
        assert_eq!(TrackingMode::Relaxed.to_string(), "relaxed");
        assert_eq!(TrackingMode::default(), TrackingMode::Precise);
        let c = DetectorConfig::sensitive().with_tracking_mode(TrackingMode::Relaxed);
        assert_eq!(c.tracking_mode, TrackingMode::Relaxed);
        let json = serde_json::to_string(&c).unwrap();
        let back: DetectorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn sensitive_profile_is_valid_and_unsampled() {
        let c = DetectorConfig::sensitive();
        c.validate().unwrap();
        assert_eq!(c.sampling_rate(), 1.0);
        assert_eq!(c.report_threshold, 1);
    }
}
