//! Dense thread-id assignment.
//!
//! The runtime identifies accesses by small dense [`ThreadId`]s (history
//! tables store them in two bytes). Real workload threads register here once
//! at spawn; the id is passed explicitly through the workload code, mirroring
//! how the paper's runtime tags accesses with the issuing thread.

use std::sync::atomic::{AtomicU16, Ordering};

use predator_sim::ThreadId;

/// Hands out dense thread ids, starting at 0 (conventionally the main
/// thread).
#[derive(Debug, Default)]
pub struct ThreadRegistry {
    next: AtomicU16,
}

impl ThreadRegistry {
    /// Creates a registry with no threads registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new thread, returning its dense id.
    pub fn register(&self) -> ThreadId {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(id != u16::MAX, "thread id space exhausted");
        ThreadId(id)
    }

    /// Number of threads registered so far.
    pub fn count(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_unique() {
        let r = ThreadRegistry::new();
        assert_eq!(r.register(), ThreadId(0));
        assert_eq!(r.register(), ThreadId(1));
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn concurrent_registration_yields_unique_ids() {
        let r = std::sync::Arc::new(ThreadRegistry::new());
        let ids: Vec<ThreadId> = std::thread::scope(|s| {
            (0..16)
                .map(|_| {
                    let r = r.clone();
                    s.spawn(move || r.register())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut raw: Vec<u16> = ids.iter().map(|t| t.0).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw.len(), 16);
        assert_eq!(r.count(), 16);
    }
}
