//! Pure address remaps: the what-if layer's model of a layout fix.
//!
//! A [`predator_core::FixSuggestion`] lowers (via
//! [`predator_core::lower_fix`]) to a list of [`LayoutEdit`]s — "insert
//! `pad` bytes of dead space immediately before address `at`". This module
//! turns that list into an [`AddressRemap`]: a total function on addresses
//! that is **injective** and **order-preserving** by construction, so
//! replaying a recorded trace through it is exactly re-running the recorded
//! execution against the edited layout.
//!
//! ## Soundness
//!
//! The remap never reorders the event stream and never merges two distinct
//! addresses, so every happens-before edge of the original execution is
//! preserved verbatim; only the address → cache-line partition changes. A
//! *general* injective remap can still make things worse (shifting two
//! same-offset words from different lines into one line), but remaps whose
//! pads are all whole-line multiples only ever *split* cache lines, never
//! merge them — see DESIGN.md for the full argument and the counterexample.
//! [`predator_core::CacheGeometry::portfolio_separation`] (the floor every
//! suggested padding uses) is a whole-line multiple of every portfolio
//! geometry, keeping suggested fixes inside the monotone class.

use predator_core::LayoutEdit;
use predator_sim::Access;

use crate::format::TraceMeta;

/// An injective, order-preserving address transformation built from
/// cumulative non-negative pads.
///
/// Internally a sorted list of `(at, cumulative_shift)` breakpoints:
/// `apply(addr) = addr + shift` where `shift` is the cumulative pad of the
/// last breakpoint at or below `addr` (zero below the first). Shifts are
/// non-negative and non-decreasing in `at`, which makes `apply` strictly
/// monotone — hence injective and order-preserving — with no further checks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AddressRemap {
    /// `(at, cumulative_shift)`, strictly increasing in `at`.
    breaks: Vec<(u64, u64)>,
}

impl AddressRemap {
    /// The identity remap (no edits).
    pub fn identity() -> Self {
        AddressRemap::default()
    }

    /// Builds a remap from layout edits. Edits may arrive unsorted and may
    /// repeat an address (pads at the same `at` accumulate); zero-pad edits
    /// are dropped. Saturates rather than wraps if the cumulative shift
    /// overflows (absurd inputs, but no UB).
    pub fn from_edits(edits: &[LayoutEdit]) -> Self {
        let mut sorted: Vec<LayoutEdit> = edits.iter().copied().filter(|e| e.pad > 0).collect();
        sorted.sort_by_key(|e| e.at);
        let mut breaks: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
        let mut shift = 0u64;
        for e in sorted {
            shift = shift.saturating_add(e.pad);
            match breaks.last_mut() {
                Some((at, s)) if *at == e.at => *s = shift,
                _ => breaks.push((e.at, shift)),
            }
        }
        AddressRemap { breaks }
    }

    /// True when the remap is the identity.
    pub fn is_identity(&self) -> bool {
        self.breaks.is_empty()
    }

    /// Total dead-space bytes inserted (the shift of the last breakpoint).
    pub fn total_pad(&self) -> u64 {
        self.breaks.last().map(|&(_, s)| s).unwrap_or(0)
    }

    /// Maps one address into the edited layout.
    #[inline]
    pub fn apply(&self, addr: u64) -> u64 {
        let shift = match self.breaks.partition_point(|&(at, _)| at <= addr) {
            0 => 0,
            i => self.breaks[i - 1].1,
        };
        addr.saturating_add(shift)
    }

    /// Maps one access event: the address moves, thread / size / kind are
    /// untouched. (An access whose span straddles a breakpoint keeps its
    /// size — edits are expected at field boundaries, where no recorded
    /// access straddles.)
    #[inline]
    pub fn apply_access(&self, a: Access) -> Access {
        Access {
            addr: self.apply(a.addr),
            ..a
        }
    }

    /// Maps a whole event slice.
    pub fn apply_events(&self, events: &[Access]) -> Vec<Access> {
        events.iter().map(|&a| self.apply_access(a)).collect()
    }

    /// Maps attribution metadata into the edited layout: object and global
    /// starts move, and sizes grow by any pad landing strictly inside them
    /// (`new_size = apply(start + size − 1) + 1 − apply(start)`), so the
    /// directory still covers every remapped word it covered before.
    pub fn apply_meta(&self, meta: &TraceMeta) -> TraceMeta {
        let span = |start: u64, size: u64| -> (u64, u64) {
            let new_start = self.apply(start);
            let new_size = if size == 0 {
                0
            } else {
                self.apply(start + size - 1) + 1 - new_start
            };
            (new_start, new_size)
        };
        let mut out = meta.clone();
        for g in &mut out.globals {
            let (s, z) = span(g.start, g.size);
            g.start = s;
            g.size = z;
        }
        for o in &mut out.objects {
            let (s, z) = span(o.start, o.size);
            o.start = s;
            o.size = z;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{MetaGlobal, MetaObject};
    use predator_sim::ThreadId;
    use proptest::prelude::*;

    fn edit(at: u64, pad: u64) -> LayoutEdit {
        LayoutEdit { at, pad }
    }

    #[test]
    fn identity_maps_everything_to_itself() {
        let r = AddressRemap::identity();
        assert!(r.is_identity());
        assert_eq!(r.total_pad(), 0);
        for a in [0u64, 1, 63, 64, 0x4000_0000, u64::MAX] {
            assert_eq!(r.apply(a), a);
        }
    }

    #[test]
    fn single_pad_shifts_suffix_only() {
        let r = AddressRemap::from_edits(&[edit(100, 64)]);
        assert_eq!(r.apply(0), 0);
        assert_eq!(r.apply(99), 99);
        assert_eq!(r.apply(100), 164);
        assert_eq!(r.apply(200), 264);
        assert_eq!(r.total_pad(), 64);
    }

    #[test]
    fn pads_accumulate_in_address_order_regardless_of_input_order() {
        let a = AddressRemap::from_edits(&[edit(200, 32), edit(100, 64)]);
        let b = AddressRemap::from_edits(&[edit(100, 64), edit(200, 32)]);
        assert_eq!(a, b);
        assert_eq!(a.apply(150), 150 + 64);
        assert_eq!(a.apply(200), 200 + 96);
        assert_eq!(a.total_pad(), 96);
    }

    #[test]
    fn duplicate_ats_merge_and_zero_pads_vanish() {
        let r = AddressRemap::from_edits(&[edit(100, 8), edit(100, 8), edit(50, 0)]);
        assert_eq!(r.apply(100), 116);
        assert_eq!(r.apply(50), 50);
        assert!(AddressRemap::from_edits(&[edit(5, 0)]).is_identity());
    }

    #[test]
    fn access_keeps_everything_but_the_address() {
        let r = AddressRemap::from_edits(&[edit(0x1000, 512)]);
        let a = Access::write(ThreadId(3), 0x1008, 8);
        let m = r.apply_access(a);
        assert_eq!(m.addr, 0x1008 + 512);
        assert_eq!(m.tid, a.tid);
        assert_eq!(m.size, a.size);
        assert_eq!(m.kind, a.kind);
    }

    #[test]
    fn meta_objects_move_and_grow_over_interior_pads() {
        let meta = TraceMeta {
            globals: vec![MetaGlobal {
                name: "g".into(),
                start: 0x2000,
                size: 64,
            }],
            objects: vec![MetaObject {
                start: 0x1000,
                size: 64,
                owner: 0,
                frames: Vec::new(),
            }],
            app_live_bytes: 128,
        };
        // Pad inside the object (at 0x1008) and before the global.
        let r = AddressRemap::from_edits(&[edit(0x1008, 512)]);
        let m = r.apply_meta(&meta);
        assert_eq!(m.objects[0].start, 0x1000, "prefix stays put");
        assert_eq!(m.objects[0].size, 64 + 512, "interior pad grows the span");
        assert_eq!(m.globals[0].start, 0x2000 + 512, "suffix shifts");
        assert_eq!(m.globals[0].size, 64, "no interior pad, same size");
        assert_eq!(m.app_live_bytes, 128);
    }

    proptest! {
        /// apply() is strictly monotone — therefore injective and
        /// order-preserving — for any edit list.
        #[test]
        fn prop_remap_is_strictly_monotone(
            edits in proptest::collection::vec((0u64..10_000, 0u64..1_000), 0..16),
            mut addrs in proptest::collection::vec(0u64..20_000, 2..64),
        ) {
            let edits: Vec<LayoutEdit> =
                edits.into_iter().map(|(at, pad)| edit(at, pad)).collect();
            let r = AddressRemap::from_edits(&edits);
            addrs.sort_unstable();
            addrs.dedup();
            for w in addrs.windows(2) {
                prop_assert!(r.apply(w[0]) < r.apply(w[1]),
                    "order violated: {} -> {}, {} -> {}",
                    w[0], r.apply(w[0]), w[1], r.apply(w[1]));
            }
        }

        /// The shift at any address equals the sum of pads at or below it.
        #[test]
        fn prop_shift_is_prefix_sum_of_pads(
            edits in proptest::collection::vec((0u64..5_000, 1u64..500), 1..12),
            addr in 0u64..6_000,
        ) {
            let list: Vec<LayoutEdit> =
                edits.iter().map(|&(at, pad)| edit(at, pad)).collect();
            let r = AddressRemap::from_edits(&list);
            let expect: u64 = list.iter()
                .filter(|e| e.at <= addr)
                .map(|e| e.pad)
                .sum();
            prop_assert_eq!(r.apply(addr), addr + expect);
        }
    }
}
