//! Contention-free event collection via thread-local segments.
//!
//! The old recorder took one global `Mutex<Vec<Access>>` on *every* event;
//! under four recording threads the lock is contended on every access.
//! Here each thread appends to its own segment — reached through TLS, and
//! guarded by a mutex only that thread and an occasional global flush ever
//! touch, so the lock is uncontended on the hot path — and the shared
//! [`BatchSink`]'s lock is taken once per [`SEGMENT_CAPACITY`] events
//! instead of once per event.
//!
//! ## Ordering guarantee
//!
//! Events from one thread reach the sink in issue order (all flushes of a
//! segment are serialised by its mutex and drain FIFO). Across threads
//! there is **no** ordering guarantee: segments arrive when they happen to
//! fill, so two threads' events interleave at segment granularity, not
//! access granularity. (The old mutex recorder never promised more — lock
//! handoff order is scheduler whim — it just interleaved finer.) The
//! detector doesn't care: its state is per cache line and the sharding
//! soundness argument (see [`crate::analyze`]) never relies on cross-thread
//! order.
//!
//! ## Visibility
//!
//! A thread's unflushed tail is invisible to the sink until that segment
//! flushes: on fill, at thread exit, or — the one callers may rely on —
//! when [`SegmentedSink::flush_all`] drains every registered segment.
//! Thread-exit flushes are best-effort only: `std::thread::scope` (and
//! `join`) signal completion when the spawned *closure* returns, which can
//! be before the thread's TLS destructors run, so always `flush_all`
//! before reading results.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use predator_sim::{Access, AccessKind, AccessSink, ThreadId};

/// Events per thread-local segment before it is flushed to the sink.
pub const SEGMENT_CAPACITY: usize = 4096;

/// Receives filled segments. The `Vec` is drained (left empty, capacity
/// intact) so the owning thread keeps appending without reallocating.
pub trait BatchSink: Send + Sync {
    /// Consumes `events`, leaving it empty.
    fn batch(&self, events: &mut Vec<Access>);
}

type SegBuf = Arc<Mutex<Vec<Access>>>;

struct Shared {
    id: u64,
    capacity: usize,
    sink: Box<dyn BatchSink>,
    /// Every live thread's segment, so `flush_all` can drain them without
    /// waiting on TLS destructors.
    registry: Mutex<Vec<SegBuf>>,
}

impl Shared {
    fn flush_seg(&self, seg: &Mutex<Vec<Access>>) {
        let mut buf = seg.lock().unwrap_or_else(|e| e.into_inner());
        if !buf.is_empty() {
            self.sink.batch(&mut buf);
        }
    }
}

/// An [`AccessSink`] that buffers events in thread-local segments and
/// forwards them to a [`BatchSink`] in batches.
pub struct SegmentedSink {
    shared: Arc<Shared>,
}

struct LocalSeg {
    id: u64,
    shared: Weak<Shared>,
    buf: SegBuf,
}

impl Drop for LocalSeg {
    fn drop(&mut self) {
        // Thread exit (TLS destructor) or registry pruning: hand over the
        // tail if the sink still exists, and unregister. Best-effort — the
        // registry keeps correctness even if this never runs.
        if let Some(shared) = self.shared.upgrade() {
            shared.flush_seg(&self.buf);
            shared
                .registry
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .retain(|s| !Arc::ptr_eq(s, &self.buf));
        }
    }
}

thread_local! {
    /// Segments of every live `SegmentedSink` this thread has pushed to.
    /// A small linear registry: one entry per concurrently-live sink.
    static SEGMENTS: RefCell<Vec<LocalSeg>> = const { RefCell::new(Vec::new()) };
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

impl SegmentedSink {
    /// Wraps `sink` with the default segment capacity.
    pub fn new(sink: Box<dyn BatchSink>) -> Self {
        Self::with_capacity(sink, SEGMENT_CAPACITY)
    }

    /// Wraps `sink`, flushing thread-local segments every `capacity` events.
    pub fn with_capacity(sink: Box<dyn BatchSink>, capacity: usize) -> Self {
        assert!(capacity > 0, "segment capacity must be positive");
        SegmentedSink {
            shared: Arc::new(Shared {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                capacity,
                sink,
                registry: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Appends one event to the calling thread's segment, flushing it to
    /// the batch sink if full.
    #[inline]
    pub fn push(&self, a: Access) {
        SEGMENTS.with(|cell| {
            let mut segs = cell.borrow_mut();
            let seg = match segs.iter_mut().find(|s| s.id == self.shared.id) {
                Some(seg) => seg,
                None => {
                    // Drop registry entries for dead sinks, then register
                    // this thread's segment with the live one.
                    segs.retain(|s| s.shared.strong_count() > 0);
                    let buf: SegBuf =
                        Arc::new(Mutex::new(Vec::with_capacity(self.shared.capacity)));
                    self.shared.registry.lock().unwrap().push(buf.clone());
                    segs.push(LocalSeg {
                        id: self.shared.id,
                        shared: Arc::downgrade(&self.shared),
                        buf,
                    });
                    segs.last_mut().unwrap()
                }
            };
            // Uncontended except against a concurrent flush_all; held
            // across the sink handoff so flushes of this segment serialise
            // and per-thread order survives.
            let mut buf = seg.buf.lock().unwrap_or_else(|e| e.into_inner());
            buf.push(a);
            if buf.len() >= self.shared.capacity {
                self.shared.sink.batch(&mut buf);
            }
        });
    }

    /// Flushes the *calling thread's* segment to the batch sink.
    pub fn flush_thread(&self) {
        SEGMENTS.with(|cell| {
            let segs = cell.borrow();
            if let Some(seg) = segs.iter().find(|s| s.id == self.shared.id) {
                self.shared.flush_seg(&seg.buf);
            }
        });
    }

    /// Drains **every** thread's segment to the batch sink. After this
    /// returns, all events pushed before the call (on any thread) have
    /// reached the sink. Threads still pushing concurrently may of course
    /// leave new events behind.
    pub fn flush_all(&self) {
        let segs: Vec<SegBuf> = self
            .shared
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        for seg in segs {
            self.shared.flush_seg(&seg);
        }
    }
}

impl AccessSink for SegmentedSink {
    #[inline]
    fn access(&self, tid: ThreadId, addr: u64, size: u8, kind: AccessKind) {
        self.push(Access {
            tid,
            addr,
            size,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Store(Arc<Mutex<Vec<Access>>>);
    impl BatchSink for Store {
        fn batch(&self, events: &mut Vec<Access>) {
            self.0.lock().unwrap().append(events);
        }
    }

    fn store_sink(capacity: usize) -> (SegmentedSink, Arc<Mutex<Vec<Access>>>) {
        let store = Arc::new(Mutex::new(Vec::new()));
        (
            SegmentedSink::with_capacity(Box::new(Store(store.clone())), capacity),
            store,
        )
    }

    #[test]
    fn events_invisible_until_flush_then_ordered() {
        let (sink, store) = store_sink(1024);
        sink.access(ThreadId(0), 0x100, 8, AccessKind::Write);
        sink.access(ThreadId(0), 0x108, 4, AccessKind::Read);
        assert!(store.lock().unwrap().is_empty(), "buffered in the segment");
        sink.flush_thread();
        let got = store.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![
                Access::write(ThreadId(0), 0x100, 8),
                Access::read(ThreadId(0), 0x108, 4)
            ]
        );
    }

    #[test]
    fn full_segment_auto_flushes() {
        let (sink, store) = store_sink(4);
        for i in 0..9u64 {
            sink.access(ThreadId(0), i * 8, 8, AccessKind::Write);
        }
        assert_eq!(
            store.lock().unwrap().len(),
            8,
            "two full segments handed over"
        );
        sink.flush_thread();
        assert_eq!(store.lock().unwrap().len(), 9);
    }

    #[test]
    fn flush_all_sees_every_threads_tail() {
        let (sink, store) = store_sink(1 << 20); // never auto-flushes
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        sink.access(ThreadId(t), i * 8, 8, AccessKind::Write);
                    }
                });
            }
        });
        sink.flush_all();
        let got = store.lock().unwrap();
        assert_eq!(got.len(), 4000);
        // Per-thread order survives batching.
        for t in 0..4u16 {
            let addrs: Vec<u64> = got
                .iter()
                .filter(|a| a.tid == ThreadId(t))
                .map(|a| a.addr)
                .collect();
            assert!(
                addrs.windows(2).all(|w| w[1] > w[0]),
                "thread {t} out of order"
            );
        }
    }

    #[test]
    fn flush_all_is_idempotent() {
        let (sink, store) = store_sink(64);
        sink.access(ThreadId(0), 1, 1, AccessKind::Write);
        sink.flush_all();
        sink.flush_all();
        assert_eq!(store.lock().unwrap().len(), 1);
    }

    #[test]
    fn two_sinks_on_one_thread_do_not_mix() {
        let (a, sa) = store_sink(16);
        let (b, sb) = store_sink(16);
        a.access(ThreadId(0), 1, 1, AccessKind::Write);
        b.access(ThreadId(0), 2, 1, AccessKind::Write);
        a.flush_all();
        b.flush_all();
        assert_eq!(sa.lock().unwrap().len(), 1);
        assert_eq!(sa.lock().unwrap()[0].addr, 1);
        assert_eq!(sb.lock().unwrap().len(), 1);
        assert_eq!(sb.lock().unwrap()[0].addr, 2);
    }
}
