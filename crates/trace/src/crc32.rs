//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over chunk
//! payloads. Table-driven, no dependencies; the table is built once at
//! first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data` (init `0xffff_ffff`, final xor `0xffff_ffff`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c: u32 = 0xffff_ffff;
    for &b in data {
        c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0xabu8; 256];
        let base = crc32(&data);
        for i in [0usize, 100, 255] {
            let mut flipped = data.clone();
            flipped[i] ^= 0x01;
            assert_ne!(
                crc32(&flipped),
                base,
                "flip at byte {i} must change the CRC"
            );
        }
    }
}
