//! Streaming `.ptrace` writers.
//!
//! [`TraceWriter`] is the single-threaded framing layer: it owns the output
//! stream, tracks chunk offsets for the footer index, and seals the file
//! with a META chunk, the index, and the trailer. [`TraceSink`] layers the
//! thread-local segment machinery on top so a multi-threaded workload can
//! record through an [`AccessSink`] with the writer's lock taken once per
//! segment, not once per event.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use predator_sim::{Access, AccessKind, AccessSink, ThreadId};

use crate::crc32::crc32;
use crate::format::{
    ChunkFrame, EventEncoder, Header, IndexEntry, TraceMeta, CHUNK_EVENTS, CHUNK_INDEX, CHUNK_META,
    END_MAGIC, VERSION,
};
use crate::segment::{BatchSink, SegmentedSink};

/// Summary returned by [`TraceWriter::finish`] / [`TraceSink::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Total event records written.
    pub events: u64,
    /// Total bytes written, trailer included.
    pub bytes: u64,
    /// Chunks written (events + meta + index).
    pub chunks: usize,
}

/// Single-threaded streaming writer for the `.ptrace` format.
pub struct TraceWriter<W: Write> {
    w: W,
    offset: u64,
    index: Vec<IndexEntry>,
    total_records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the file header for a trace over `[base, base + size)`.
    pub fn create(mut w: W, base: u64, size: u64) -> io::Result<Self> {
        let header = Header {
            version: VERSION,
            base,
            size,
        }
        .encode();
        w.write_all(&header)?;
        Ok(TraceWriter {
            w,
            offset: header.len() as u64,
            index: Vec::new(),
            total_records: 0,
        })
    }

    fn write_chunk(&mut self, kind: u8, record_count: u32, payload: &[u8]) -> io::Result<()> {
        let frame = ChunkFrame {
            kind,
            flags: 0,
            record_count,
            payload_len: payload.len() as u32,
            crc: crc32(payload),
        };
        self.index.push(IndexEntry {
            offset: self.offset,
            kind,
            record_count,
        });
        self.w.write_all(&frame.encode())?;
        self.w.write_all(payload)?;
        self.offset += (crate::format::CHUNK_FRAME_LEN + payload.len()) as u64;
        Ok(())
    }

    /// Writes one events chunk. Delta state is per-chunk, so any slicing of
    /// a per-thread stream into consecutive `write_events` calls is valid.
    pub fn write_events(&mut self, events: &[Access]) -> io::Result<()> {
        if events.is_empty() {
            return Ok(());
        }
        let mut enc = EventEncoder::new();
        for &a in events {
            enc.push(a);
        }
        let (payload, count) = enc.finish();
        self.total_records += count as u64;
        self.write_chunk(CHUNK_EVENTS, count, &payload)
    }

    /// Writes the META chunk carrying attribution state.
    pub fn write_meta(&mut self, meta: &TraceMeta) -> io::Result<()> {
        let payload = serde_json::to_string(meta)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            .into_bytes();
        self.write_chunk(CHUNK_META, 1, &payload)
    }

    /// Seals the file: index chunk, trailer, flush. Returns the summary and
    /// the underlying stream.
    pub fn finish(mut self) -> io::Result<(WriteSummary, W)> {
        let index_offset = self.offset;
        let payload = crate::format::encode_index(&self.index);
        let entries = self.index.len() as u32;
        self.write_chunk(CHUNK_INDEX, entries, &payload)?;
        self.w.write_all(&index_offset.to_le_bytes())?;
        self.w.write_all(&self.total_records.to_le_bytes())?;
        self.w.write_all(END_MAGIC)?;
        self.offset += crate::format::TRAILER_LEN as u64;
        self.w.flush()?;
        let summary = WriteSummary {
            events: self.total_records,
            bytes: self.offset,
            chunks: self.index.len(),
        };
        Ok((summary, self.w))
    }

    /// Event records written so far.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }
}

struct SinkState<W: Write> {
    writer: Option<TraceWriter<W>>,
    error: Option<io::Error>,
}

struct WriterBatch<W: Write + Send>(Arc<Mutex<SinkState<W>>>);

impl<W: Write + Send> BatchSink for WriterBatch<W> {
    fn batch(&self, events: &mut Vec<Access>) {
        let mut st = self.0.lock().unwrap();
        if st.error.is_some() {
            events.clear();
            return;
        }
        if let Some(w) = st.writer.as_mut() {
            if let Err(e) = w.write_events(events) {
                st.error = Some(e);
            }
        }
        events.clear();
    }
}

/// Multi-threaded recording sink: implements [`AccessSink`] over
/// thread-local segments, each flushed segment becoming one events chunk.
///
/// Per-thread event order is preserved; cross-thread order is segment
/// granular (see [`crate::segment`]). I/O errors are latched and surfaced
/// by [`finish`](TraceSink::finish); events arriving after an error are
/// dropped.
pub struct TraceSink<W: Write + Send + 'static> {
    seg: SegmentedSink,
    state: Arc<Mutex<SinkState<W>>>,
}

impl<W: Write + Send + 'static> TraceSink<W> {
    /// Starts a trace file over `[base, base + size)` on `w`.
    pub fn create(w: W, base: u64, size: u64) -> io::Result<Self> {
        Self::with_segment_capacity(w, base, size, crate::segment::SEGMENT_CAPACITY)
    }

    /// As [`create`](Self::create) with an explicit events-per-chunk cap.
    pub fn with_segment_capacity(w: W, base: u64, size: u64, capacity: usize) -> io::Result<Self> {
        let writer = TraceWriter::create(w, base, size)?;
        let state = Arc::new(Mutex::new(SinkState {
            writer: Some(writer),
            error: None,
        }));
        let seg = SegmentedSink::with_capacity(Box::new(WriterBatch(state.clone())), capacity);
        Ok(TraceSink { seg, state })
    }

    /// Flushes the calling thread's segment.
    pub fn flush_thread(&self) {
        self.seg.flush_thread();
    }

    /// Seals the trace: drains every thread's segment, then writes the
    /// META chunk, index, and trailer. Events recorded before this call —
    /// on any thread — are all in the file. Any latched I/O error from a
    /// worker thread's flush is returned here.
    pub fn finish(&self, meta: &TraceMeta) -> io::Result<WriteSummary> {
        self.seg.flush_all();
        let mut st = self.state.lock().unwrap();
        if let Some(e) = st.error.take() {
            return Err(e);
        }
        let mut writer = st
            .writer
            .take()
            .ok_or_else(|| io::Error::other("trace already finished"))?;
        writer.write_meta(meta)?;
        let (summary, _w) = writer.finish()?;
        Ok(summary)
    }
}

impl<W: Write + Send + 'static> AccessSink for TraceSink<W> {
    #[inline]
    fn access(&self, tid: ThreadId, addr: u64, size: u8, kind: AccessKind) {
        self.seg.access(tid, addr, size, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_header_chunks_trailer() {
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::create(&mut buf, 0x1000, 0x2000).unwrap();
            w.write_events(&[Access::write(ThreadId(0), 0x1000, 8)])
                .unwrap();
            w.write_events(&[Access::read(ThreadId(1), 0x1008, 4)])
                .unwrap();
            w.write_meta(&TraceMeta::default()).unwrap();
            let (summary, _) = w.finish().unwrap();
            assert_eq!(summary.events, 2);
            assert_eq!(summary.chunks, 4); // 2 events + meta + index
            assert_eq!(summary.bytes, buf.len() as u64);
        }
        assert_eq!(&buf[0..6], crate::format::MAGIC);
        assert_eq!(&buf[buf.len() - 8..], END_MAGIC);
        let total = u64::from_le_bytes(buf[buf.len() - 16..buf.len() - 8].try_into().unwrap());
        assert_eq!(total, 2);
    }

    #[test]
    fn sink_records_across_threads_without_loss() {
        let state = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = TraceSink::with_segment_capacity(Shared(state.clone()), 0, 1 << 20, 64).unwrap();
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        sink.access(ThreadId(t), i * 8, 8, AccessKind::Write);
                    }
                });
            }
        });
        let summary = sink.finish(&TraceMeta::default()).unwrap();
        assert_eq!(summary.events, 4000);
        assert_eq!(state.lock().unwrap().len() as u64, summary.bytes);
    }
}
