//! Sharded offline analysis: partition cache lines across worker threads,
//! run an independent detector per shard, merge into one report.
//!
//! ## Why line sharding is sound
//!
//! Every piece of detector state — per-line access histories, word
//! histograms, invalidation counts, prediction units — is keyed by cache
//! line, and an access to line `L` can only read or write state for lines
//! within `r = (1 << max_scale_log2) − 1` of `L` (neighbour promotion,
//! the virtual-line analysis window, and unit attachment all reach at most
//! `r`). Two accesses whose lines are more than `2r` apart therefore share
//! no state at all. We cluster the touched lines so that consecutive lines
//! stay together when their gap is ≤ `max(2r, 1)` (the `max(…, 1)` keeps
//! the two lines of a straddling access in one cluster), assign whole
//! clusters to shards, and route each event to exactly one shard. Within a
//! shard, events arrive in the original stream order; since clusters on
//! different shards are non-interacting, each shard's detector state is
//! *identical* to the state the sequential detector would hold for those
//! lines. [`predator_core::build_report_merged`] then re-sorts the
//! per-shard snapshots into global line order, reproducing the sequential
//! report byte for byte.
//!
//! Sampling is the one global the argument must cover: the skip counter is
//! kept **per tracked line**, not per detector, so it too shards cleanly.

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;
use std::sync::mpsc::sync_channel;

use predator_core::{build_report_merged, Attribution, DetectorConfig, Predator, Report};
use predator_sim::Access;

use crate::format::{TraceMeta, MAGIC};
use crate::jsonl::JsonlIter;
use crate::reader::{LossStats, TraceError, TraceReader};

/// Events per batch handed from the dispatcher to a shard worker.
pub const DISPATCH_BATCH: usize = 4096;
/// Bounded depth of each shard's batch queue.
const CHANNEL_DEPTH: usize = 8;

/// Knobs for one offline analysis run.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Detector configuration every shard runs with.
    pub det: DetectorConfig,
    /// Worker shard count (≥ 1; clusters may cap the useful number).
    pub shards: usize,
    /// Events per dispatched batch.
    pub batch: usize,
}

impl AnalyzeConfig {
    /// Detector config + shard count, default batching.
    pub fn new(det: DetectorConfig, shards: usize) -> Self {
        AnalyzeConfig {
            det,
            shards: shards.max(1),
            batch: DISPATCH_BATCH,
        }
    }
}

/// Result of an offline analysis run.
#[derive(Debug)]
pub struct AnalyzeOutcome {
    /// The merged report — identical to what a sequential replay produces.
    pub report: Report,
    /// Events delivered to shard detectors.
    pub events: u64,
    /// Shards that actually received work.
    pub shards_used: usize,
    /// Line clusters found in the trace.
    pub clusters: usize,
    /// Trace damage encountered while reading (zeros for JSONL).
    pub loss: LossStats,
    /// Attribution metadata was present and applied.
    pub meta_applied: bool,
}

/// Maps every touched cache line to its shard.
#[derive(Debug)]
pub struct ShardPlan {
    assignment: HashMap<u64, usize>,
    /// Non-interacting line clusters discovered.
    pub clusters: usize,
    /// Shards holding at least one cluster.
    pub shards_used: usize,
}

impl ShardPlan {
    /// Builds a plan from per-line event counts.
    ///
    /// Lines whose gap is ≤ `link` join one cluster; clusters are assigned
    /// longest-processing-time-first to the least-loaded shard, which keeps
    /// the heaviest cluster from sharing a shard while lighter ones exist.
    pub fn build(counts: &BTreeMap<u64, u64>, shards: usize, link: u64) -> ShardPlan {
        let shards = shards.max(1);
        // Pass over sorted lines, cutting clusters at gaps > link.
        let mut clusters: Vec<(Vec<u64>, u64)> = Vec::new();
        let mut prev: Option<u64> = None;
        for (&line, &n) in counts {
            match prev {
                Some(p) if line - p <= link => {
                    let last = clusters.last_mut().unwrap();
                    last.0.push(line);
                    last.1 += n;
                }
                _ => clusters.push((vec![line], n)),
            }
            prev = Some(line);
        }
        let n_clusters = clusters.len();
        // LPT assignment: heaviest first onto the lightest shard. Sort is
        // stable with the line-order tiebreak already implicit, so the plan
        // is deterministic (not that correctness needs it — any cluster →
        // shard map yields the same merged report).
        let mut order: Vec<usize> = (0..n_clusters).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(clusters[i].1));
        let mut load = vec![0u64; shards];
        let mut assignment = HashMap::new();
        for i in order {
            let shard = (0..shards).min_by_key(|&s| (load[s], s)).unwrap();
            load[shard] += clusters[i].1;
            for &line in &clusters[i].0 {
                assignment.insert(line, shard);
            }
        }
        let shards_used = load.iter().filter(|&&w| w > 0).count().max(1);
        ShardPlan {
            assignment,
            clusters: n_clusters,
            shards_used,
        }
    }

    /// Shard owning `line` (0 for lines never seen in pass 1 — harmless,
    /// the detector ignores out-of-range addresses anyway).
    #[inline]
    pub fn shard_of(&self, line: u64) -> usize {
        self.assignment.get(&line).copied().unwrap_or(0)
    }
}

/// Cluster link distance for a detector config: `max(2r, 1)` with
/// `r = (1 << max_scale_log2) − 1` (see the module doc).
pub fn link_gap(det: &DetectorConfig) -> u64 {
    let r = (1u64 << det.max_scale_log2) - 1;
    (2 * r).max(1)
}

/// Accumulates per-line event counts for planning (pass 1).
pub fn count_lines<I: Iterator<Item = Access>>(
    events: I,
    det: &DetectorConfig,
) -> BTreeMap<u64, u64> {
    let _sp = predator_obs::span("trace_scan");
    let geom = det.geometry;
    let mut counts = BTreeMap::new();
    for a in events {
        for line in geom.lines_touched(a.addr, a.size) {
            *counts.entry(line).or_insert(0u64) += 1;
        }
    }
    counts
}

/// Pass 2: routes `events` to per-shard detectors and merges the results.
/// Returns the merged report, the delivered event count, and the plan.
pub fn run_sharded<I: Iterator<Item = Access>>(
    counts: &BTreeMap<u64, u64>,
    events: &mut I,
    base: u64,
    size: u64,
    meta: Option<&TraceMeta>,
    cfg: &AnalyzeConfig,
) -> (Report, u64, ShardPlan) {
    let plan = ShardPlan::build(counts, cfg.shards, link_gap(&cfg.det));
    let n = cfg.shards.max(1);
    let geom = cfg.det.geometry;
    let batch = cfg.batch.max(1);
    let rts: Vec<Predator> = (0..n).map(|_| Predator::new(cfg.det, base, size)).collect();
    let mut delivered = 0u64;
    std::thread::scope(|s| {
        let mut txs = Vec::with_capacity(n);
        for rt in &rts {
            let (tx, rx) = sync_channel::<Vec<Access>>(CHANNEL_DEPTH);
            txs.push(tx);
            s.spawn(move || {
                let _sp = predator_obs::span("shard_analyze");
                for batch in rx {
                    for a in batch {
                        rt.handle_access(a.tid, a.addr, a.size, a.kind);
                    }
                }
            });
        }
        let _sp = predator_obs::span("shard_dispatch");
        let mut bufs: Vec<Vec<Access>> = (0..n).map(|_| Vec::with_capacity(batch)).collect();
        for a in events {
            let shard = plan.shard_of(geom.line_index(a.addr));
            let buf = &mut bufs[shard];
            buf.push(a);
            delivered += 1;
            if buf.len() >= batch {
                let full = std::mem::replace(buf, Vec::with_capacity(batch));
                // A send only fails if the worker panicked; propagate.
                txs[shard].send(full).expect("shard worker died");
            }
        }
        for (shard, buf) in bufs.into_iter().enumerate() {
            if !buf.is_empty() {
                txs[shard].send(buf).expect("shard worker died");
            }
        }
        // Dropping the senders ends each worker's loop; scope joins them.
    });
    if let Some(m) = meta {
        m.apply_globals(&rts[0]);
    }
    let dir = meta.map(TraceMeta::directory);
    let attr = match dir.as_ref() {
        Some(d) => Attribution::Directory(d),
        None => Attribution::None,
    };
    let refs: Vec<&Predator> = rts.iter().collect();
    let report = build_report_merged(&refs, attr);
    (report, delivered, plan)
}

/// Analyses an in-memory event slice (both passes over the slice).
pub fn analyze_events(
    events: &[Access],
    base: u64,
    size: u64,
    meta: Option<&TraceMeta>,
    cfg: &AnalyzeConfig,
) -> AnalyzeOutcome {
    let counts = count_lines(events.iter().copied(), &cfg.det);
    let mut pass2 = events.iter().copied();
    let (report, delivered, plan) = run_sharded(&counts, &mut pass2, base, size, meta, cfg);
    AnalyzeOutcome {
        report,
        events: delivered,
        shards_used: plan.shards_used,
        clusters: plan.clusters,
        loss: LossStats::default(),
        meta_applied: meta.is_some(),
    }
}

/// Trace file encodings accepted by [`analyze_file`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Binary `.ptrace`.
    Ptrace,
    /// JSON lines.
    Jsonl,
}

/// Decides a file's format from its leading bytes (`.ptrace` magic or not).
pub fn sniff_format(path: &Path) -> Result<TraceFormat, String> {
    let mut f = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut head = [0u8; 6];
    let mut got = 0;
    while got < head.len() {
        match f.read(&mut head[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
    }
    Ok(if got == 6 && head == *MAGIC {
        TraceFormat::Ptrace
    } else {
        TraceFormat::Jsonl
    })
}

/// Offline analysis of a trace file (`.ptrace` or JSONL, sniffed).
///
/// For `.ptrace` the traced address range and attribution metadata come
/// from the file itself; `fallback_base`/`fallback_size` cover JSONL,
/// which carries neither.
pub fn analyze_file(
    path: &Path,
    cfg: &AnalyzeConfig,
    fallback_base: u64,
    fallback_size: u64,
) -> Result<AnalyzeOutcome, String> {
    match sniff_format(path)? {
        TraceFormat::Ptrace => analyze_ptrace(path, cfg),
        TraceFormat::Jsonl => analyze_jsonl(path, cfg, fallback_base, fallback_size),
    }
}

fn open_ptrace(path: &Path) -> Result<TraceReader<BufReader<File>>, String> {
    let f = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    TraceReader::new(BufReader::new(f)).map_err(|e: TraceError| format!("{}: {e}", path.display()))
}

fn analyze_ptrace(path: &Path, cfg: &AnalyzeConfig) -> Result<AnalyzeOutcome, String> {
    let mut pass1 = open_ptrace(path)?;
    let counts = count_lines(&mut pass1, &cfg.det);
    pass1.drain();
    let meta = pass1.take_meta();
    let (base, size) = (pass1.base(), pass1.size());
    // Recycle pass 1's window and queue for pass 2 instead of reallocating.
    let f = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut pass2 = pass1
        .reuse(BufReader::new(f))
        .map_err(|e: TraceError| format!("{}: {e}", path.display()))?;
    let (report, delivered, plan) =
        run_sharded(&counts, &mut pass2, base, size, meta.as_ref(), cfg);
    pass2.drain();
    Ok(AnalyzeOutcome {
        report,
        events: delivered,
        shards_used: plan.shards_used,
        clusters: plan.clusters,
        loss: pass2.stats(),
        meta_applied: meta.is_some(),
    })
}

fn analyze_jsonl(
    path: &Path,
    cfg: &AnalyzeConfig,
    base: u64,
    size: u64,
) -> Result<AnalyzeOutcome, String> {
    let open = || -> Result<_, String> {
        let f = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(JsonlIter::new(BufReader::new(f)))
    };
    let mut bad: Option<String> = None;
    let counts = count_lines(
        open()?.map_while(|r| match r {
            Ok(a) => Some(a),
            Err(e) => {
                bad = Some(e.to_string());
                None
            }
        }),
        &cfg.det,
    );
    if let Some(e) = bad {
        return Err(format!("{}: {e}", path.display()));
    }
    let mut pass2 = open()?.map_while(Result::ok);
    let (report, delivered, plan) = run_sharded(&counts, &mut pass2, base, size, None, cfg);
    Ok(AnalyzeOutcome {
        report,
        events: delivered,
        shards_used: plan.shards_used,
        clusters: plan.clusters,
        loss: LossStats::default(),
        meta_applied: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_core::build_report;
    use predator_sim::ThreadId;

    /// Two threads ping-pong on adjacent words in several well-separated
    /// regions — multiple clusters, real false sharing in each.
    fn multi_cluster_trace(regions: u64, per_region: u64, base: u64) -> Vec<Access> {
        let mut out = Vec::new();
        for i in 0..per_region {
            for r in 0..regions {
                let rbase = base + r * 0x10000;
                out.push(Access::write(
                    ThreadId((i % 2) as u16),
                    rbase + (i % 2) * 8,
                    8,
                ));
            }
        }
        out
    }

    fn sequential_report(events: &[Access], base: u64, size: u64, det: &DetectorConfig) -> Report {
        let rt = Predator::new(*det, base, size);
        for a in events {
            rt.handle_access(a.tid, a.addr, a.size, a.kind);
        }
        build_report(&rt, None)
    }

    /// Findings + run stats, serialised. The `obs` section is excluded: it
    /// snapshots process-global telemetry, which accumulates across runs.
    fn essence(r: &Report) -> String {
        format!(
            "{}\n{}",
            serde_json::to_string(&r.findings).unwrap(),
            serde_json::to_string(&r.stats).unwrap()
        )
    }

    #[test]
    fn plan_separates_distant_clusters_and_links_near_lines() {
        let mut counts = BTreeMap::new();
        counts.insert(100u64, 10u64);
        counts.insert(101, 5); // gap 1 ≤ link → same cluster
        counts.insert(200, 20); // far away → new cluster
        counts.insert(201, 1);
        let plan = ShardPlan::build(&counts, 2, 2);
        assert_eq!(plan.clusters, 2);
        assert_eq!(plan.shard_of(100), plan.shard_of(101));
        assert_eq!(plan.shard_of(200), plan.shard_of(201));
        assert_ne!(plan.shard_of(100), plan.shard_of(200));
        assert_eq!(plan.shards_used, 2);
    }

    #[test]
    fn single_cluster_uses_one_shard() {
        let mut counts = BTreeMap::new();
        counts.insert(7u64, 100u64);
        counts.insert(8, 100);
        let plan = ShardPlan::build(&counts, 8, 2);
        assert_eq!(plan.clusters, 1);
        assert_eq!(plan.shards_used, 1);
    }

    #[test]
    fn sharded_matches_sequential_exactly() {
        let base = 0x4000_0000u64;
        let size = 1u64 << 20;
        let events = multi_cluster_trace(6, 400, base);
        let det = DetectorConfig::sensitive();
        let seq = sequential_report(&events, base, size, &det);
        assert!(!seq.findings.is_empty(), "workload must produce findings");
        for shards in [1usize, 2, 4, 8] {
            let out = analyze_events(&events, base, size, None, &AnalyzeConfig::new(det, shards));
            assert_eq!(out.events, events.len() as u64);
            assert_eq!(out.clusters, 6);
            assert_eq!(
                essence(&out.report),
                essence(&seq),
                "shards={shards} diverged from sequential"
            );
        }
    }

    #[test]
    fn sharded_matches_sequential_with_sampling_and_prediction() {
        let base = 0x4000_0000u64;
        let size = 1u64 << 20;
        let events = multi_cluster_trace(4, 2000, base);
        let det = DetectorConfig::paper(); // sampling + prediction on
        let seq = sequential_report(&events, base, size, &det);
        let out = analyze_events(&events, base, size, None, &AnalyzeConfig::new(det, 4));
        assert_eq!(essence(&out.report), essence(&seq));
    }

    #[test]
    fn straddling_access_stays_in_one_shard() {
        // An access crossing a line boundary links the two lines even at
        // the minimum link distance of 1.
        let geom = predator_sim::CacheGeometry::new(64);
        let a = Access::write(ThreadId(0), 0x1000 - 4, 8); // straddles 2 lines
        let mut counts = BTreeMap::new();
        for line in geom.lines_touched(a.addr, a.size) {
            counts.insert(line, 1u64);
        }
        let plan = ShardPlan::build(&counts, 2, 1);
        let lines: Vec<u64> = counts.keys().copied().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(plan.shard_of(lines[0]), plan.shard_of(lines[1]));
    }
}
