//! `predator-trace`: the compact binary `.ptrace` access-trace format and
//! the sharded offline analysis engine.
//!
//! The live detector pays its overhead while the workload runs. This crate
//! splits that cost in two: **record** the raw access stream cheaply
//! (thread-local segment buffers, delta-compressed chunks — no detector
//! work at all), then **analyze** the trace offline, as many times and
//! with as many configurations as wanted, across N worker shards.
//!
//! * [`format`] — the `.ptrace` byte layout: magic + versioned header,
//!   CRC-framed chunks with varint delta-encoded records, a JSON metadata
//!   sidecar chunk, and a footer index for random access.
//! * [`segment`] — lock-free-on-the-hot-path thread-local event buffers.
//! * [`writer`] — streaming writers: [`TraceWriter`] (framing) and
//!   [`TraceSink`] (multi-threaded [`predator_sim::AccessSink`]).
//! * [`reader`] — corruption-tolerant streaming reader: bad chunks are
//!   skipped with counted, reported loss ([`LossStats`]), never a panic.
//! * [`jsonl`] — the legacy JSON-lines encoding, still accepted anywhere a
//!   trace file is.
//! * [`analyze`] — the sharded engine: cluster cache lines, run one
//!   detector per shard, merge into a [`predator_core::Report`] that is
//!   byte-identical to a sequential replay's.
//! * [`remap`] — injective, order-preserving address remaps: layout fixes
//!   (padding, alignment) expressed as pure functions on trace addresses.
//! * [`whatif`] — fix verification by replay: re-analyze the remapped
//!   trace at every portfolio geometry, cross-check against MESI, and
//!   annotate findings with measured before/after invalidation deltas.

pub mod analyze;
pub mod crc32;
pub mod format;
pub mod jsonl;
pub mod reader;
pub mod remap;
pub mod segment;
pub mod varint;
pub mod whatif;
pub mod writer;

pub use analyze::{
    analyze_events, analyze_file, sniff_format, AnalyzeConfig, AnalyzeOutcome, ShardPlan,
    TraceFormat,
};
pub use format::{Header, MetaFrame, MetaGlobal, MetaObject, TraceMeta, VERSION};
pub use jsonl::{load_jsonl, save_jsonl, JsonlIter};
pub use reader::{read_info, read_info_scan, LossStats, TraceError, TraceInfo, TraceReader};
pub use remap::AddressRemap;
pub use segment::{BatchSink, SegmentedSink, SEGMENT_CAPACITY};
pub use whatif::{verify_fixes, whatif_events, WhatIfFix, WhatIfOutcome};
pub use writer::{TraceSink, TraceWriter, WriteSummary};
