//! LEB128 variable-length integers and ZigZag signed mapping.
//!
//! The `.ptrace` event encoding stores addresses and thread ids as deltas
//! from the previous record; deltas are small and sign-alternating, so
//! ZigZag + LEB128 packs the common case into one or two bytes.

/// Maximum encoded length of a `u64` varint (⌈64/7⌉ bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `v` to `out` as an unsigned LEB128 varint.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` to `out` ZigZag-mapped then LEB128-encoded.
#[inline]
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Maps a signed value to an unsigned one with small absolute values staying
/// small: 0, -1, 1, -2, 2 … → 0, 1, 2, 3, 4 …
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Reads an unsigned LEB128 varint from `buf[*pos..]`, advancing `pos`.
/// Returns `None` on truncation or a varint longer than [`MAX_VARINT_LEN`].
#[inline]
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None; // over-long encoding
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Reads a ZigZag-ed signed varint.
#[inline]
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    read_u64(buf, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        assert!(buf.len() <= MAX_VARINT_LEN);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len());
    }

    fn roundtrip_i(v: i64) {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        let mut pos = 0;
        assert_eq!(read_i64(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn unsigned_roundtrips() {
        for v in [
            0,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            roundtrip_u(v);
        }
    }

    #[test]
    fn signed_roundtrips() {
        for v in [
            0,
            1,
            -1,
            63,
            -64,
            64,
            -65,
            i32::MAX as i64,
            i64::MIN,
            i64::MAX,
        ] {
            roundtrip_i(v);
        }
    }

    #[test]
    fn zigzag_keeps_small_values_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in -1000..1000 {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn one_byte_for_small_deltas() {
        let mut buf = Vec::new();
        write_i64(&mut buf, 8); // the typical next-word address delta
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_is_none_not_panic() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_u64(&buf[..cut], &mut pos), None);
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        let buf = [0x80u8; 11]; // 11 continuation bytes: > 64 bits of shift
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }
}
