//! The `.ptrace` on-disk format: header, framed chunks, event record codec,
//! and the JSON metadata sidecar carried inside a META chunk.
//!
//! ## Layout
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header   "PTRACE" + version u16 + header_len u32 + payload   │
//! │          payload (v1): base u64, size u64                    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ chunk*   "CHNK" kind u8 flags u8 records u32 len u32 crc u32 │
//! │          followed by `len` payload bytes (CRC-32 of payload) │
//! ├──────────────────────────────────────────────────────────────┤
//! │ trailer  index_offset u64, total_records u64, "PTRCEND1"     │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! All fixed-width integers are little-endian. The header's `header_len`
//! counts the payload bytes after itself, so old readers can skip fields a
//! newer writer appends. Chunk kinds: [`CHUNK_EVENTS`] (delta-coded access
//! records), [`CHUNK_META`] (one JSON [`TraceMeta`]), [`CHUNK_INDEX`]
//! (chunk directory for random access). Unknown kinds are skipped by
//! readers. The trailer is optional — a truncated file simply loses it and
//! readers fall back to a sequential scan.
//!
//! ## Event records
//!
//! Each record is a flags byte followed by two varints:
//!
//! * flags bit 0 — access kind (1 = write);
//! * flags bits 1–3 — size class (1, 2, 4, 8, 16, 32, 64 bytes; class 7
//!   escapes to an explicit varint size);
//! * ZigZag varint: `addr − prev_addr`;
//! * ZigZag varint: `tid − prev_tid`.
//!
//! The `(prev_addr, prev_tid)` pair resets to `(0, 0)` at every chunk
//! boundary, so one corrupt chunk never poisons the decode of its
//! neighbours. Typical stride-loop records cost 3–4 bytes against ~50 for
//! the JSONL encoding.

use predator_alloc::{Callsite, Frame, TrackedHeap};
use predator_core::{ObjectDirectory, Predator, RecordedObject};
use predator_sim::{Access, AccessKind, ThreadId};
use serde::{Deserialize, Serialize};

use crate::varint;

/// File magic, first 6 bytes of every `.ptrace` file.
pub const MAGIC: &[u8; 6] = b"PTRACE";
/// Current schema version.
pub const VERSION: u16 = 1;
/// Chunk frame magic, also the resync marker after corruption.
pub const CHUNK_MAGIC: &[u8; 4] = b"CHNK";
/// Trailing end-of-file magic.
pub const END_MAGIC: &[u8; 8] = b"PTRCEND1";

/// Chunk kind: delta-encoded access records.
pub const CHUNK_EVENTS: u8 = 1;
/// Chunk kind: JSON [`TraceMeta`] payload.
pub const CHUNK_META: u8 = 2;
/// Chunk kind: chunk directory (offsets/kinds/counts) for random access.
pub const CHUNK_INDEX: u8 = 3;

/// Bytes in a chunk frame header: magic + kind + flags + records + len + crc.
pub const CHUNK_FRAME_LEN: usize = 4 + 1 + 1 + 4 + 4 + 4;
/// Bytes in the file trailer: index offset + total records + end magic.
pub const TRAILER_LEN: usize = 8 + 8 + 8;
/// Sanity cap on a single chunk payload; larger lengths are treated as
/// corruption during resync rather than honoured as 4 GiB allocations.
pub const MAX_CHUNK_PAYLOAD: u32 = 16 << 20;

/// Parsed `.ptrace` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Schema version the file was written with.
    pub version: u16,
    /// Base simulated address of the traced space.
    pub base: u64,
    /// Size in bytes of the traced space.
    pub size: u64,
}

/// Serialised header length for version 1 (magic + version + header_len +
/// base + size).
pub const HEADER_V1_LEN: usize = 6 + 2 + 4 + 8 + 8;

impl Header {
    /// Encodes the header for writing.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_V1_LEN);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&16u32.to_le_bytes()); // payload bytes that follow
        out.extend_from_slice(&self.base.to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        out
    }
}

/// Parsed chunk frame (the fixed-width part preceding the payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkFrame {
    /// Chunk kind ([`CHUNK_EVENTS`], [`CHUNK_META`], [`CHUNK_INDEX`] …).
    pub kind: u8,
    /// Reserved; zero in version 1.
    pub flags: u8,
    /// Records in the payload (events for event chunks, entries for index).
    pub record_count: u32,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// CRC-32 of the payload.
    pub crc: u32,
}

impl ChunkFrame {
    /// Encodes the frame header (payload follows separately).
    pub fn encode(&self) -> [u8; CHUNK_FRAME_LEN] {
        let mut out = [0u8; CHUNK_FRAME_LEN];
        out[0..4].copy_from_slice(CHUNK_MAGIC);
        out[4] = self.kind;
        out[5] = self.flags;
        out[6..10].copy_from_slice(&self.record_count.to_le_bytes());
        out[10..14].copy_from_slice(&self.payload_len.to_le_bytes());
        out[14..18].copy_from_slice(&self.crc.to_le_bytes());
        out
    }

    /// Decodes a frame header from exactly [`CHUNK_FRAME_LEN`] bytes.
    /// Returns `None` if the magic is absent.
    pub fn decode(buf: &[u8; CHUNK_FRAME_LEN]) -> Option<ChunkFrame> {
        if &buf[0..4] != CHUNK_MAGIC {
            return None;
        }
        Some(ChunkFrame {
            kind: buf[4],
            flags: buf[5],
            record_count: u32::from_le_bytes(buf[6..10].try_into().unwrap()),
            payload_len: u32::from_le_bytes(buf[10..14].try_into().unwrap()),
            crc: u32::from_le_bytes(buf[14..18].try_into().unwrap()),
        })
    }
}

const SIZE_CLASSES: [u8; 7] = [1, 2, 4, 8, 16, 32, 64];
const SIZE_ESCAPE: u8 = 7;

/// Streaming event encoder for one chunk payload. Delta state starts at
/// zero and must not be reused across chunks.
#[derive(Debug, Default)]
pub struct EventEncoder {
    prev_addr: u64,
    prev_tid: i64,
    buf: Vec<u8>,
    count: u32,
}

impl EventEncoder {
    /// Fresh encoder with zeroed delta state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one access record.
    pub fn push(&mut self, a: Access) {
        let mut flags: u8 = match a.kind {
            AccessKind::Write => 1,
            AccessKind::Read => 0,
        };
        let class = SIZE_CLASSES.iter().position(|&s| s == a.size);
        match class {
            Some(c) => flags |= (c as u8) << 1,
            None => flags |= SIZE_ESCAPE << 1,
        }
        self.buf.push(flags);
        varint::write_i64(&mut self.buf, a.addr.wrapping_sub(self.prev_addr) as i64);
        varint::write_i64(&mut self.buf, a.tid.0 as i64 - self.prev_tid);
        if class.is_none() {
            varint::write_u64(&mut self.buf, a.size as u64);
        }
        self.prev_addr = a.addr;
        self.prev_tid = a.tid.0 as i64;
        self.count += 1;
    }

    /// Records encoded so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Encoded payload bytes so far.
    pub fn payload_len(&self) -> usize {
        self.buf.len()
    }

    /// Consumes the encoder, returning `(payload, record_count)`.
    pub fn finish(self) -> (Vec<u8>, u32) {
        (self.buf, self.count)
    }
}

/// Decodes an event-chunk payload into `out`. Returns the number of records
/// decoded, or `Err(decoded_so_far)` if the payload ends mid-record or uses
/// an over-long varint — callers count the remainder as lost.
pub fn decode_events(payload: &[u8], expected: u32, out: &mut Vec<Access>) -> Result<u32, u32> {
    let mut pos = 0usize;
    let mut prev_addr: u64 = 0;
    let mut prev_tid: i64 = 0;
    let mut decoded = 0u32;
    while decoded < expected {
        let start = out.len();
        let Some(&flags) = payload.get(pos) else {
            return Err(decoded);
        };
        pos += 1;
        let Some(daddr) = varint::read_i64(payload, &mut pos) else {
            return Err(decoded);
        };
        let Some(dtid) = varint::read_i64(payload, &mut pos) else {
            return Err(decoded);
        };
        let class = (flags >> 1) & 0x7;
        let size = if class == SIZE_ESCAPE {
            match varint::read_u64(payload, &mut pos) {
                Some(s) if s <= u8::MAX as u64 => s as u8,
                _ => return Err(decoded),
            }
        } else {
            SIZE_CLASSES[class as usize]
        };
        let addr = prev_addr.wrapping_add(daddr as u64);
        let tid = prev_tid + dtid;
        if !(0..=u16::MAX as i64).contains(&tid) {
            out.truncate(start);
            return Err(decoded);
        }
        out.push(Access {
            tid: ThreadId(tid as u16),
            addr,
            size,
            kind: if flags & 1 != 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        });
        prev_addr = addr;
        prev_tid = tid;
        decoded += 1;
    }
    Ok(decoded)
}

/// One entry of the footer index chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Byte offset of the chunk's frame header from the start of the file.
    pub offset: u64,
    /// Chunk kind.
    pub kind: u8,
    /// Records in the chunk.
    pub record_count: u32,
}

/// Encodes the index chunk payload: entry count, then per entry the offset
/// delta, kind, and record count, all varint-packed.
pub fn encode_index(entries: &[IndexEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 4 + 4);
    varint::write_u64(&mut out, entries.len() as u64);
    let mut prev = 0u64;
    for e in entries {
        varint::write_u64(&mut out, e.offset - prev);
        out.push(e.kind);
        varint::write_u64(&mut out, e.record_count as u64);
        prev = e.offset;
    }
    out
}

/// Decodes an index chunk payload; `None` on any malformation.
pub fn decode_index(payload: &[u8]) -> Option<Vec<IndexEntry>> {
    let mut pos = 0usize;
    let n = varint::read_u64(payload, &mut pos)?;
    if n > (1 << 32) {
        return None;
    }
    let mut entries = Vec::with_capacity(n as usize);
    let mut prev = 0u64;
    for _ in 0..n {
        let delta = varint::read_u64(payload, &mut pos)?;
        let kind = *payload.get(pos)?;
        pos += 1;
        let record_count = varint::read_u64(payload, &mut pos)?;
        let offset = prev + delta;
        entries.push(IndexEntry {
            offset,
            kind,
            record_count: u32::try_from(record_count).ok()?,
        });
        prev = offset;
    }
    (pos == payload.len()).then_some(entries)
}

/// A named global variable captured at record time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaGlobal {
    /// Source-level name.
    pub name: String,
    /// First simulated address.
    pub start: u64,
    /// Size in bytes.
    pub size: u64,
}

/// One stack frame of an allocation callsite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaFrame {
    /// Source file.
    pub file: String,
    /// Line number.
    pub line: u32,
}

/// A live heap object captured at record time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaObject {
    /// First simulated address.
    pub start: u64,
    /// Requested size in bytes.
    pub size: u64,
    /// Allocating thread.
    pub owner: u16,
    /// Allocation callsite frames, innermost first.
    pub frames: Vec<MetaFrame>,
}

/// Attribution metadata embedded in a META chunk so offline analysis can
/// name the same globals and heap objects a live run would.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Registered globals at the end of recording.
    pub globals: Vec<MetaGlobal>,
    /// Heap objects still live at the end of recording.
    pub objects: Vec<MetaObject>,
    /// `TrackedHeap::live_bytes()` at the end of recording, for the
    /// metadata-overhead ratio in [`predator_core::RunStats`].
    pub app_live_bytes: u64,
}

impl TraceMeta {
    /// Captures attribution state from a runtime and its heap — call after
    /// the workload finishes, before the trace is sealed.
    pub fn capture(rt: &Predator, heap: &TrackedHeap) -> TraceMeta {
        let globals = rt
            .globals_snapshot()
            .into_iter()
            .map(|g| MetaGlobal {
                name: g.name,
                start: g.start,
                size: g.size,
            })
            .collect();
        let mut objects: Vec<MetaObject> = heap
            .live_objects()
            .into_iter()
            .map(|o| {
                let frames = heap
                    .resolve_callsite(o.callsite)
                    .unwrap_or_else(Callsite::unknown)
                    .frames
                    .into_iter()
                    .map(|f| MetaFrame {
                        file: f.file,
                        line: f.line,
                    })
                    .collect();
                MetaObject {
                    start: o.start,
                    size: o.size,
                    owner: o.owner.0,
                    frames,
                }
            })
            .collect();
        objects.sort_by_key(|o| o.start);
        TraceMeta {
            globals,
            objects,
            app_live_bytes: heap.live_bytes(),
        }
    }

    /// Rebuilds the heap-object directory used by
    /// [`predator_core::Attribution::Directory`].
    pub fn directory(&self) -> ObjectDirectory {
        let mut dir = ObjectDirectory::new();
        for o in &self.objects {
            dir.insert(RecordedObject {
                start: o.start,
                size: o.size,
                owner: ThreadId(o.owner),
                callsite: Callsite::from_frames(
                    o.frames
                        .iter()
                        .map(|f| Frame::new(f.file.clone(), f.line))
                        .collect(),
                ),
            });
        }
        dir.set_live_bytes(self.app_live_bytes);
        dir
    }

    /// Re-registers the recorded globals on `rt` so report attribution can
    /// name them.
    pub fn apply_globals(&self, rt: &Predator) {
        for g in &self.globals {
            rt.register_global(g.name.clone(), g.start, g.size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            version: VERSION,
            base: 0x4000_0000,
            size: 64 << 20,
        };
        let enc = h.encode();
        assert_eq!(enc.len(), HEADER_V1_LEN);
        assert_eq!(&enc[0..6], MAGIC);
        assert_eq!(u16::from_le_bytes(enc[6..8].try_into().unwrap()), VERSION);
    }

    #[test]
    fn chunk_frame_roundtrip() {
        let f = ChunkFrame {
            kind: CHUNK_EVENTS,
            flags: 0,
            record_count: 77,
            payload_len: 123,
            crc: 0xdead_beef,
        };
        assert_eq!(ChunkFrame::decode(&f.encode()), Some(f));
        let mut bad = f.encode();
        bad[0] = b'X';
        assert_eq!(ChunkFrame::decode(&bad), None);
    }

    #[test]
    fn event_codec_roundtrip() {
        let events = vec![
            Access::write(ThreadId(0), 0x4000_0000, 8),
            Access::write(ThreadId(1), 0x4000_0008, 8),
            Access::read(ThreadId(1), 0x4000_0008, 4),
            Access::read(ThreadId(0), 0x3fff_ffff, 1), // negative delta
            Access::write(ThreadId(3), 0x4000_1000, 13), // escaped size
            Access::write(ThreadId(3), 0x4000_1000, 64),
        ];
        let mut enc = EventEncoder::new();
        for &a in &events {
            enc.push(a);
        }
        let (payload, count) = enc.finish();
        assert_eq!(count, events.len() as u32);
        let mut out = Vec::new();
        assert_eq!(decode_events(&payload, count, &mut out), Ok(count));
        assert_eq!(out, events);
    }

    #[test]
    fn event_codec_is_compact_for_stride_loops() {
        let mut enc = EventEncoder::new();
        for i in 0..1000u64 {
            enc.push(Access::write(
                ThreadId((i % 4) as u16),
                0x4000_0000 + (i % 4) * 24,
                8,
            ));
        }
        let (payload, _) = enc.finish();
        let per_record = payload.len() as f64 / 1000.0;
        assert!(per_record < 5.0, "got {per_record} bytes/record");
    }

    #[test]
    fn truncated_payload_reports_partial_decode() {
        let mut enc = EventEncoder::new();
        for i in 0..10u64 {
            enc.push(Access::write(ThreadId(0), 0x1000 + i * 8, 8));
        }
        let (payload, count) = enc.finish();
        let mut out = Vec::new();
        let r = decode_events(&payload[..payload.len() - 3], count, &mut out);
        assert!(
            matches!(r, Err(n) if n < count),
            "truncation must surface as Err: {r:?}"
        );
        assert_eq!(out.len(), r.unwrap_err() as usize);
    }

    #[test]
    fn index_roundtrip() {
        let entries = vec![
            IndexEntry {
                offset: 28,
                kind: CHUNK_EVENTS,
                record_count: 4096,
            },
            IndexEntry {
                offset: 1520,
                kind: CHUNK_EVENTS,
                record_count: 4096,
            },
            IndexEntry {
                offset: 3200,
                kind: CHUNK_META,
                record_count: 1,
            },
        ];
        assert_eq!(decode_index(&encode_index(&entries)), Some(entries));
        assert_eq!(decode_index(&[0]), Some(vec![]));
        assert_eq!(decode_index(&[]), None);
    }

    #[test]
    fn meta_json_roundtrip() {
        let meta = TraceMeta {
            globals: vec![MetaGlobal {
                name: "work_queue".into(),
                start: 0x1000,
                size: 256,
            }],
            objects: vec![MetaObject {
                start: 0x4000_0000,
                size: 4096,
                owner: 0,
                frames: vec![MetaFrame {
                    file: "histogram-pthread.c".into(),
                    line: 213,
                }],
            }],
            app_live_bytes: 4352,
        };
        let json = serde_json::to_string(&meta).unwrap();
        let back: TraceMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, meta);
    }
}
