//! What-if layout replay: verified fix suggestions over a geometry
//! portfolio.
//!
//! The paper predicts false sharing for doubled line sizes and shifted
//! start addresses (§3). The `.ptrace` format enables the generalisation:
//! take the recorded trace, apply a proposed layout fix as a pure address
//! remap ([`crate::remap::AddressRemap`] — injective, order-preserving),
//! stream the remapped trace back through the sharded offline analyzer,
//! and report the *measured* invalidation delta instead of untested
//! advice. Every delta is computed at all four portfolio line sizes
//! ([`CacheGeometry::PORTFOLIO_LINE_SIZES`]) and cross-checked against the
//! MESI ground-truth simulator, so a "this padding removes 97% of
//! invalidations" claim is backed by replay numbers at every geometry.

use std::collections::HashMap;
use std::fmt::Write as _;

use predator_core::{
    lower_fix, suggest_fixes, CacheGeometry, GeometryDelta, LayoutEdit, Report, VerifiedFix,
};
use predator_sim::mesi::MesiSim;
use predator_sim::Access;

use crate::analyze::{analyze_events, AnalyzeConfig};
use crate::format::TraceMeta;
use crate::remap::AddressRemap;

/// What the replay applies to the recorded layout.
#[derive(Debug, Clone)]
pub enum WhatIfFix {
    /// Verify each finding's own first [`predator_core::FixSuggestion`]
    /// (lowered per finding via [`predator_core::lower_fix`]).
    Suggested,
    /// Apply one user-supplied edit list to the whole trace and measure its
    /// effect on every finding.
    Edits(Vec<LayoutEdit>),
}

/// Result of a what-if replay: the baseline report with per-finding
/// [`VerifiedFix`] annotations filled in.
#[derive(Debug)]
pub struct WhatIfOutcome {
    /// Baseline report (analysis geometry), findings annotated.
    pub report: Report,
    /// Events replayed.
    pub events: u64,
    /// Findings that received a verification.
    pub verified: usize,
}

impl WhatIfOutcome {
    /// Headline improvement: the best finding's worst-geometry percentage
    /// removed, over findings that had anything to remove. `None` when
    /// nothing was verifiable.
    pub fn best_pct(&self) -> Option<u64> {
        self.report
            .findings
            .iter()
            .filter_map(|f| f.verified.as_ref())
            .filter(|v| v.deltas.iter().any(|d| d.before > 0))
            .map(VerifiedFix::min_pct_removed)
            .max()
    }

    /// Deterministic text rendering (the `predator whatif` default and the
    /// golden-fixture format).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "WHAT-IF REPLAY: {} events; {}/{} findings verified; portfolio {:?}",
            self.events,
            self.verified,
            self.report.findings.len(),
            CacheGeometry::PORTFOLIO_LINE_SIZES
        );
        for (i, f) in self.report.findings.iter().enumerate() {
            let Some(v) = &f.verified else { continue };
            let _ = writeln!(
                out,
                "finding {i} ({} / {}): object {:#x} size {}",
                f.class,
                f.kind.family(),
                f.object.start,
                f.object.size
            );
            let _ = write!(out, "{v}");
        }
        match self.best_pct() {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "best fix removes {p}% of invalidations (worst geometry)"
                );
            }
            None => {
                let _ = writeln!(out, "nothing to verify (no invalidations to remove)");
            }
        }
        out
    }
}

/// Replays `events` under `fix` and returns the annotated baseline report.
pub fn whatif_events(
    events: &[Access],
    base: u64,
    size: u64,
    meta: Option<&TraceMeta>,
    cfg: &AnalyzeConfig,
    fix: &WhatIfFix,
) -> WhatIfOutcome {
    let outcome = analyze_events(events, base, size, meta, cfg);
    let mut report = outcome.report;
    let verified = annotate_fixes(events, base, size, meta, &mut report, cfg, fix);
    WhatIfOutcome {
        report,
        events: outcome.events,
        verified,
    }
}

/// The `analyze --verify-fixes` entry point: annotates every finding of an
/// already-built report with its suggested fix's replay numbers. Returns
/// the number of findings annotated.
pub fn verify_fixes(
    events: &[Access],
    base: u64,
    size: u64,
    meta: Option<&TraceMeta>,
    report: &mut Report,
    cfg: &AnalyzeConfig,
) -> usize {
    annotate_fixes(events, base, size, meta, report, cfg, &WhatIfFix::Suggested)
}

/// Baseline analyses + MESI ground truth at one portfolio geometry.
struct GeometryBaseline {
    geom: CacheGeometry,
    report: Report,
    mesi: MesiSim,
}

fn cores_for(events: &[Access]) -> usize {
    events.iter().map(|a| a.tid.index() + 1).max().unwrap_or(1)
}

fn run_mesi(events: &[Access], n_cores: usize, geom: CacheGeometry) -> MesiSim {
    let mut sim = MesiSim::new(n_cores, geom);
    for a in events {
        sim.access(a.tid, a.addr, a.size, a.kind);
    }
    sim
}

/// Detector invalidations attributed to any finding whose object overlaps
/// `[start, end)`.
fn range_invalidations(report: &Report, start: u64, end: u64) -> u64 {
    report
        .findings
        .iter()
        .filter(|f| f.object.start < end && f.object.end > start)
        .map(|f| f.invalidations)
        .sum()
}

/// MESI invalidation events on the lines covering `[start, end)`.
fn mesi_range_invalidations(sim: &MesiSim, geom: CacheGeometry, start: u64, end: u64) -> u64 {
    if end <= start {
        return 0;
    }
    (geom.line_index(start)..=geom.line_index(end - 1))
        .map(|l| sim.line_invalidations(l))
        .sum()
}

fn annotate_fixes(
    events: &[Access],
    base: u64,
    size: u64,
    meta: Option<&TraceMeta>,
    report: &mut Report,
    cfg: &AnalyzeConfig,
    fix: &WhatIfFix,
) -> usize {
    // Decide which finding gets which fix before touching anything.
    let targets: Vec<(usize, String, Vec<LayoutEdit>)> = match fix {
        WhatIfFix::Suggested => {
            let mut seen = std::collections::HashSet::new();
            suggest_fixes(report, cfg.det.geometry)
                .into_iter()
                .filter(|(i, _)| seen.insert(*i)) // first suggestion per finding
                .map(|(i, s)| {
                    let edits = lower_fix(&report.findings[i], &s);
                    (i, s.to_string(), edits)
                })
                .collect()
        }
        WhatIfFix::Edits(edits) => {
            let desc = if edits.is_empty() {
                "no-op layout edit".to_string()
            } else {
                let parts: Vec<String> = edits
                    .iter()
                    .map(|e| format!("+{}B@{:#x}", e.pad, e.at))
                    .collect();
                format!("user layout edit: {}", parts.join(", "))
            };
            (0..report.findings.len())
                .map(|i| (i, desc.clone(), edits.clone()))
                .collect()
        }
    };
    if targets.is_empty() {
        return 0;
    }

    let n_cores = cores_for(events);
    let baselines: Vec<GeometryBaseline> = CacheGeometry::portfolio()
        .into_iter()
        .map(|geom| {
            let mut det = cfg.det;
            det.geometry = geom;
            let gcfg = AnalyzeConfig { det, ..cfg.clone() };
            GeometryBaseline {
                geom,
                report: analyze_events(events, base, size, meta, &gcfg).report,
                mesi: run_mesi(events, n_cores, geom),
            }
        })
        .collect();

    // One replay per distinct edit list, shared across findings.
    let mut replays: HashMap<Vec<(u64, u64)>, Vec<GeometryBaseline>> = HashMap::new();

    let mut annotated = 0usize;
    for (idx, desc, edits) in targets {
        let remap = AddressRemap::from_edits(&edits);
        let (obj_start, obj_end) = {
            let f = &report.findings[idx];
            (f.object.start, f.object.end)
        };
        let deltas: Vec<GeometryDelta> = if remap.is_identity() {
            // A no-op replay is the baseline replayed against itself.
            baselines
                .iter()
                .map(|b| {
                    let before = range_invalidations(&b.report, obj_start, obj_end);
                    let mesi_before = mesi_range_invalidations(&b.mesi, b.geom, obj_start, obj_end);
                    GeometryDelta {
                        line_size: b.geom.line_size(),
                        before,
                        after: before,
                        mesi_before,
                        mesi_after: mesi_before,
                    }
                })
                .collect()
        } else {
            let key: Vec<(u64, u64)> = {
                let mut k: Vec<(u64, u64)> = edits.iter().map(|e| (e.at, e.pad)).collect();
                k.sort_unstable();
                k
            };
            let afters = replays.entry(key).or_insert_with(|| {
                let mapped = remap.apply_events(events);
                let mapped_meta = meta.map(|m| remap.apply_meta(m));
                let new_size = size.saturating_add(remap.total_pad());
                CacheGeometry::portfolio()
                    .into_iter()
                    .map(|geom| {
                        let mut det = cfg.det;
                        det.geometry = geom;
                        let gcfg = AnalyzeConfig { det, ..cfg.clone() };
                        GeometryBaseline {
                            geom,
                            report: analyze_events(
                                &mapped,
                                base,
                                new_size,
                                mapped_meta.as_ref(),
                                &gcfg,
                            )
                            .report,
                            mesi: run_mesi(&mapped, n_cores, geom),
                        }
                    })
                    .collect()
            });
            let new_start = remap.apply(obj_start);
            let new_end = if obj_end > obj_start {
                remap.apply(obj_end - 1) + 1
            } else {
                new_start
            };
            baselines
                .iter()
                .zip(afters.iter())
                .map(|(b, a)| GeometryDelta {
                    line_size: b.geom.line_size(),
                    before: range_invalidations(&b.report, obj_start, obj_end),
                    after: range_invalidations(&a.report, new_start, new_end),
                    mesi_before: mesi_range_invalidations(&b.mesi, b.geom, obj_start, obj_end),
                    mesi_after: mesi_range_invalidations(&a.mesi, a.geom, new_start, new_end),
                })
                .collect()
        };
        let verdict = VerifiedFix::classify(&deltas);
        report.findings[idx].verified = Some(VerifiedFix {
            fix: desc,
            pad_bytes: remap.total_pad(),
            deltas,
            verdict,
        });
        annotated += 1;
    }
    annotated
}

#[cfg(test)]
mod tests {
    use super::*;
    use predator_core::{DetectorConfig, FixVerdict};
    use predator_sim::ThreadId;

    const BASE: u64 = 0x4000_0000;
    const SIZE: u64 = 1 << 20;

    fn cfg() -> AnalyzeConfig {
        AnalyzeConfig::new(DetectorConfig::sensitive(), 2)
    }

    /// Two threads ping-pong adjacent words: classic false sharing.
    fn false_sharing_trace(n: u64) -> Vec<Access> {
        (0..n)
            .map(|i| Access::write(ThreadId((i % 2) as u16), BASE + (i % 2) * 8, 8))
            .collect()
    }

    /// Two threads hammer the same word: true sharing, padding can't help.
    fn true_sharing_trace(n: u64) -> Vec<Access> {
        (0..n)
            .map(|i| Access::write(ThreadId((i % 2) as u16), BASE, 8))
            .collect()
    }

    #[test]
    fn suggested_padding_fix_removes_over_90_pct_at_every_geometry() {
        let events = false_sharing_trace(800);
        let out = whatif_events(&events, BASE, SIZE, None, &cfg(), &WhatIfFix::Suggested);
        assert!(out.verified >= 1, "{}", out.to_text());
        let v = out.report.findings[0].verified.as_ref().unwrap();
        assert_eq!(v.verdict, FixVerdict::Fixes, "{}", out.to_text());
        assert_eq!(v.deltas.len(), 4);
        for d in &v.deltas {
            assert!(d.before > 0, "{d:?}");
            assert_eq!(d.after, 0, "exact min_separation must zero {d:?}");
            assert!(d.mesi_before > 0, "{d:?}");
            // MESI keeps the two cold installs but no sharing traffic:
            // padding must eliminate (almost) all ground-truth events too.
            assert!(
                d.mesi_after * 100 <= d.mesi_before * 10,
                "MESI cross-check failed at {}B: {} -> {}",
                d.line_size,
                d.mesi_before,
                d.mesi_after
            );
            assert!(d.pct_removed() >= 90, "{d:?}");
        }
        assert!(out.best_pct().unwrap() >= 90);
    }

    #[test]
    fn true_sharing_fix_is_ineffective() {
        let events = true_sharing_trace(800);
        let out = whatif_events(&events, BASE, SIZE, None, &cfg(), &WhatIfFix::Suggested);
        assert!(out.verified >= 1);
        let v = out.report.findings[0].verified.as_ref().unwrap();
        assert_eq!(v.verdict, FixVerdict::Ineffective, "{}", out.to_text());
        assert_eq!(v.pad_bytes, 0, "true-sharing advice lowers to no edits");
        for d in &v.deltas {
            assert_eq!(d.before, d.after, "{d:?}");
        }
        assert_eq!(out.best_pct(), Some(0));
    }

    #[test]
    fn exactly_min_separation_yields_zero_predicted_false_sharing_everywhere() {
        // The satellite check for fixes.rs::min_separation: padding by
        // exactly that amount must leave zero false-sharing findings at
        // every portfolio geometry — including predicted (doubled /
        // scaled / remap) ones.
        let events = false_sharing_trace(800);
        let sep = CacheGeometry::portfolio_separation();
        let edits = vec![LayoutEdit {
            at: BASE + 8,
            pad: sep,
        }];
        let remap = AddressRemap::from_edits(&edits);
        let mapped = remap.apply_events(&events);
        for geom in CacheGeometry::portfolio() {
            let mut det = DetectorConfig::sensitive();
            det.geometry = geom;
            let out = analyze_events(&mapped, BASE, SIZE + sep, None, &AnalyzeConfig::new(det, 2));
            assert!(
                !out.report.has_false_sharing(),
                "predicted false sharing survives at {}B lines:\n{}",
                geom.line_size(),
                out.report
            );
        }
    }

    #[test]
    fn user_edit_annotates_every_finding() {
        let events = false_sharing_trace(600);
        let edits = vec![LayoutEdit {
            at: BASE + 8,
            pad: 512,
        }];
        let out = whatif_events(&events, BASE, SIZE, None, &cfg(), &WhatIfFix::Edits(edits));
        assert_eq!(out.verified, out.report.findings.len());
        let v = out.report.findings[0].verified.as_ref().unwrap();
        assert_eq!(v.pad_bytes, 512);
        assert!(v.fix.contains("user layout edit"), "{}", v.fix);
        assert_eq!(v.verdict, FixVerdict::Fixes);
    }

    #[test]
    fn noop_edit_reports_zero_delta() {
        let events = false_sharing_trace(600);
        let out = whatif_events(
            &events,
            BASE,
            SIZE,
            None,
            &cfg(),
            &WhatIfFix::Edits(Vec::new()),
        );
        assert!(out.verified >= 1);
        let v = out.report.findings[0].verified.as_ref().unwrap();
        assert_eq!(v.verdict, FixVerdict::Ineffective);
        assert_eq!(v.pad_bytes, 0);
        for d in &v.deltas {
            assert_eq!(d.before, d.after);
            assert_eq!(d.mesi_before, d.mesi_after);
        }
        assert!(v.fix.contains("no-op"), "{}", v.fix);
    }

    #[test]
    fn text_rendering_is_stable_and_informative() {
        let events = false_sharing_trace(600);
        let out = whatif_events(&events, BASE, SIZE, None, &cfg(), &WhatIfFix::Suggested);
        let text = out.to_text();
        assert!(text.contains("WHAT-IF REPLAY"), "{text}");
        assert!(text.contains("portfolio [32, 64, 128, 256]"), "{text}");
        assert!(text.contains("Verified fix (fixes"), "{text}");
        assert!(text.contains("% removed"), "{text}");
        // Rendering twice gives identical bytes.
        assert_eq!(text, out.to_text());
    }
}
