//! Corruption-tolerant streaming `.ptrace` reader.
//!
//! The reader never trusts the file: every chunk payload is CRC-checked,
//! every length is bounds-checked, and any damage — a flipped byte, a
//! truncated tail, garbage spliced into the middle — is handled by skipping
//! to the next `"CHNK"` resync marker and *counting* what was lost
//! ([`LossStats`]). Corruption therefore costs data, never a panic and
//! never silent mis-decoding (the per-chunk delta reset means a bad chunk
//! cannot skew its neighbours' addresses).
//!
//! Memory stays bounded: the reader holds one refill window (64 KiB reads)
//! plus one decoded chunk of events, regardless of file size.

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;

use predator_sim::Access;
use serde::{Deserialize, Serialize};

use crate::crc32::crc32;
use crate::format::{
    decode_events, decode_index, ChunkFrame, Header, TraceMeta, CHUNK_EVENTS, CHUNK_FRAME_LEN,
    CHUNK_INDEX, CHUNK_META, END_MAGIC, HEADER_V1_LEN, MAGIC, MAX_CHUNK_PAYLOAD, TRAILER_LEN,
    VERSION,
};

/// Why a trace could not be opened (distinct from recoverable mid-stream
/// corruption, which is counted in [`LossStats`] instead).
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `.ptrace` magic.
    NotPtrace,
    /// The file's schema version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The header is malformed beyond recovery.
    Corrupt(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::NotPtrace => write!(f, "not a .ptrace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .ptrace schema version {v} (this build reads {VERSION})"
                )
            }
            TraceError::Corrupt(m) => write!(f, "corrupt .ptrace header: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Damage accounting for one read pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossStats {
    /// Chunks dropped or partially dropped (CRC mismatch, frame damage,
    /// decode failure, truncation mid-chunk).
    pub chunks_skipped: u64,
    /// Event records known lost (from the damaged chunks' record counts).
    pub records_lost: u64,
    /// Raw bytes skipped while hunting for the next resync marker.
    pub bytes_skipped: u64,
    /// The stream ended without a valid trailer (truncated or unsealed).
    pub truncated: bool,
}

impl LossStats {
    /// True if anything at all was lost.
    pub fn any(&self) -> bool {
        self.chunks_skipped > 0 || self.records_lost > 0 || self.bytes_skipped > 0 || self.truncated
    }
}

/// Reads the fixed header. Consumes exactly the header bytes on success.
pub fn read_header<R: Read>(r: &mut R) -> Result<Header, TraceError> {
    let mut fixed = [0u8; 12];
    r.read_exact(&mut fixed).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::NotPtrace
        } else {
            TraceError::Io(e)
        }
    })?;
    if &fixed[0..6] != MAGIC {
        return Err(TraceError::NotPtrace);
    }
    let version = u16::from_le_bytes(fixed[6..8].try_into().unwrap());
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let hlen = u32::from_le_bytes(fixed[8..12].try_into().unwrap()) as usize;
    if !(16..=4096).contains(&hlen) {
        return Err(TraceError::Corrupt(format!("header payload length {hlen}")));
    }
    let mut payload = vec![0u8; hlen];
    r.read_exact(&mut payload)
        .map_err(|_| TraceError::Corrupt("header truncated".into()))?;
    Ok(Header {
        version,
        base: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
        size: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
    })
}

const READ_CHUNK: usize = 64 << 10;
/// Bytes kept when sliding the resync window: enough for a `"CHNK"` magic
/// straddling the refill boundary and for the whole trailer at EOF.
const RESYNC_KEEP: usize = TRAILER_LEN + 3;

/// Streaming event reader. Iterate it for [`Access`] records; inspect
/// [`stats`](TraceReader::stats) afterwards for loss, and
/// [`meta`](TraceReader::meta) for the attribution sidecar (the META chunk
/// is written at the end of the file, so it is only available once the
/// stream is drained).
pub struct TraceReader<R: Read> {
    r: R,
    header: Header,
    buf: Vec<u8>,
    start: usize,
    eof: bool,
    ended: bool,
    saw_trailer: bool,
    io_error: Option<io::Error>,
    queue: Vec<Access>,
    qpos: usize,
    meta: Option<TraceMeta>,
    loss: LossStats,
    events_read: u64,
    event_chunks: u64,
    chunks_seen: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating magic and version. Header damage is a hard
    /// error; everything after the header is recoverable.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let header = read_header(&mut r)?;
        Ok(TraceReader {
            r,
            header,
            buf: Vec::new(),
            start: 0,
            eof: false,
            ended: false,
            saw_trailer: false,
            io_error: None,
            queue: Vec::new(),
            qpos: 0,
            meta: None,
            loss: LossStats::default(),
            events_read: 0,
            event_chunks: 0,
            chunks_seen: 0,
        })
    }

    /// Recycles this reader's internal allocations (refill window + decoded
    /// event queue) into a fresh reader over a new stream. Streaming many
    /// files — corpus ingest, two-pass analysis — this avoids re-growing the
    /// 64 KiB window and the per-chunk queue for every file.
    pub fn reuse<R2: Read>(self, mut r: R2) -> Result<TraceReader<R2>, TraceError> {
        let header = read_header(&mut r)?;
        let mut buf = self.buf;
        buf.clear();
        let mut queue = self.queue;
        queue.clear();
        Ok(TraceReader {
            r,
            header,
            buf,
            start: 0,
            eof: false,
            ended: false,
            saw_trailer: false,
            io_error: None,
            queue,
            qpos: 0,
            meta: None,
            loss: LossStats::default(),
            events_read: 0,
            event_chunks: 0,
            chunks_seen: 0,
        })
    }

    /// The file header.
    pub fn header(&self) -> Header {
        self.header
    }

    /// Base simulated address of the traced space.
    pub fn base(&self) -> u64 {
        self.header.base
    }

    /// Size in bytes of the traced space.
    pub fn size(&self) -> u64 {
        self.header.size
    }

    /// Loss accounting so far (final once the iterator is drained).
    pub fn stats(&self) -> LossStats {
        let mut loss = self.loss;
        if self.ended && !self.saw_trailer {
            loss.truncated = true;
        }
        loss
    }

    /// Attribution sidecar, available once the META chunk has been passed
    /// (it sits at the end of the file — drain the iterator first).
    pub fn meta(&self) -> Option<&TraceMeta> {
        self.meta.as_ref()
    }

    /// Takes ownership of the sidecar.
    pub fn take_meta(&mut self) -> Option<TraceMeta> {
        self.meta.take()
    }

    /// Event records yielded so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Valid event chunks decoded so far.
    pub fn event_chunks(&self) -> u64 {
        self.event_chunks
    }

    /// Valid chunks of any kind seen so far.
    pub fn chunks_seen(&self) -> u64 {
        self.chunks_seen
    }

    /// The stream ended with a valid trailer.
    pub fn saw_trailer(&self) -> bool {
        self.saw_trailer
    }

    /// I/O error that ended the stream early, if any (reported as
    /// truncation in [`stats`](TraceReader::stats) as well).
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }

    fn avail(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Grows the window until at least `want` bytes are available or EOF.
    fn ensure(&mut self, want: usize) -> usize {
        if self.start > 0 && (self.avail() == 0 || self.start >= READ_CHUNK) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        while !self.eof && self.avail() < want {
            let old = self.buf.len();
            self.buf.resize(old + READ_CHUNK, 0);
            match self.r.read(&mut self.buf[old..]) {
                Ok(0) => {
                    self.buf.truncate(old);
                    self.eof = true;
                }
                Ok(n) => self.buf.truncate(old + n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => self.buf.truncate(old),
                Err(e) => {
                    self.buf.truncate(old);
                    self.io_error = Some(e);
                    self.eof = true;
                }
            }
        }
        self.avail()
    }

    /// Consumes the trailer if the window is exactly it; returns true.
    fn try_trailer(&mut self) -> bool {
        let avail = self.ensure(TRAILER_LEN + 1);
        if avail == TRAILER_LEN && self.buf[self.start + 16..self.start + TRAILER_LEN] == *END_MAGIC
        {
            self.start += TRAILER_LEN;
            self.saw_trailer = true;
            return true;
        }
        false
    }

    /// Skips at least one byte, then scans forward for the next `"CHNK"`
    /// marker (or a clean trailer). Returns true if positioned on a marker.
    fn resync(&mut self) -> bool {
        self.start += 1;
        self.loss.bytes_skipped += 1;
        loop {
            let avail = self.ensure(RESYNC_KEEP + READ_CHUNK);
            let window = &self.buf[self.start..];
            if let Some(pos) = window
                .windows(4)
                .position(|w| w == crate::format::CHUNK_MAGIC)
            {
                self.loss.bytes_skipped += pos as u64;
                self.start += pos;
                return true;
            }
            if self.eof {
                // Tail without a marker: a clean trailer ends the hunt
                // gracefully, anything else is counted and dropped.
                if avail >= TRAILER_LEN && window[avail - 8..] == *END_MAGIC {
                    self.loss.bytes_skipped += (avail - TRAILER_LEN) as u64;
                    self.saw_trailer = true;
                } else {
                    self.loss.bytes_skipped += avail as u64;
                }
                self.start = self.buf.len();
                self.ended = true;
                return false;
            }
            let keep = RESYNC_KEEP.min(window.len());
            let skip = window.len() - keep;
            self.loss.bytes_skipped += skip as u64;
            self.start += skip;
        }
    }

    /// Reads chunks until events are queued or the stream ends. Returns
    /// true if the queue is non-empty.
    fn advance(&mut self) -> bool {
        loop {
            if self.ended {
                return false;
            }
            let avail = self.ensure(CHUNK_FRAME_LEN);
            if avail == 0 {
                self.ended = true;
                return false;
            }
            if avail < CHUNK_FRAME_LEN {
                // Tail shorter than any frame (the trailer is longer, so
                // this cannot be one): truncation.
                self.loss.bytes_skipped += avail as u64;
                self.loss.chunks_skipped += 1;
                self.start += avail;
                self.ended = true;
                return false;
            }
            let frame_bytes: [u8; CHUNK_FRAME_LEN] = self.buf
                [self.start..self.start + CHUNK_FRAME_LEN]
                .try_into()
                .unwrap();
            let Some(frame) = ChunkFrame::decode(&frame_bytes) else {
                if self.try_trailer() {
                    self.ended = true;
                    return false;
                }
                self.loss.chunks_skipped += 1;
                if !self.resync() {
                    return false;
                }
                continue;
            };
            if frame.payload_len > MAX_CHUNK_PAYLOAD {
                self.loss.chunks_skipped += 1;
                if !self.resync() {
                    return false;
                }
                continue;
            }
            let need = CHUNK_FRAME_LEN + frame.payload_len as usize;
            let avail = self.ensure(need);
            if avail < need {
                // Truncated mid-chunk.
                if frame.kind == CHUNK_EVENTS {
                    self.loss.records_lost += frame.record_count as u64;
                }
                self.loss.chunks_skipped += 1;
                self.loss.bytes_skipped += avail as u64;
                self.start += avail;
                self.ended = true;
                return false;
            }
            let payload_range = self.start + CHUNK_FRAME_LEN..self.start + need;
            let crc_ok = crc32(&self.buf[payload_range.clone()]) == frame.crc;
            if !crc_ok {
                if frame.kind == CHUNK_EVENTS {
                    self.loss.records_lost += frame.record_count as u64;
                }
                self.loss.chunks_skipped += 1;
                self.loss.bytes_skipped += need as u64;
                self.start += need;
                continue;
            }
            self.chunks_seen += 1;
            match frame.kind {
                CHUNK_EVENTS => {
                    let mut queue = std::mem::take(&mut self.queue);
                    queue.clear();
                    let decode =
                        decode_events(&self.buf[payload_range], frame.record_count, &mut queue);
                    self.queue = queue;
                    self.qpos = 0;
                    self.event_chunks += 1;
                    if let Err(decoded) = decode {
                        // CRC passed but decode failed: writer bug or
                        // version skew inside the payload. Count the rest.
                        self.loss.records_lost += (frame.record_count - decoded) as u64;
                        self.loss.chunks_skipped += 1;
                    }
                    self.start += need;
                    if !self.queue.is_empty() {
                        self.events_read += self.queue.len() as u64;
                        return true;
                    }
                }
                CHUNK_META => {
                    match std::str::from_utf8(&self.buf[payload_range])
                        .ok()
                        .and_then(|s| serde_json::from_str::<TraceMeta>(s).ok())
                    {
                        Some(m) => self.meta = Some(m),
                        None => self.loss.chunks_skipped += 1,
                    }
                    self.start += need;
                }
                CHUNK_INDEX => {
                    // Sequential readers don't need the directory.
                    self.start += need;
                }
                _ => {
                    // Unknown kind from a newer writer: skip, not loss.
                    self.start += need;
                }
            }
        }
    }

    /// Drains the remaining stream (discarding events) so that
    /// [`meta`](TraceReader::meta) and final [`stats`](TraceReader::stats)
    /// become available.
    pub fn drain(&mut self) {
        while self.next().is_some() {}
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Access;

    #[inline]
    fn next(&mut self) -> Option<Access> {
        if self.qpos < self.queue.len() {
            let a = self.queue[self.qpos];
            self.qpos += 1;
            return Some(a);
        }
        if self.advance() {
            let a = self.queue[0];
            self.qpos = 1;
            Some(a)
        } else {
            None
        }
    }
}

/// Summary of a trace file, as shown by `predator trace info`.
#[derive(Debug, Clone)]
pub struct TraceInfo {
    /// Parsed file header.
    pub header: Header,
    /// File size in bytes.
    pub file_bytes: u64,
    /// Total event records.
    pub events: u64,
    /// Event chunks.
    pub event_chunks: u64,
    /// All valid chunks (events + meta + index).
    pub total_chunks: u64,
    /// Attribution sidecar, if present and intact.
    pub meta: Option<TraceMeta>,
    /// Loss accounting (all zeros for an intact file).
    pub loss: LossStats,
    /// The file ends with a valid trailer.
    pub has_footer: bool,
    /// The summary came from the footer index (no full scan needed).
    pub via_index: bool,
}

/// Summarises a trace file. Uses the footer index when intact (O(1) in the
/// number of event chunks); falls back to a full corruption-tolerant scan
/// otherwise.
pub fn read_info(path: &Path) -> Result<TraceInfo, TraceError> {
    match read_info_indexed(path) {
        Ok(Some(info)) => return Ok(info),
        Err(e @ (TraceError::NotPtrace | TraceError::UnsupportedVersion(_))) => return Err(e),
        Ok(None) | Err(_) => {}
    }
    read_info_scan(path)
}

/// Summarises a trace file by a full corruption-tolerant scan, ignoring the
/// footer index even when intact. The index only proves chunks *existed* at
/// seal time — a scan additionally CRC-checks every payload, so this is the
/// way to audit a file for mid-stream damage (`trace info --deep`).
pub fn read_info_scan(path: &Path) -> Result<TraceInfo, TraceError> {
    let f = File::open(path)?;
    let file_bytes = f.metadata()?.len();
    let mut r = TraceReader::new(io::BufReader::new(f))?;
    let mut events = 0u64;
    for _ in &mut r {
        events += 1;
    }
    Ok(TraceInfo {
        header: r.header(),
        file_bytes,
        events,
        event_chunks: r.event_chunks(),
        total_chunks: r.chunks_seen(),
        meta: r.take_meta(),
        loss: r.stats(),
        has_footer: r.saw_trailer(),
        via_index: false,
    })
}

fn read_chunk_at(f: &mut File, offset: u64) -> io::Result<Option<(ChunkFrame, Vec<u8>)>> {
    f.seek(SeekFrom::Start(offset))?;
    let mut frame_bytes = [0u8; CHUNK_FRAME_LEN];
    f.read_exact(&mut frame_bytes)?;
    let Some(frame) = ChunkFrame::decode(&frame_bytes) else {
        return Ok(None);
    };
    if frame.payload_len > MAX_CHUNK_PAYLOAD {
        return Ok(None);
    }
    let mut payload = vec![0u8; frame.payload_len as usize];
    f.read_exact(&mut payload)?;
    if crc32(&payload) != frame.crc {
        return Ok(None);
    }
    Ok(Some((frame, payload)))
}

fn read_info_indexed(path: &Path) -> Result<Option<TraceInfo>, TraceError> {
    let mut f = File::open(path)?;
    let header = read_header(&mut f)?;
    let file_bytes = f.metadata()?.len();
    if file_bytes < (HEADER_V1_LEN + TRAILER_LEN) as u64 {
        return Ok(None);
    }
    f.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
    let mut trailer = [0u8; TRAILER_LEN];
    f.read_exact(&mut trailer)?;
    if &trailer[16..24] != END_MAGIC {
        return Ok(None);
    }
    let index_offset = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
    let total_records = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
    if index_offset >= file_bytes {
        return Ok(None);
    }
    let Some((index_frame, index_payload)) = read_chunk_at(&mut f, index_offset)? else {
        return Ok(None);
    };
    if index_frame.kind != CHUNK_INDEX {
        return Ok(None);
    }
    let Some(entries) = decode_index(&index_payload) else {
        return Ok(None);
    };
    let mut meta = None;
    if let Some(e) = entries.iter().find(|e| e.kind == CHUNK_META) {
        let Some((_, payload)) = read_chunk_at(&mut f, e.offset)? else {
            return Ok(None);
        };
        match std::str::from_utf8(&payload)
            .ok()
            .and_then(|s| serde_json::from_str(s).ok())
        {
            Some(m) => meta = Some(m),
            None => return Ok(None),
        }
    }
    let event_chunks = entries.iter().filter(|e| e.kind == CHUNK_EVENTS).count() as u64;
    Ok(Some(TraceInfo {
        header,
        file_bytes,
        events: total_records,
        event_chunks,
        total_chunks: entries.len() as u64 + 1, // + the index chunk itself
        meta,
        loss: LossStats::default(),
        has_footer: true,
        via_index: true,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use predator_sim::ThreadId;

    fn sample_trace(chunks: usize, per_chunk: usize) -> (Vec<u8>, Vec<Access>) {
        let mut all = Vec::new();
        let mut buf = Vec::new();
        let mut w = TraceWriter::create(&mut buf, 0x1000, 1 << 20).unwrap();
        let mut addr = 0x1000u64;
        for c in 0..chunks {
            let mut events = Vec::new();
            for i in 0..per_chunk {
                addr += 8;
                events.push(Access::write(ThreadId(((c + i) % 4) as u16), addr, 8));
            }
            w.write_events(&events).unwrap();
            all.extend_from_slice(&events);
        }
        w.write_meta(&TraceMeta {
            app_live_bytes: 42,
            ..TraceMeta::default()
        })
        .unwrap();
        let _ = w.finish().unwrap();
        (buf, all)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (bytes, events) = sample_trace(5, 100);
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let got: Vec<Access> = (&mut r).collect();
        assert_eq!(got, events);
        assert!(
            !r.stats().any(),
            "clean file must report zero loss: {:?}",
            r.stats()
        );
        assert!(r.saw_trailer());
        assert_eq!(r.meta().unwrap().app_live_bytes, 42);
        assert_eq!(r.event_chunks(), 5);
    }

    #[test]
    fn reuse_recycles_buffers_and_resets_state() {
        let (bytes, events) = sample_trace(3, 50);
        let (damaged, _) = {
            let (mut b, e) = sample_trace(3, 50);
            let off = find_nth_chunk(&b, 1) + CHUNK_FRAME_LEN + 4;
            b[off] ^= 0xff;
            (b, e)
        };
        // First pass over a damaged file accumulates loss...
        let mut r = TraceReader::new(&damaged[..]).unwrap();
        r.drain();
        assert!(r.stats().any());
        // ...which must not leak into the recycled reader.
        let mut r2 = r.reuse(&bytes[..]).unwrap();
        let got: Vec<Access> = (&mut r2).collect();
        assert_eq!(got, events);
        assert!(!r2.stats().any(), "recycled reader starts clean");
        assert!(r2.saw_trailer());
        assert_eq!(r2.meta().unwrap().app_live_bytes, 42);
    }

    #[test]
    fn flipped_payload_byte_loses_one_chunk_only() {
        let (mut bytes, events) = sample_trace(5, 100);
        // Flip a byte inside the 3rd event chunk's payload.
        let off = find_nth_chunk(&bytes, 2) + CHUNK_FRAME_LEN + 10;
        bytes[off] ^= 0xff;
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let got: Vec<Access> = (&mut r).collect();
        let stats = r.stats();
        assert_eq!(stats.chunks_skipped, 1);
        assert_eq!(stats.records_lost, 100);
        assert!(!stats.truncated);
        assert_eq!(got.len(), events.len() - 100);
        // Chunks 1,2,4,5 survive intact.
        assert_eq!(&got[..200], &events[..200]);
        assert_eq!(&got[200..], &events[300..]);
        assert!(r.meta().is_some(), "meta after the damage still decodes");
    }

    #[test]
    fn truncated_file_reports_loss_not_panic() {
        let (bytes, _) = sample_trace(5, 100);
        for cut in [
            bytes.len() - 10,
            bytes.len() / 2,
            HEADER_V1_LEN + 5,
            HEADER_V1_LEN,
        ] {
            let mut r = TraceReader::new(&bytes[..cut]).unwrap();
            let got: Vec<Access> = (&mut r).collect();
            let stats = r.stats();
            assert!(stats.truncated, "cut at {cut} must report truncation");
            assert!(got.len() <= 500);
        }
    }

    #[test]
    fn unknown_version_is_a_clean_error() {
        let (mut bytes, _) = sample_trace(1, 10);
        bytes[6] = 9; // version 9
        match TraceReader::new(&bytes[..]) {
            Err(TraceError::UnsupportedVersion(9)) => {}
            Err(other) => panic!("expected UnsupportedVersion, got {other:?}"),
            Ok(_) => panic!("expected UnsupportedVersion, got a reader"),
        }
    }

    #[test]
    fn not_ptrace_is_a_clean_error() {
        assert!(matches!(
            TraceReader::new(&b"hello world, this is jsonl"[..]),
            Err(TraceError::NotPtrace)
        ));
        assert!(matches!(
            TraceReader::new(&b"PT"[..]),
            Err(TraceError::NotPtrace)
        ));
    }

    #[test]
    fn garbage_spliced_midfile_resyncs() {
        let (bytes, events) = sample_trace(4, 50);
        let splice_at = find_nth_chunk(&bytes, 2);
        let mut mangled = bytes[..splice_at].to_vec();
        mangled.extend_from_slice(&[0xa5u8; 997]); // garbage, no CHNK inside
        mangled.extend_from_slice(&bytes[splice_at..]);
        let mut r = TraceReader::new(&mangled[..]).unwrap();
        let got: Vec<Access> = (&mut r).collect();
        assert_eq!(got, events, "all real chunks recovered after resync");
        let stats = r.stats();
        assert_eq!(stats.bytes_skipped, 997);
        assert!(!stats.truncated);
    }

    /// Byte offset of the n-th (0-based) chunk frame.
    fn find_nth_chunk(bytes: &[u8], n: usize) -> usize {
        let mut off = HEADER_V1_LEN;
        for _ in 0..n {
            let frame =
                ChunkFrame::decode(&bytes[off..off + CHUNK_FRAME_LEN].try_into().unwrap()).unwrap();
            off += CHUNK_FRAME_LEN + frame.payload_len as usize;
        }
        off
    }
}
