//! Golden-fixture tests for `predator whatif` output: the text rendering
//! and the annotated JSON report are pinned byte-for-byte against committed
//! fixtures. The scenario set covers the three verdicts the command can
//! hand down: a padding fix that works (100% of invalidations removed at
//! every portfolio geometry), a fix that cannot work (true sharing), and a
//! no-op user edit (zero delta). Set `UPDATE_GOLDEN=1` to re-bless after an
//! intentional format change — same convention as the policy reporters'
//! golden tests.

use predator_core::{DetectorConfig, ObsSnapshot, Report};
use predator_sim::{Access, ThreadId};
use predator_trace::{whatif_events, AnalyzeConfig, WhatIfFix, WhatIfOutcome};

const GOLDEN_TEXT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_whatif.txt"
);
const GOLDEN_JSON: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_whatif.json"
);

const BASE: u64 = 0x4000_0000;
const SIZE: u64 = 1 << 20;

fn cfg() -> AnalyzeConfig {
    AnalyzeConfig::new(DetectorConfig::sensitive(), 2)
}

/// Deterministic trace with both failure modes on distinct lines: words 0/1
/// of line 0 ping-pong between two threads (false sharing — padding fixes
/// it), and one word of line 16 is hammered by both threads (true sharing —
/// padding cannot help).
fn golden_events() -> Vec<Access> {
    let mut events = Vec::new();
    for i in 0..400u64 {
        let t = (i % 2) as u16;
        events.push(Access::write(ThreadId(t), BASE + (i % 2) * 8, 8));
        events.push(Access::write(ThreadId(t), BASE + 1024, 8));
    }
    events
}

/// Golden bytes must not depend on process-global observability counters,
/// which other tests in the same process mutate freely.
fn normalized(mut report: Report) -> Report {
    report.obs = ObsSnapshot::default();
    report
}

fn run(fix: &WhatIfFix) -> WhatIfOutcome {
    whatif_events(&golden_events(), BASE, SIZE, None, &cfg(), fix)
}

fn check(path: &str, actual: &str, what: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, actual).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .expect("missing golden fixture; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(actual, golden, "{what} drifted from the golden fixture");
}

#[test]
fn whatif_text_matches_the_committed_golden_fixture() {
    // All three verdicts in one fixture: the suggested fixes (padding works
    // on the false-sharing finding, nothing helps the true-sharing one) and
    // a no-op user edit.
    let mut text = String::from("=== suggested fixes ===\n");
    text.push_str(&run(&WhatIfFix::Suggested).to_text());
    text.push_str("=== no-op user edit ===\n");
    text.push_str(&run(&WhatIfFix::Edits(Vec::new())).to_text());
    check(GOLDEN_TEXT, &text, "whatif text output");
}

#[test]
fn whatif_json_matches_the_committed_golden_fixture() {
    let out = run(&WhatIfFix::Suggested);
    let json = normalized(out.report).to_json() + "\n";
    check(GOLDEN_JSON, &json, "whatif JSON report");
}

#[test]
fn golden_scenario_covers_all_three_verdicts() {
    let out = run(&WhatIfFix::Suggested);
    let verdicts: Vec<String> = out
        .report
        .findings
        .iter()
        .filter_map(|f| f.verified.as_ref())
        .map(|v| v.verdict.to_string())
        .collect();
    assert!(
        verdicts.iter().any(|v| v == "fixes"),
        "expected a working fix, got {verdicts:?}"
    );
    assert!(
        verdicts.iter().any(|v| v == "ineffective"),
        "expected an ineffective fix, got {verdicts:?}"
    );
    let noop = run(&WhatIfFix::Edits(Vec::new()));
    assert!(noop
        .report
        .findings
        .iter()
        .filter_map(|f| f.verified.as_ref())
        .all(|v| v.pad_bytes == 0 && v.verdict.to_string() == "ineffective"));
}
