//! Model-checked interleavings for the lock-free tracked-line transitions.
//!
//! The `relaxed` tracking mode rests on one claim: the packed two-entry
//! history table CAS loop is *linearizable* — every concurrent execution is
//! equivalent to some serial order of the same accesses, so no invalidation
//! is ever lost or double-counted. These tests prove that claim for all
//! 2–3-thread interleavings at atomic-op granularity, using the vendored
//! `loom` shim (exhaustive DFS over schedules; see `shims/loom`).
//!
//! The pattern for history transitions is set-equality in both directions:
//! enumerate every serialization of the access multiset with the *pure*
//! transition function, run every schedule of the *atomic* implementation,
//! and require the observed outcome set to equal the enumerated one. ⊆
//! proves linearizability (nothing unserialisable happens); ⊇ proves the
//! scheduler actually explores every order (the test has teeth).

use std::collections::HashSet;
use std::sync::Mutex;

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;

use predator::core::lockfree::{self, batch, crosses_threshold, Offer, RawU64};
use predator::sim::packed;
use predator::sim::{AccessKind, ThreadId};

/// The loom-scheduled atomic word: same `RawU64` algorithms as production
/// (`std::sync::atomic::AtomicU64`), different substrate. A newtype because
/// both the trait and loom's atomic live outside this crate.
#[derive(Default)]
struct LoomCell(AtomicU64);

impl RawU64 for LoomCell {
    fn load(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn cas(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.0
            .compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }

    fn fetch_add(&self, val: u64) -> u64 {
        self.0.fetch_add(val, Ordering::Relaxed)
    }

    fn store(&self, val: u64) {
        self.0.store(val, Ordering::Relaxed)
    }
}

type Op = (u16, AccessKind);

/// Every serialization of the per-thread op sequences (program order kept
/// within a thread), folded through the pure transition function. Returns
/// the set of reachable (final packed table, total invalidations) pairs.
fn enumerate_serial(threads: &[Vec<Op>]) -> HashSet<(u64, u64)> {
    fn rec(
        threads: &[Vec<Op>],
        pos: &mut Vec<usize>,
        bits: u64,
        inv: u64,
        out: &mut HashSet<(u64, u64)>,
    ) {
        let mut done = true;
        for t in 0..threads.len() {
            if pos[t] < threads[t].len() {
                done = false;
                let (tid, kind) = threads[t][pos[t]];
                let (next, invalidated) = packed::transition(bits, ThreadId(tid), kind);
                pos[t] += 1;
                rec(threads, pos, next, inv + invalidated as u64, out);
                pos[t] -= 1;
            }
        }
        if done {
            out.insert((bits, inv));
        }
    }
    let mut out = HashSet::new();
    rec(
        threads,
        &mut vec![0; threads.len()],
        packed::EMPTY,
        0,
        &mut out,
    );
    out
}

/// Runs the same op sequences through the atomic CAS implementation under
/// every loom schedule; returns the observed (final table, Σ invalidations)
/// set.
fn model_history(threads: Vec<Vec<Op>>) -> HashSet<(u64, u64)> {
    let observed: std::sync::Arc<Mutex<HashSet<(u64, u64)>>> =
        std::sync::Arc::new(Mutex::new(HashSet::new()));
    let obs = std::sync::Arc::clone(&observed);
    loom::model(move || {
        let hist = Arc::new(LoomCell::default());
        let handles: Vec<_> = threads
            .iter()
            .map(|ops| {
                let hist = Arc::clone(&hist);
                let ops = ops.clone();
                loom::thread::spawn(move || {
                    let mut inv = 0u64;
                    for (tid, kind) in ops {
                        inv += lockfree::record_history(&*hist, ThreadId(tid), kind).1 as u64;
                    }
                    inv
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        obs.lock().unwrap().insert((hist.load(), total));
    });
    std::sync::Arc::try_unwrap(observed)
        .unwrap()
        .into_inner()
        .unwrap()
}

fn assert_history_linearizable(threads: Vec<Vec<Op>>) {
    let serial = enumerate_serial(&threads);
    let modeled = model_history(threads.clone());
    assert_eq!(
        modeled, serial,
        "atomic history must reach exactly the serializable outcomes for {threads:?}"
    );
}

const W: AccessKind = AccessKind::Write;
const R: AccessKind = AccessKind::Read;

/// Three single-write threads: every serialization invalidates exactly
/// twice (writes 2 and 3 always hit a remote-owned table), so any lost CAS
/// update shows up as an unreachable count.
#[test]
fn three_writers_never_lose_invalidations() {
    assert_history_linearizable(vec![vec![(0, W)], vec![(1, W)], vec![(2, W)]]);
}

/// Two threads, two writes each — outcome depends on the interleaving
/// (alternating orders invalidate 3×, blocked orders 1×); the atomic
/// implementation must cover that whole spectrum and nothing else.
#[test]
fn two_writers_two_writes_each_match_serializations() {
    assert_history_linearizable(vec![vec![(0, W), (0, W)], vec![(1, W), (1, W)]]);
}

/// The §2.3.1 read path: reads fill the second history slot (for a remote
/// thread) and never invalidate, but they arm the table so a later write
/// does. Mixed read/write program orders across three threads.
#[test]
fn readers_arm_the_table_in_every_order() {
    assert_history_linearizable(vec![vec![(0, W)], vec![(1, R), (1, W)], vec![(2, R)]]);
}

/// The history push itself: a redundant access (same thread, same kind
/// already owning the table) must be a no-op in every schedule — the CAS
/// fast path may not corrupt a concurrent writer's update.
#[test]
fn redundant_accesses_commute() {
    assert_history_linearizable(vec![vec![(0, W), (0, W), (0, W)], vec![(1, W)]]);
}

/// Threshold promotion edge: concurrent relaxed `fetch_add`s with
/// `crosses_threshold` on the returned previous value. fetch_add hands each
/// thread a distinct `prev`, so exactly ⌊total/T⌋ crossings fire — no
/// schedule may double-fire or drop a promotion.
#[test]
fn promotion_edge_fires_exactly_once_per_multiple() {
    // 2 threads × 2 increments, threshold 2 → exactly 2 crossings (at 2, 4).
    loom::model(|| {
        let counter = Arc::new(LoomCell::default());
        let crossings = Arc::new(LoomCell::default());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                let crossings = Arc::clone(&crossings);
                loom::thread::spawn(move || {
                    for _ in 0..2 {
                        let prev = counter.fetch_add(1);
                        if crosses_threshold(prev, 1, 2) {
                            crossings.fetch_add(1);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            crossings.load(),
            2,
            "threshold 2 over 4 writes fires exactly twice"
        );
    });
}

/// Batch slot conservation: under every interleaving of two threads
/// offering accesses into one slot (plus the final drain), each access is
/// counted exactly once — either inside a displaced batch handed to a
/// claimer, or as the claimer's own direct apply, or in the leftover batch.
#[test]
fn batch_displacement_conserves_every_access() {
    loom::model(|| {
        let slot = Arc::new(LoomCell::default());
        let applied = Arc::new(LoomCell::default()); // reads<<32 | writes
        let tally = |b: u64| (batch::reads(b) << 32) | batch::writes(b);
        let handles: Vec<_> = (0..2u16)
            .map(|t| {
                let slot = Arc::clone(&slot);
                let applied = Arc::clone(&applied);
                loom::thread::spawn(move || {
                    for kind in [W, R] {
                        match lockfree::offer_batch(&*slot, t, 0, kind == W, u64::MAX) {
                            Offer::Deferred => {}
                            Offer::Claimed { displaced } => {
                                let own = if kind == W { 1 } else { 1 << 32 };
                                applied.fetch_add(tally(displaced) + own);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let leftover = lockfree::take_batch(&*slot);
        let total = applied.load() + tally(leftover);
        assert_eq!(total >> 32, 2, "both reads accounted exactly once");
        assert_eq!(total & 0xffff_ffff, 2, "both writes accounted exactly once");
    });
}

/// Publish-once: the CAS pattern used by `TrackSlots`/`UnitList` to install
/// a line — exactly one of two racing publishers wins in every schedule,
/// and the loser observes the winner's value.
#[test]
fn publish_once_has_a_single_winner() {
    loom::model(|| {
        let slot = Arc::new(LoomCell::default());
        let handles: Vec<_> = (1..=2u64)
            .map(|v| {
                let slot = Arc::clone(&slot);
                loom::thread::spawn(move || slot.cas(0, v).is_ok())
            })
            .collect();
        let won: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            won.iter().filter(|&&w| w).count(),
            1,
            "exactly one publisher wins"
        );
        let published = slot.load();
        assert!(
            published == 1 || published == 2,
            "losers leave the winner's value intact"
        );
    });
}
