//! End-to-end alert lifecycle against an in-process serve-style session.
//!
//! Builds the same monitor stack `predator serve --rules` wires up — the
//! tsdb sampled per tick, the alert engine evaluated over it, `/alerts`
//! served over the hand-rolled HTTP server — and drives a synthetic
//! overhead spike through it, asserting the full pending → firing →
//! resolved lifecycle in both places it is observable: the `/alerts`
//! JSON document and the `alert_transition` records on the JSONL event
//! sink.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use predator::obs::{
    events, http_get, parse_rules, AlertEngine, HttpServer, Response, Snapshot, Tsdb,
};

/// A `Write` the test can read back: the JSONL event sink's destination.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn lines(buf: &SharedBuf) -> Vec<String> {
    String::from_utf8(buf.0.lock().unwrap().clone())
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

const RULES: &str = "\
alert overhead_spike
  expr: predator_watchdog_overhead_ppm > 80000
  for: 2s
  severity: critical
  summary: synthetic spike
";

fn overhead_snap(ppm: i64) -> Snapshot {
    Snapshot {
        counters: vec![],
        gauges: vec![("predator_watchdog_overhead_ppm".into(), ppm)],
        histograms: vec![],
    }
}

#[test]
fn spike_walks_pending_firing_resolved_over_http_and_jsonl() {
    let buf = SharedBuf::default();
    events().install(Box::new(buf.clone()), 10_000, 1);

    let rules = parse_rules(RULES).expect("rules parse");
    let monitor = Arc::new((
        Mutex::new(Tsdb::default()),
        Mutex::new(AlertEngine::new(rules)),
    ));
    let now = Arc::new(Mutex::new(0u64));

    // The same /alerts route `predator serve` installs, minus the CLI.
    let mon = monitor.clone();
    let now_for_route = now.clone();
    let srv = HttpServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = srv.local_addr().to_string();
    // Shut down via Drop at end of test.
    let _handle = srv
        .route("/alerts", move |_| {
            let t = *now_for_route.lock().unwrap();
            Response::json(mon.1.lock().unwrap().to_json(t))
        })
        .spawn()
        .expect("spawn server");

    let tick = |t_ms: u64, ppm: i64| {
        *now.lock().unwrap() = t_ms;
        let mut db = monitor.0.lock().unwrap();
        db.sample(&overhead_snap(ppm), t_ms);
        monitor.1.lock().unwrap().eval(&db, t_ms);
    };
    let alerts = || -> String {
        let (status, body) = http_get(&addr, "/alerts", Duration::from_secs(5)).expect("GET");
        assert_eq!(status, 200);
        body
    };

    // Healthy: condition not met, rule inactive.
    tick(0, 1_000);
    let body = alerts();
    assert!(body.contains("\"state\":\"inactive\""), "bad body: {body}");
    assert!(body.contains("\"firing\":0"), "bad body: {body}");

    // Spike: the condition holds but `for: 2s` hasn't elapsed — pending.
    tick(1_000, 200_000);
    let body = alerts();
    assert!(body.contains("\"state\":\"pending\""), "bad body: {body}");
    assert!(body.contains("\"since_ms\":1000"), "bad body: {body}");

    // Spike sustained past the hysteresis window — firing.
    tick(2_000, 220_000);
    tick(3_000, 210_000);
    let body = alerts();
    assert!(body.contains("\"state\":\"firing\""), "bad body: {body}");
    assert!(body.contains("\"firing\":1"), "bad body: {body}");
    assert!(
        body.contains("\"severity\":\"critical\""),
        "bad body: {body}"
    );

    // Overhead recovers — resolved, with the resolution timestamp.
    tick(4_000, 900);
    let body = alerts();
    assert!(body.contains("\"state\":\"resolved\""), "bad body: {body}");
    assert!(body.contains("\"resolved_ms\":4000"), "bad body: {body}");
    assert!(body.contains("\"firing\":0"), "bad body: {body}");
    assert!(body.contains("\"transitions_total\":3"), "bad body: {body}");

    // The same lifecycle, as JSONL transition records on the event sink.
    events().flush();
    let recs: Vec<String> = lines(&buf)
        .into_iter()
        .filter(|l| l.contains("\"kind\":\"alert_transition\""))
        .collect();
    assert_eq!(recs.len(), 3, "expected 3 transitions, got: {recs:#?}");
    for (rec, (from, to, at)) in recs.iter().zip([
        ("inactive", "pending", 1_000u64),
        ("pending", "firing", 3_000),
        ("firing", "resolved", 4_000),
    ]) {
        assert!(
            rec.contains("\"alert\":\"overhead_spike\""),
            "bad rec: {rec}"
        );
        assert!(
            rec.contains(&format!("\"from\":\"{from}\",\"to\":\"{to}\"")),
            "expected {from}->{to} in: {rec}"
        );
        assert!(rec.contains(&format!("\"at_ms\":{at}")), "bad rec: {rec}");
    }
}
