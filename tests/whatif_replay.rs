//! Property tests for the what-if remap layer (the `predator whatif`
//! foundation): identity remaps change nothing, line-multiple padding never
//! makes the MESI ground truth worse, and remapped traces survive the
//! `.ptrace` encode/decode round trip losslessly.

use std::io::{BufReader, Cursor};

use proptest::prelude::*;

use predator::core::{DetectorConfig, LayoutEdit, Report};
use predator::sim::mesi::MesiSim;
use predator::sim::{Access, CacheGeometry, ThreadId};
use predator::trace::{analyze_events, AddressRemap, AnalyzeConfig, TraceReader, TraceWriter};

const BASE: u64 = 0x4000_0000;
const SIZE: u64 = 1 << 20;

/// Findings + run stats, serialised. The `obs` section is excluded: it
/// snapshots process-global telemetry that accumulates across tests.
fn essence(r: &Report) -> String {
    format!(
        "{}\n{}",
        serde_json::to_string(&r.findings).unwrap(),
        serde_json::to_string(&r.stats).unwrap()
    )
}

fn cfg() -> AnalyzeConfig {
    AnalyzeConfig::new(DetectorConfig::sensitive(), 2)
}

/// Word-granular traffic from a handful of threads over a small region:
/// distinct threads on distinct words of shared lines — false-sharing-heavy
/// by construction.
fn arb_events() -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec((0u16..4, 0u64..64, prop::bool::ANY), 1..400).prop_map(|ops| {
        ops.into_iter()
            .map(|(tid, word, w)| {
                let addr = BASE + word * 8;
                if w {
                    Access::write(ThreadId(tid), addr, 8)
                } else {
                    Access::read(ThreadId(tid), addr, 8)
                }
            })
            .collect()
    })
}

/// Layout edits at word-aligned spots whose pads are multiples of 256 —
/// a whole-line multiple of every portfolio geometry, so the remap only
/// ever splits cache lines, never merges them.
fn arb_line_multiple_edits() -> impl Strategy<Value = Vec<LayoutEdit>> {
    proptest::collection::vec((0u64..64, 1u64..4), 0..6).prop_map(|pads| {
        pads.into_iter()
            .map(|(word, k)| LayoutEdit {
                at: BASE + word * 8,
                pad: k * 256,
            })
            .collect()
    })
}

/// Total remote copies killed — the MESI quantity that is provably monotone
/// under line-splitting remaps. (Distinct invalidation *events* are not:
/// splitting a line can spread the same — or fewer — copy kills over more
/// distinct writes, so the event count may go up while total damage drops.)
fn mesi_copies_killed(events: &[Access], geom: CacheGeometry) -> u64 {
    let mut sim = MesiSim::new(4, geom);
    for a in events {
        sim.access(a.tid, a.addr, a.size, a.kind);
    }
    sim.stats().lines_invalidated
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The identity remap is a no-op end to end: re-analyzing the remapped
    /// event stream produces a byte-identical report to plain `analyze`.
    #[test]
    fn prop_identity_remap_reanalysis_is_byte_identical(events in arb_events()) {
        let remap = AddressRemap::identity();
        let mapped = remap.apply_events(&events);
        prop_assert_eq!(&mapped, &events);
        let plain = analyze_events(&events, BASE, SIZE, None, &cfg());
        let replay = analyze_events(&mapped, BASE, SIZE, None, &cfg());
        prop_assert_eq!(essence(&plain.report), essence(&replay.report));
    }

    /// A padding-fix remap on a false-sharing-only trace never makes MESI
    /// worse. "False-sharing-only" means every word is touched by exactly
    /// one thread (here: word owner = word index mod 4); the fix pads every
    /// ownership boundary by a whole-line multiple ≥ 512 bytes, separating
    /// any two different-owner words past the largest portfolio line. After
    /// the remap every cache line is single-threaded, so sharing traffic is
    /// not just non-increasing — it is zero at every geometry. (Arbitrary
    /// line-splitting remaps are NOT monotone: a coarse-line kill destroys
    /// a multi-sub-line copy in one event, where the split layout pays one
    /// kill per sub-line — see DESIGN.md for the counterexample.)
    #[test]
    fn prop_padding_fix_never_increases_mesi_on_false_sharing_trace(
        ops in proptest::collection::vec((0u64..64, prop::bool::ANY), 1..400),
        ks in proptest::collection::vec(1u64..3, 64),
    ) {
        let events: Vec<Access> = ops
            .into_iter()
            .map(|(word, w)| {
                let tid = ThreadId((word % 4) as u16); // owner-partitioned words
                let addr = BASE + word * 8;
                if w {
                    Access::write(tid, addr, 8)
                } else {
                    Access::read(tid, addr, 8)
                }
            })
            .collect();
        // Owners alternate every word, so every word boundary is an
        // ownership boundary: pad each one by k × 512 bytes.
        let edits: Vec<LayoutEdit> = (1..64)
            .map(|w| LayoutEdit { at: BASE + w * 8, pad: ks[w as usize] * 512 })
            .collect();
        let remap = AddressRemap::from_edits(&edits);
        let mapped = remap.apply_events(&events);
        for ls in CacheGeometry::PORTFOLIO_LINE_SIZES {
            let geom = CacheGeometry::new(ls);
            let before = mesi_copies_killed(&events, geom);
            let after = mesi_copies_killed(&mapped, geom);
            prop_assert_eq!(
                after, 0,
                "{}B lines: separated footprints still share ({} kills)",
                ls, after
            );
            prop_assert!(after <= before);
        }
    }

    /// A remapped trace written to `.ptrace` decodes back to exactly the
    /// remapped events, with the (grown) address range intact.
    #[test]
    fn prop_remapped_traces_round_trip_ptrace(
        events in arb_events(),
        edits in arb_line_multiple_edits(),
    ) {
        let remap = AddressRemap::from_edits(&edits);
        let mapped = remap.apply_events(&events);
        let new_size = SIZE + remap.total_pad();

        let mut w = TraceWriter::create(Vec::new(), BASE, new_size).unwrap();
        w.write_events(&mapped).unwrap();
        let (summary, bytes) = w.finish().unwrap();
        prop_assert_eq!(summary.events, mapped.len() as u64);

        let mut r = TraceReader::new(BufReader::new(Cursor::new(bytes))).unwrap();
        prop_assert_eq!(r.base(), BASE);
        prop_assert_eq!(r.size(), new_size);
        let decoded: Vec<Access> = (&mut r).collect();
        prop_assert!(!r.stats().any(), "lossless round trip");
        prop_assert_eq!(decoded, mapped);
    }
}
