//! Golden-report corpus: full reports for the `examples/programs` IR
//! workloads and the canonical synthetic patterns, pinned byte-for-byte.
//!
//! Every case runs the detector in `precise` mode over a fully
//! deterministic feed (round-robin IR scheduling / seeded interleavings),
//! normalises the process-global observability snapshot out of the report,
//! and compares the pretty-printed JSON against `tests/golden/<case>.json`
//! exactly. Any change to classification, ranking, attribution, counters,
//! or serialisation shows up as a diff — intentional changes are blessed
//! with `scripts/golden.sh --bless`.
//!
//! Each case also replays the identical feed in `relaxed` mode and
//! requires findings + stats to match the precise report, so the corpus
//! doubles as a fixed-seed differential gate.

use std::path::{Path, PathBuf};

use predator::core::{build_report, DetectorConfig, Predator, TrackingMode};
use predator::core::{ObsSnapshot, Report};
use predator::instrument::{
    instrument_module, parse_module, InstrumentOptions, Machine, StepSchedule, ThreadSpec,
};
use predator::sim::interleave::{interleave, Schedule};
use predator::sim::patterns::{generate, Pattern};
use predator::sim::ThreadId;
use predator_shadow::SimSpace;

const BASE: u64 = 0x4000_0000;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// `predator ir examples/programs/false_sharing.pir` with a fixed
/// round-robin quantum: 2 worker threads, `stride` bytes apart.
fn ir_report(stride: u64, mode: TrackingMode) -> Report {
    let text = std::fs::read_to_string(repo_path("examples/programs/false_sharing.pir"))
        .expect("example program exists");
    let mut module = parse_module(&text).expect("example parses");
    instrument_module(&mut module, &InstrumentOptions::default());

    let det = DetectorConfig::sensitive().with_tracking_mode(mode);
    let space = SimSpace::new(1 << 20);
    let rt = Predator::for_space(det, &space);
    let machine = Machine::new(&module, &space, &rt).expect("machine builds");
    let specs: Vec<ThreadSpec> = (0..2)
        .map(|t| ThreadSpec {
            tid: ThreadId(t as u16),
            function: "worker".into(),
            args: vec![(space.base() + t as u64 * stride) as i64, 2_000],
        })
        .collect();
    machine
        .run(&specs, StepSchedule::RoundRobin { quantum: 7 }, 1 << 32)
        .expect("program terminates");
    normalized(build_report(&rt, None))
}

fn pattern_report(pattern: Pattern, schedule: &Schedule, mode: TrackingMode) -> Report {
    let det = DetectorConfig::sensitive().with_tracking_mode(mode);
    let rt = Predator::new(det, BASE, 1 << 20);
    for a in interleave(&generate(pattern, 400), schedule) {
        rt.handle_access(a.tid, a.addr, a.size, a.kind);
    }
    normalized(build_report(&rt, None))
}

/// Golden bytes must not depend on process-global observability counters,
/// which accumulate across the tests sharing this binary.
fn normalized(mut report: Report) -> Report {
    report.obs = ObsSnapshot::default();
    report
}

/// Byte-for-byte check against `tests/golden/<name>.json`, or refresh it
/// when `GOLDEN_BLESS` is set (`scripts/golden.sh --bless`).
fn check_golden(name: &str, precise: &Report, relaxed: &Report) {
    assert_eq!(
        precise.findings, relaxed.findings,
        "[{name}] relaxed findings diverge from the precise oracle"
    );
    assert_eq!(
        precise.stats, relaxed.stats,
        "[{name}] relaxed stats diverge"
    );

    let dir = repo_path("tests/golden");
    let path = dir.join(format!("{name}.json"));
    let mut got = serde_json::to_string_pretty(precise).expect("reports serialise");
    got.push('\n');
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(&dir).expect("golden dir");
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run scripts/golden.sh --bless",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "[{name}] report drifted from {}; if intended, run scripts/golden.sh --bless",
        path.display()
    );
}

fn run_case(name: &str, mk: impl Fn(TrackingMode) -> Report) {
    check_golden(name, &mk(TrackingMode::Precise), &mk(TrackingMode::Relaxed));
}

#[test]
fn ir_false_sharing_stride8_observed() {
    run_case("ir_false_sharing_stride8", |m| ir_report(8, m));
}

#[test]
fn ir_false_sharing_stride64_latent() {
    run_case("ir_false_sharing_stride64", |m| ir_report(64, m));
}

#[test]
fn ir_false_sharing_stride0_true_sharing() {
    run_case("ir_false_sharing_stride0", |m| ir_report(0, m));
}

#[test]
fn pattern_ping_pong_round_robin() {
    run_case("pattern_ping_pong", |m| {
        pattern_report(
            Pattern::PingPong {
                threads: 4,
                base: BASE,
            },
            &Schedule::RoundRobin,
            m,
        )
    });
}

#[test]
fn pattern_reader_writer_seeded() {
    run_case("pattern_reader_writer", |m| {
        pattern_report(
            Pattern::ReaderWriter {
                threads: 3,
                base: BASE,
            },
            &Schedule::Seeded(229),
            m,
        )
    });
}

#[test]
fn pattern_striped_predicted_only() {
    run_case("pattern_striped64", |m| {
        pattern_report(
            Pattern::Striped {
                threads: 4,
                base: BASE,
                stride: 64,
            },
            &Schedule::RoundRobin,
            m,
        )
    });
}
