//! Allocator-detector interaction tests: the §2.3.2 guarantees under real
//! concurrent load, and the object lifecycle (free-time metadata refresh,
//! quarantine, reuse).

use predator::{Callsite, DetectorConfig, Session};

fn session() -> Session {
    Session::new(DetectorConfig::sensitive(), 16 << 20)
}

#[test]
fn allocator_isolation_prevents_cross_object_false_sharing() {
    // Many threads allocate and hammer their own small objects with REAL
    // concurrency. The per-thread-heap allocator must prevent any
    // cross-thread line sharing, so the detector must stay silent.
    let s = session();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let tid = s.register_thread();
                let objs: Vec<u64> = (0..32)
                    .map(|i| {
                        s.malloc(tid, 8 + (i % 5) * 8, Callsite::here())
                            .unwrap()
                            .start
                    })
                    .collect();
                for round in 0..500u64 {
                    for &o in &objs {
                        s.write::<u64>(tid, o, round);
                    }
                }
            });
        }
    });
    let report = s.report();
    assert!(
        !report.has_false_sharing(),
        "allocator isolation must prevent cross-object sharing:\n{report}"
    );
}

#[test]
fn memory_reuse_does_not_fake_false_sharing() {
    // §2.3.2: metadata refreshes at free so a recycled address cannot
    // conflate two objects' access histories. Thread 0 writes word 0 of an
    // object, frees it; the recycled block is then written at word 1 — if
    // stale metadata survived, the two "owners" would look like false
    // sharing. (Same thread, since recycling is per-thread — the cross-
    // thread case is impossible by construction, which this also checks.)
    let s = session();
    let t0 = s.register_thread();
    let t1 = s.register_thread();

    let a = s.malloc(t0, 64, Callsite::here()).unwrap();
    for i in 0..500u64 {
        s.write::<u64>(t0, a.start, i);
    }
    s.free(t0, a.start).unwrap();

    // Recycle: same thread gets the same block back…
    let b = s.malloc(t0, 64, Callsite::here()).unwrap();
    assert_eq!(b.start, a.start, "block recycled");
    // …and a fresh object elsewhere belongs to t1.
    let c = s.malloc(t1, 64, Callsite::here()).unwrap();
    assert_ne!(c.start / 64, b.start / 64);

    for i in 0..500u64 {
        s.write::<u64>(t0, b.start + 8, i);
        s.write::<u64>(t1, c.start, i);
    }
    let report = s.report();
    assert!(
        !report.has_false_sharing(),
        "reuse faked a report:\n{report}"
    );
    // The recycled line's metadata restarted: word 0's stale counts are gone.
    let idx = ((b.start - s.space().base()) / 64) as usize;
    let snap = s.runtime().line_snapshot(idx).unwrap();
    assert_eq!(
        snap.words.words()[0].total(),
        0,
        "stale word counts must be cleared"
    );
}

#[test]
fn quarantined_objects_keep_their_evidence() {
    let s = session();
    let t0 = s.register_thread();
    let t1 = s.register_thread();
    let obj = s.malloc(t0, 64, Callsite::here()).unwrap();
    for i in 0..500u64 {
        s.write::<u64>(t0, obj.start, i);
        s.write::<u64>(t1, obj.start + 8, i);
    }
    s.free(t0, obj.start).unwrap();
    // Quarantined: the address is never handed out again…
    assert!(s.heap().is_quarantined(obj.start));
    for _ in 0..10 {
        let next = s.malloc(t0, 64, Callsite::here()).unwrap();
        assert_ne!(next.start, obj.start);
    }
    // …and the finding survives in the final report.
    let report = s.report();
    assert!(report.has_false_sharing(), "{report}");
}

#[test]
fn attribution_survives_dense_heaps() {
    // Hundreds of live objects; findings must attribute to exactly the
    // right one.
    let s = session();
    let t0 = s.register_thread();
    let t1 = s.register_thread();
    let decoys: Vec<u64> = (0..200)
        .map(|_| s.malloc(t0, 32, Callsite::here()).unwrap().start)
        .collect();
    let victim = s
        .malloc(
            t0,
            64,
            Callsite::from_frames(vec![predator::Frame::new("victim.rs", 1)]),
        )
        .unwrap();
    let more: Vec<u64> = (0..200)
        .map(|_| s.malloc(t0, 32, Callsite::here()).unwrap().start)
        .collect();
    for i in 0..500u64 {
        s.write::<u64>(t0, victim.start, i);
        s.write::<u64>(t1, victim.start + 8, i);
    }
    std::hint::black_box((&decoys, &more));
    let report = s.report();
    let f = report.false_sharing().next().expect("finding");
    assert_eq!(f.object.start, victim.start);
    assert!(f.to_string().contains("victim.rs:1"));
}

#[test]
fn concurrent_detection_with_real_threads_is_sound() {
    // Under genuine parallelism the detector must (a) never report sharing
    // that is not there, and (b) keep counters consistent. Each thread gets
    // its own object; one *pair* of threads deliberately shares a line via
    // an object allocated by the main thread.
    let s = session();
    let main = s.register_thread();
    let shared = s.malloc(main, 64, Callsite::here()).unwrap();
    std::thread::scope(|scope| {
        for k in 0..4usize {
            let shared = shared.start;
            let s = &s;
            scope.spawn(move || {
                let tid = s.register_thread();
                let own = s.malloc(tid, 64, Callsite::here()).unwrap();
                for i in 0..20_000u64 {
                    s.write::<u64>(tid, own.start, i);
                    if k < 2 {
                        // Threads 0 and 1 also fight over the shared line.
                        s.write::<u64>(tid, shared + (k as u64) * 8, i);
                    }
                }
            });
        }
    });
    let report = s.report();
    // Exactly one falsely-shared object: the deliberately shared one.
    let fs: Vec<_> = report.false_sharing().collect();
    assert!(!fs.is_empty(), "the shared object must be found:\n{report}");
    for f in &fs {
        assert_eq!(
            f.object.start, shared.start,
            "only the shared object may be flagged"
        );
    }
}
