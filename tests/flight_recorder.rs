//! Properties of the flight recorder (crates/obs/src/recorder.rs) and of
//! the invalidation traces embedded in findings.
//!
//! Two claims are checked against randomized inputs:
//!
//! 1. **Retention**: each per-line ring keeps *exactly* the `depth`
//!    most-recent records by logical timestamp, regardless of arrival
//!    order or batching (thread-local segments flush out of order).
//! 2. **Ground truth**: every invalidation the detector's hot path records
//!    (and therefore every trace embedded in a finding) corresponds to an
//!    invalidation the MESI simulator actually reported — same writer,
//!    same word, victims contained in the MESI event's victim set — with
//!    only the detector's known two-access startup window missing.
//!
//! The detector feeds the process-global recorder, so tests touching it
//! serialize on a lock and reset it around each case; the MESI simulator
//! always writes to its own injected instance.

use std::sync::{Arc, Mutex, MutexGuard};

use proptest::prelude::*;

use predator::core::{DetectorConfig, Predator};
use predator::sim::interleave::{interleave, Schedule, Script};
use predator::sim::mesi::MesiSim;
use predator::sim::{Access, AccessKind, CacheGeometry, ThreadId};
use predator::{Callsite, Session};
use predator_obs::recorder::{self, FlightRecorder, Rec, RecKind};

const BASE: u64 = 0x4000_0000;

/// Serializes tests that enable/reset the process-global recorder.
static GLOBAL_RECORDER: Mutex<()> = Mutex::new(());

fn global_lock() -> MutexGuard<'static, ()> {
    // A failed case poisons the lock; later tests should still run.
    GLOBAL_RECORDER.lock().unwrap_or_else(|e| e.into_inner())
}

fn exact_config() -> DetectorConfig {
    DetectorConfig {
        tracking_threshold: 1,
        report_threshold: 1,
        sampling: false,
        prediction: false,
        ..DetectorConfig::paper()
    }
}

/// Collapses a seq-sorted record list into invalidation *events*:
/// `(writer_tid, writer_word, sorted victim tids)`, one per shared seq.
fn inv_events(recs: &[Rec]) -> Vec<(u16, u8, Vec<u16>)> {
    let mut events: Vec<(u64, u16, u8, Vec<u16>)> = Vec::new();
    for r in recs {
        if let RecKind::Invalidation { victim_tid, .. } = r.kind {
            match events.last_mut() {
                Some(e) if e.0 == r.seq => e.3.push(victim_tid),
                _ => events.push((r.seq, r.tid, r.word, vec![victim_tid])),
            }
        }
    }
    events
        .into_iter()
        .map(|(_, writer, word, mut victims)| {
            victims.sort_unstable();
            (writer, word, victims)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Retention: for arbitrary per-line traffic arriving in arbitrary
    /// order and batch sizes, `line_records` returns exactly the
    /// `min(depth, n)` records with the highest timestamps, ascending,
    /// and the appended/evicted counters account for every record.
    #[test]
    fn prop_ring_retains_exactly_the_newest_k_per_line(
        ops in proptest::collection::vec(
            (0u8..3, proptest::arbitrary::any::<u64>()), 1..120),
        depth in 1usize..8,
    ) {
        if predator_obs::disabled() {
            return;
        }
        let r = FlightRecorder::new();
        r.enable(depth);
        // seq is program order; the sort key scrambles *arrival* order the
        // way interleaved thread-local segment flushes would.
        let mut arrivals: Vec<(u64, Rec)> = ops
            .iter()
            .enumerate()
            .map(|(i, &(line, key))| {
                let rec = Rec {
                    line_start: u64::from(line) * 64,
                    seq: i as u64,
                    tid: 0,
                    word: (i % 8) as u8,
                    kind: RecKind::Write,
                };
                (key, rec)
            })
            .collect();
        arrivals.sort_by_key(|&(key, _)| key);
        for chunk in arrivals.chunks(3) {
            let batch: Vec<Rec> = chunk.iter().map(|&(_, rec)| rec).collect();
            r.offer(&batch);
        }
        let mut kept_total = 0usize;
        for line in 0u64..3 {
            let mut expect: Vec<u64> = ops
                .iter()
                .enumerate()
                .filter(|&(_, &(l, _))| u64::from(l) == line)
                .map(|(i, _)| i as u64)
                .collect();
            expect.sort_unstable();
            let expect = expect.split_off(expect.len().saturating_sub(depth));
            kept_total += expect.len();
            let got: Vec<u64> = r.line_records(line * 64).iter().map(|x| x.seq).collect();
            prop_assert_eq!(got, expect, "line {} depth {}", line, depth);
        }
        prop_assert_eq!(r.appended(), ops.len() as u64);
        prop_assert_eq!(r.evicted(), (ops.len() - kept_total) as u64);
    }

    /// Ground truth: drive the detector (global recorder) and a MESI
    /// simulator (own recorder) through the same single-line script. The
    /// detector's invalidation events must be an ordered sub-sequence of
    /// MESI's — same writer and word, victims ⊆ the MESI victim set — and
    /// may only miss the ≤2 events of its startup window (§2.4.1: reads
    /// below the threshold are invisible, plus the one bootstrap write).
    #[test]
    fn prop_recorded_invalidations_match_mesi_ground_truth(
        per_thread in proptest::collection::vec(
            proptest::collection::vec((0u64..8, prop::bool::ANY), 1..60), 2..4),
        seed in 0u64..200,
    ) {
        if predator_obs::disabled() {
            return;
        }
        let n = per_thread.len();
        let mut script = Script::new(n);
        for (t, thread_ops) in per_thread.iter().enumerate() {
            for &(word, w) in thread_ops {
                let a = if w {
                    Access::write(ThreadId(t as u16), BASE + word * 8, 8)
                } else {
                    Access::read(ThreadId(t as u16), BASE + word * 8, 8)
                };
                script.push(t, a);
            }
        }
        let merged = interleave(&script, &Schedule::Seeded(seed));

        let _g = global_lock();
        let flight = recorder::recorder();
        flight.reset();
        flight.enable(8192);

        let rt = Predator::new(exact_config(), BASE, 1 << 20);
        let mut mesi = MesiSim::new(n, CacheGeometry::new(64));
        let truth = Arc::new(FlightRecorder::new());
        truth.enable(8192);
        mesi.set_recorder(Arc::clone(&truth));
        for a in &merged {
            rt.handle_access(a.tid, a.addr, a.size, a.kind);
            mesi.access(a.tid, a.addr, a.size, a.kind);
        }

        let det = inv_events(&flight.line_records(BASE));
        let mesi_ev = inv_events(&truth.line_records(BASE));
        flight.disable();
        flight.reset();
        drop(_g);

        prop_assert!(det.len() <= mesi_ev.len(),
            "detector recorded {} invalidation events, MESI only {}",
            det.len(), mesi_ev.len());
        prop_assert!(mesi_ev.len() - det.len() <= 2,
            "detector {} vs MESI {} events — more than the startup window",
            det.len(), mesi_ev.len());
        let mut j = 0;
        for (writer, word, victims) in &det {
            let mut matched = false;
            while j < mesi_ev.len() {
                let (mw, mword, mv) = &mesi_ev[j];
                j += 1;
                if mw == writer && mword == word && victims.iter().all(|v| mv.contains(v)) {
                    matched = true;
                    break;
                }
            }
            prop_assert!(matched,
                "detector event (writer t{}, word {}, victims {:?}) \
                 has no matching MESI event", writer, word, victims);
        }
    }
}

/// End-to-end: the traces *embedded in a finding* (the ones `predator
/// explain` renders) each name a writer/victim/word combination the MESI
/// simulator reported for the same line.
#[test]
fn embedded_traces_match_mesi_reported_invalidations() {
    if predator_obs::disabled() {
        return;
    }
    let _g = global_lock();
    let flight = recorder::recorder();
    flight.reset();
    flight.enable(1024);

    let session = Session::new(DetectorConfig::sensitive(), 1 << 20);
    let t0 = session.register_thread();
    let t1 = session.register_thread();
    let obj = session.malloc(t0, 64, Callsite::here()).unwrap();

    let geom = CacheGeometry::new(64);
    let mut mesi = MesiSim::new(2, geom);
    let truth = Arc::new(FlightRecorder::new());
    truth.enable(1024);
    mesi.set_recorder(Arc::clone(&truth));

    for _ in 0..300 {
        session.write::<u64>(t0, obj.start, 1);
        mesi.access(t0, obj.start, 8, AccessKind::Write);
        session.write::<u64>(t1, obj.start + 8, 2);
        mesi.access(t1, obj.start + 8, 8, AccessKind::Write);
    }
    let report = session.report();
    flight.disable();

    let line = geom.line_index(obj.start);
    let mesi_ev = inv_events(&truth.line_records(geom.line_start(line)));
    flight.reset();
    drop(_g);

    assert!(!mesi_ev.is_empty(), "ping-pong must invalidate under MESI");
    let traced: Vec<_> = report
        .findings
        .iter()
        .filter(|f| !f.invalidation_traces.is_empty())
        .collect();
    assert!(!traced.is_empty(), "ping-pong finding should embed traces");
    for finding in traced {
        assert!(!finding.timeline.is_empty(), "traces imply a timeline");
        for trace in &finding.invalidation_traces {
            assert_eq!(trace.line, line, "traces stay on the object's line");
            let writer = trace.writer.index() as u16;
            let victim = trace.victim.index() as u16;
            assert_ne!(writer, victim, "a thread cannot invalidate itself");
            assert!(
                mesi_ev.iter().any(|(w, word, victims)| *w == writer
                    && *word == trace.writer_word
                    && victims.contains(&victim)),
                "embedded trace {trace} matches no MESI event",
            );
        }
    }
}
