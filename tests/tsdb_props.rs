//! Property tests for the embedded metric time-series store
//! (`predator::obs::tsdb`) behind `predator serve`'s `/query` endpoint.
//!
//! Three contracts pin the store down:
//!
//! 1. every tier is a bounded ring that retains exactly the newest K
//!    entries and counts what it dropped (loss accounting);
//! 2. downsampling happens at sample time, so a closed 10s/60s bucket
//!    re-aggregates its raw window *exactly* — count, sum, min, max and
//!    last all match a from-scratch fold of the full input history, even
//!    after the raw ring has evicted that window;
//! 3. counter series apply the `/snapshot` restart convention (a counter
//!    that shrank is a new session, its prior history becomes an offset),
//!    so stored counter series are monotone and `rate()` is never
//!    negative across wrap-around or serve session rotation.

use proptest::prelude::*;

use predator::obs::tsdb::AggPoint;
use predator::obs::{Snapshot, Tsdb, TsdbConfig};

/// A deliberately tiny store so a few dozen samples exercise eviction on
/// every tier (the default config would need hours of history).
fn small_cfg() -> TsdbConfig {
    TsdbConfig {
        raw_capacity: 8,
        tier1_capacity: 6,
        tier2_capacity: 4,
        tier1_ms: 10_000,
        tier2_ms: 60_000,
    }
}

/// One registry snapshot holding a single counter and a single gauge.
fn snap(counter: u64, gauge: i64) -> Snapshot {
    Snapshot {
        counters: vec![("work_total".into(), counter)],
        gauges: vec![("live_level".into(), gauge)],
        histograms: vec![],
    }
}

/// Turns per-sample time deltas into strictly increasing timestamps.
fn times(t0: u64, dts: &[u64]) -> Vec<u64> {
    let mut t = t0;
    dts.iter()
        .map(|dt| {
            t += dt.max(&1);
            t
        })
        .collect()
}

/// From-scratch 10s aggregation of a full (t, value) history, in fold
/// order — the oracle the store's sample-time buckets must match.
fn expected_tier1(points: &[(u64, f64)], tier1_ms: u64) -> Vec<AggPoint> {
    let mut out: Vec<AggPoint> = Vec::new();
    for &(t, v) in points {
        let b = t - t % tier1_ms;
        match out.last_mut() {
            Some(a) if a.t_ms == b => {
                a.count += 1;
                a.sum += v;
                a.min = a.min.min(v);
                a.max = a.max.max(v);
                a.last = v;
            }
            _ => out.push(AggPoint {
                t_ms: b,
                count: 1,
                sum: v,
                min: v,
                max: v,
                last: v,
            }),
        }
    }
    out
}

/// Folds already-closed 10s buckets into 60s buckets, same order.
fn expected_tier2(closed1: &[AggPoint], tier2_ms: u64) -> Vec<AggPoint> {
    let mut out: Vec<AggPoint> = Vec::new();
    for a in closed1 {
        let b = a.t_ms - a.t_ms % tier2_ms;
        match out.last_mut() {
            Some(o) if o.t_ms == b => {
                o.count += a.count;
                o.sum += a.sum;
                o.min = o.min.min(a.min);
                o.max = o.max.max(a.max);
                o.last = a.last;
            }
            _ => {
                let mut seeded = *a;
                seeded.t_ms = b;
                out.push(seeded);
            }
        }
    }
    out
}

fn agg_eq(a: &AggPoint, b: &AggPoint) -> bool {
    a.t_ms == b.t_ms
        && a.count == b.count
        && a.sum == b.sum
        && a.min == b.min
        && a.max == b.max
        && a.last == b.last
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every tier retains exactly the newest K entries of what it was
    /// ever offered, and the loss accounting reports the remainder.
    #[test]
    fn prop_rings_retain_exactly_newest_k(
        t0 in 0u64..5_000,
        steps in proptest::collection::vec((1u64..4_000, -1_000i64..1_000), 1..64),
    ) {
        let cfg = small_cfg();
        let mut db = Tsdb::new(cfg);
        let ts = times(t0, &steps.iter().map(|(dt, _)| *dt).collect::<Vec<_>>());
        let mut history: Vec<(u64, f64)> = Vec::new();
        for ((_, g), &t) in steps.iter().zip(&ts) {
            db.sample(&snap(0, *g), t);
            history.push((t, *g as f64));
        }

        // Raw tier: the newest min(N, cap) samples, verbatim and in order.
        let keep = history.len().min(cfg.raw_capacity);
        let got = db.raw_points("live_level");
        prop_assert_eq!(got.len(), keep);
        for (p, (t, v)) in got.iter().zip(&history[history.len() - keep..]) {
            prop_assert_eq!(p.t_ms, *t);
            prop_assert_eq!(p.value, *v);
        }
        // Both series (gauge + the constant counter) evict in lockstep.
        let evicted_per_series = (history.len() - keep) as u64;
        prop_assert_eq!(db.loss().raw_evicted, 2 * evicted_per_series);

        // 10s tier: all buckets but the newest are closed; the ring keeps
        // the newest min(closed, cap) of them.
        let all1 = expected_tier1(&history, cfg.tier1_ms);
        let closed1 = &all1[..all1.len() - 1];
        let keep1 = closed1.len().min(cfg.tier1_capacity);
        let got1 = db.tier1_buckets("live_level");
        prop_assert_eq!(got1.len(), keep1);
        for (g, w) in got1.iter().zip(&closed1[closed1.len() - keep1..]) {
            prop_assert_eq!(g.t_ms, w.t_ms);
        }
        prop_assert_eq!(
            db.loss().tier1_evicted,
            2 * (closed1.len() - keep1) as u64
        );
    }

    /// Closed buckets re-aggregate their raw windows exactly — count,
    /// sum, min, max, last — regardless of raw-ring eviction, at both
    /// downsampling tiers.
    #[test]
    fn prop_closed_buckets_reaggregate_exactly(
        t0 in 0u64..5_000,
        steps in proptest::collection::vec((1u64..4_000, -1_000i64..1_000), 1..64),
    ) {
        let cfg = small_cfg();
        let mut db = Tsdb::new(cfg);
        let ts = times(t0, &steps.iter().map(|(dt, _)| *dt).collect::<Vec<_>>());
        let mut history: Vec<(u64, f64)> = Vec::new();
        for ((_, g), &t) in steps.iter().zip(&ts) {
            db.sample(&snap(0, *g), t);
            history.push((t, *g as f64));
        }

        let all1 = expected_tier1(&history, cfg.tier1_ms);
        let closed1 = &all1[..all1.len() - 1];
        let got1 = db.tier1_buckets("live_level");
        let want1 = &closed1[closed1.len() - got1.len()..];
        for (g, w) in got1.iter().zip(want1) {
            prop_assert!(agg_eq(g, w),
                "10s bucket diverged from raw re-aggregation: {g:?} vs {w:?}");
        }

        // 60s buckets fold *closed* 10s buckets; the one the newest
        // closed 10s bucket falls into is still open.
        let all2 = expected_tier2(closed1, cfg.tier2_ms);
        let closed2 = if all2.is_empty() { &all2[..] } else { &all2[..all2.len() - 1] };
        let got2 = db.tier2_buckets("live_level");
        prop_assert_eq!(got2.len(), closed2.len().min(cfg.tier2_capacity));
        let want2 = &closed2[closed2.len() - got2.len()..];
        for (g, w) in got2.iter().zip(want2) {
            prop_assert!(agg_eq(g, w),
                "60s bucket diverged from 10s re-aggregation: {g:?} vs {w:?}");
        }
    }

    /// Arbitrary counter histories — wrap-arounds, registry restarts,
    /// plain noise — produce a monotone stored series and a non-negative
    /// `rate()` over every window.
    #[test]
    fn prop_counter_rate_never_negative(
        t0 in 0u64..5_000,
        steps in proptest::collection::vec((1u64..4_000, 0u64..u64::MAX), 2..48),
        window_s in 1u64..300,
    ) {
        let mut db = Tsdb::new(small_cfg());
        let ts = times(t0, &steps.iter().map(|(dt, _)| *dt).collect::<Vec<_>>());
        let mut now = 0;
        for ((_, c), &t) in steps.iter().zip(&ts) {
            db.sample(&snap(*c, 0), t);
            now = t;

            // The stored series never goes backwards, whatever the raw
            // counter did.
            let pts = db.raw_points("work_total");
            prop_assert!(
                pts.windows(2).all(|w| w[1].value >= w[0].value),
                "stored counter series regressed: {pts:?}"
            );

            if let Some(r) = db.rate("work_total", window_s * 1000, now) {
                prop_assert!(r >= 0.0, "negative rate {r} over {window_s}s");
                prop_assert!(r.is_finite());
            }
        }
        // The full-history rate exists once two distinct-time points fit.
        prop_assert!(db.rate("work_total", u64::MAX, now).is_some());
    }
}

/// A counter that wraps right as the raw ring evicts the pre-wrap points:
/// the restart offset lives in the series, not the retained points, so
/// the adjusted history stays monotone even when the regression itself
/// has been evicted.
#[test]
fn wrap_survives_raw_eviction() {
    let mut db = Tsdb::new(small_cfg());
    for i in 0..6 {
        db.sample(&snap(1_000 + i * 100, 0), (i + 1) * 1_000);
    }
    db.sample(&snap(7, 0), 7_000); // session rotated
    for i in 0..10 {
        // Flush every pre-wrap point out of the 8-slot raw ring.
        db.sample(&snap(7 + i, 0), 8_000 + i * 1_000);
    }
    let pts = db.raw_points("work_total");
    assert!(pts.windows(2).all(|w| w[1].value >= w[0].value));
    let r = db.rate("work_total", u64::MAX, 17_000).unwrap();
    assert!(r >= 0.0, "rate {r} went negative across an evicted wrap");
}
