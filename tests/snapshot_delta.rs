//! Property tests for the `/snapshot` delta math (`predator::obs::delta`).
//!
//! The streaming contract of `predator serve` is that each scrape returns
//! the change since the previous scrape, and that a consumer summing every
//! delta reconstructs the cumulative snapshot exactly. Three properties pin
//! that down:
//!
//! 1. deltas are never negative (restart semantics cap every component at
//!    its current cumulative value, even across counter wrap-around);
//! 2. for monotone metric histories, `accumulate(deltas)` reproduces the
//!    final cumulative snapshot bit-for-bit;
//! 3. arbitrary regressions — a wrapped counter, a restarted registry, a
//!    log2 histogram whose buckets went backwards — never panic and never
//!    break the internal consistency of a delta histogram (bucket counts
//!    still sum to `count`).

use proptest::prelude::*;

use predator::obs::{
    accumulate, bucket_index, bucket_lower_bound, Bucket, DeltaTracker, HistogramSnapshot, Snapshot,
};

/// Builds a self-consistent histogram snapshot the way the live registry
/// would: every observed value lands in its log2 bucket, `count`/`sum`
/// mirror the observations.
fn hist_from_values(name: &str, values: &[u64]) -> HistogramSnapshot {
    let mut buckets: Vec<Bucket> = Vec::new();
    for &v in values {
        let lo = bucket_lower_bound(bucket_index(v));
        match buckets.iter_mut().find(|b| b.lo == lo) {
            Some(b) => b.count += 1,
            None => buckets.push(Bucket { lo, count: 1 }),
        }
    }
    buckets.sort_by_key(|b| b.lo);
    HistogramSnapshot {
        name: name.into(),
        count: values.len() as u64,
        sum: values.iter().sum(),
        buckets,
    }
}

/// Cumulative snapshot states built from per-scrape *increments*, i.e. a
/// monotone metric history with no restarts.
fn monotone_states(incs: &[(u64, Vec<u64>, i64)]) -> Vec<Snapshot> {
    let mut counter = 0u64;
    let mut observed: Vec<u64> = Vec::new();
    incs.iter()
        .map(|(cinc, hvals, gauge)| {
            counter += cinc;
            observed.extend_from_slice(hvals);
            Snapshot {
                counters: vec![("scrapes_total".into(), counter)],
                gauges: vec![("live_level".into(), *gauge)],
                histograms: vec![hist_from_values("work_ns", &observed)],
            }
        })
        .collect()
}

/// Independent (possibly regressing) snapshot states: each scrape's
/// histogram is rebuilt from scratch, so counts, sums and individual
/// buckets can all go backwards — the wrap-around/restart regime.
fn restarting_states(states: &[(u64, Vec<u64>)]) -> Vec<Snapshot> {
    states
        .iter()
        .map(|(counter, hvals)| Snapshot {
            counters: vec![("scrapes_total".into(), *counter)],
            gauges: vec![("live_level".into(), 0)],
            histograms: vec![hist_from_values("work_ns", hvals)],
        })
        .collect()
}

fn bucket_total(h: &HistogramSnapshot) -> u64 {
    h.buckets.iter().map(|b| b.count).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Monotone histories: every delta equals the increment that produced
    /// it, and summing the deltas reproduces the final cumulative snapshot.
    #[test]
    fn prop_deltas_sum_back_to_cumulative(
        incs in proptest::collection::vec(
            (0u64..1000, proptest::collection::vec(0u64..1_000_000, 0..8), -50i64..50),
            1..12),
    ) {
        let states = monotone_states(&incs);
        let mut tracker = DeltaTracker::new();
        let mut acc = Snapshot::default();
        for (i, (state, (cinc, _, _))) in states.iter().zip(&incs).enumerate() {
            let d = tracker.scrape(state.clone());
            prop_assert_eq!(d.epoch, i as u64 + 1, "epochs count scrapes");
            prop_assert_eq!(d.delta.counters[0].1, *cinc,
                "monotone counter delta is exactly the increment");
            prop_assert_eq!(&d.cumulative, state);
            accumulate(&mut acc, &d.delta);
        }
        let want = states.last().unwrap().clone();
        prop_assert_eq!(acc, want, "accumulated deltas rebuild the cumulative snapshot");
    }

    /// Every delta component is bounded by its cumulative counterpart —
    /// the "never negative, never bogus-huge" restart guarantee — for
    /// arbitrary histories including wrapped counters and histograms whose
    /// log2 buckets went backwards.
    #[test]
    fn prop_wraparound_restarts_cleanly(
        states in proptest::collection::vec(
            (0u64..u64::MAX, proptest::collection::vec(0u64..1_000_000, 0..8)),
            1..12),
    ) {
        let mut tracker = DeltaTracker::new();
        for (counter, hvals) in &states {
            let snap = restarting_states(&[(*counter, hvals.clone())]).remove(0);
            let d = tracker.scrape(snap);
            prop_assert!(d.delta.counters[0].1 <= *counter,
                "delta {} exceeds cumulative {}", d.delta.counters[0].1, counter);
            let dh = &d.delta.histograms[0];
            let ch = &d.cumulative.histograms[0];
            prop_assert!(dh.count <= ch.count, "histogram count delta over-reports");
            prop_assert!(dh.sum <= ch.sum, "histogram sum delta over-reports");
            prop_assert_eq!(bucket_total(dh), dh.count,
                "delta histogram buckets stay consistent with its count");
        }
    }

    /// The JSON document is self-describing: schema tag, the scrape epoch,
    /// and both payloads present on every scrape.
    #[test]
    fn prop_delta_json_carries_schema_and_epoch(
        incs in proptest::collection::vec(
            (0u64..1000, proptest::collection::vec(0u64..1_000_000, 0..4), -50i64..50),
            1..6),
    ) {
        let mut tracker = DeltaTracker::new();
        for (i, state) in monotone_states(&incs).into_iter().enumerate() {
            let json = tracker.scrape(state).to_json();
            let head = format!(
                "{{\"schema\":\"predator-snapshot-delta/1\",\"epoch\":{},", i + 1);
            prop_assert!(json.starts_with(&head), "bad head: {}", json);
            prop_assert!(json.contains("\"delta\":{\"counters\":["));
            prop_assert!(json.contains("\"cumulative\":{\"counters\":["));
        }
    }
}

/// A counter one step from wrap-around followed by a tiny post-wrap value:
/// restart semantics report the post-wrap value itself, never the bogus
/// near-2^64 difference a naive subtraction would produce.
#[test]
fn wrapped_counter_reports_current_value() {
    let mut tracker = DeltaTracker::new();
    tracker.scrape(restarting_states(&[(u64::MAX, vec![])]).remove(0));
    let d = tracker.scrape(restarting_states(&[(3, vec![])]).remove(0));
    assert_eq!(d.delta.counters[0].1, 3);
}

/// A histogram whose buckets regressed (registry restart) is reported as
/// all-new, keeping buckets, count and sum mutually consistent.
#[test]
fn restarted_histogram_reports_itself_consistently() {
    let mut tracker = DeltaTracker::new();
    tracker.scrape(restarting_states(&[(0, vec![100, 100, 7])]).remove(0));
    let d = tracker.scrape(restarting_states(&[(0, vec![5])]).remove(0));
    let h = &d.delta.histograms[0];
    assert_eq!(h.count, 1);
    assert_eq!(h.sum, 5);
    assert_eq!(bucket_total(h), 1);
}
