//! Integration tests for the compiler-instrumentation pipeline:
//! IR construction → instrumentation pass → deterministic execution →
//! detection, and the trace record/replay equivalence.

use predator::instrument::{
    instrument_module, load_jsonl, replay, save_jsonl, BinOp, FunctionBuilder, InstrumentMode,
    InstrumentOptions, Machine, Module, Operand, StepSchedule, ThreadSpec, TraceRecorder,
};
use predator::{build_report, DetectorConfig, ThreadId};
use predator_core::Predator;
use predator_shadow::SimSpace;

/// `fn rmw(slot, n) { for i in 0..n { *slot = *slot + i } }`.
fn rmw_module() -> Module {
    let mut fb = FunctionBuilder::new("rmw", 2);
    let i = fb.reg();
    fb.mov(i, 0i64);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jmp(head);
    fb.select_block(head);
    let c = fb.bin(BinOp::Lt, i, Operand::Reg(1));
    fb.br(c, body, exit);
    fb.select_block(body);
    let cur = fb.load(0u32, 0);
    let nv = fb.bin(BinOp::Add, cur, i);
    fb.store(0u32, 0, Operand::Reg(nv));
    let i2 = fb.bin(BinOp::Add, i, 1i64);
    fb.mov(i, Operand::Reg(i2));
    fb.jmp(head);
    fb.select_block(exit);
    fb.ret(Some(Operand::Reg(nv)));
    Module {
        functions: vec![fb.finish().unwrap()],
    }
}

fn adjacent_threads(space: &SimSpace, n: i64) -> Vec<ThreadSpec> {
    vec![
        ThreadSpec {
            tid: ThreadId(0),
            function: "rmw".into(),
            args: vec![space.base() as i64, n],
        },
        ThreadSpec {
            tid: ThreadId(1),
            function: "rmw".into(),
            args: vec![(space.base() + 8) as i64, n],
        },
    ]
}

fn sensitive() -> DetectorConfig {
    DetectorConfig {
        tracking_threshold: 1,
        report_threshold: 1,
        sampling: false,
        ..DetectorConfig::sensitive()
    }
}

#[test]
fn instrumented_execution_detects_false_sharing() {
    let mut m = rmw_module();
    instrument_module(&mut m, &InstrumentOptions::default());
    let space = SimSpace::new(1 << 16);
    let rt = Predator::for_space(sensitive(), &space);
    let machine = Machine::new(&m, &space, &rt).unwrap();
    let results = machine
        .run(
            &adjacent_threads(&space, 2_000),
            StepSchedule::RoundRobin { quantum: 7 },
            10_000_000,
        )
        .unwrap();
    // Program correctness: final value is sum 0..n-1.
    assert_eq!(results[0], Some((0..2000i64).sum::<i64>()));
    let report = build_report(&rt, None);
    assert!(report.has_observed_false_sharing(), "{report}");
}

#[test]
fn write_only_instrumentation_still_detects_write_write_sharing() {
    let mut m = rmw_module();
    instrument_module(
        &mut m,
        &InstrumentOptions {
            mode: Some(InstrumentMode::WritesOnly),
            ..Default::default()
        },
    );
    let space = SimSpace::new(1 << 16);
    let rt = Predator::for_space(sensitive(), &space);
    let machine = Machine::new(&m, &space, &rt).unwrap();
    machine
        .run(
            &adjacent_threads(&space, 2_000),
            StepSchedule::RoundRobin { quantum: 7 },
            10_000_000,
        )
        .unwrap();
    let report = build_report(&rt, None);
    assert!(report.has_observed_false_sharing(), "{report}");
    // Only writes were delivered.
    assert_eq!(rt.events(), 2 * 2_000);
}

#[test]
fn uninstrumented_module_detects_nothing() {
    let mut m = rmw_module();
    instrument_module(
        &mut m,
        &InstrumentOptions {
            mode: Some(InstrumentMode::None),
            ..Default::default()
        },
    );
    let space = SimSpace::new(1 << 16);
    let rt = Predator::for_space(sensitive(), &space);
    let machine = Machine::new(&m, &space, &rt).unwrap();
    machine
        .run(
            &adjacent_threads(&space, 500),
            StepSchedule::RoundRobin { quantum: 7 },
            10_000_000,
        )
        .unwrap();
    assert_eq!(rt.events(), 0);
    assert!(!build_report(&rt, None).has_false_sharing());
}

#[test]
fn schedule_determines_what_is_observed() {
    // The same program under run-to-completion shows almost nothing —
    // exactly why the paper *predicts* rather than trusting one schedule.
    let mut m = rmw_module();
    instrument_module(&mut m, &InstrumentOptions::default());

    let interleaved = {
        let space = SimSpace::new(1 << 16);
        let rt = Predator::for_space(sensitive(), &space);
        Machine::new(&m, &space, &rt)
            .unwrap()
            .run(
                &adjacent_threads(&space, 1_000),
                StepSchedule::RoundRobin { quantum: 7 },
                10_000_000,
            )
            .unwrap();
        rt.total_invalidations()
    };
    let sequential = {
        let space = SimSpace::new(1 << 16);
        let rt = Predator::for_space(sensitive(), &space);
        Machine::new(&m, &space, &rt)
            .unwrap()
            .run(
                &adjacent_threads(&space, 1_000),
                StepSchedule::RoundRobin { quantum: u64::MAX },
                10_000_000,
            )
            .unwrap();
        rt.total_invalidations()
    };
    assert!(interleaved > 900, "interleaved: {interleaved}");
    assert!(sequential <= 2, "sequential: {sequential}");
}

#[test]
fn trace_replay_reproduces_the_live_report() {
    let mut m = rmw_module();
    instrument_module(&mut m, &InstrumentOptions::default());

    // Live run.
    let space = SimSpace::new(1 << 16);
    let rt_live = Predator::for_space(sensitive(), &space);
    Machine::new(&m, &space, &rt_live)
        .unwrap()
        .run(
            &adjacent_threads(&space, 1_000),
            StepSchedule::Seeded(7),
            10_000_000,
        )
        .unwrap();
    let live = build_report(&rt_live, None);

    // Recorded run with the same seed on a fresh space.
    let space2 = SimSpace::new(1 << 16);
    let rec = TraceRecorder::new();
    Machine::new(&m, &space2, &rec)
        .unwrap()
        .run(
            &adjacent_threads(&space2, 1_000),
            StepSchedule::Seeded(7),
            10_000_000,
        )
        .unwrap();

    // Roundtrip the trace through JSON and replay.
    let mut buf = Vec::new();
    save_jsonl(&rec.events(), &mut buf).unwrap();
    let events = load_jsonl(std::io::Cursor::new(buf)).unwrap();
    let rt_replay = Predator::new(sensitive(), space.base(), 1 << 16);
    replay(&events, &rt_replay);
    let replayed = build_report(&rt_replay, None);

    assert_eq!(
        live.findings, replayed.findings,
        "live and replayed reports agree"
    );
    assert_eq!(live.stats.events, replayed.stats.events);
}

#[test]
fn selective_instrumentation_does_not_change_the_verdict() {
    // §2.4.2: "less tracking inside a basic block … does not affect the
    // overall behavior of cache invalidations." Build a block with redundant
    // accesses and compare verdicts (not exact counts) between selective and
    // exhaustive instrumentation.
    let build = |no_selective: bool| {
        let mut m = {
            let mut fb = FunctionBuilder::new("noisy", 2);
            let i = fb.reg();
            fb.mov(i, 0i64);
            let head = fb.new_block();
            let body = fb.new_block();
            let exit = fb.new_block();
            fb.jmp(head);
            fb.select_block(head);
            let c = fb.bin(BinOp::Lt, i, Operand::Reg(1));
            fb.br(c, body, exit);
            fb.select_block(body);
            // Redundant: read the slot three times, write twice.
            let a = fb.load(0u32, 0);
            let _b = fb.load(0u32, 0);
            let _c2 = fb.load(0u32, 0);
            let nv = fb.bin(BinOp::Add, a, i);
            fb.store(0u32, 0, Operand::Reg(nv));
            fb.store(0u32, 0, Operand::Reg(nv));
            let i2 = fb.bin(BinOp::Add, i, 1i64);
            fb.mov(i, Operand::Reg(i2));
            fb.jmp(head);
            fb.select_block(exit);
            fb.ret(None);
            Module {
                functions: vec![fb.finish().unwrap()],
            }
        };
        let stats = instrument_module(
            &mut m,
            &InstrumentOptions {
                no_selective,
                ..Default::default()
            },
        );
        (m, stats)
    };

    let (sel_m, sel_stats) = build(false);
    let (exh_m, exh_stats) = build(true);
    assert!(sel_stats.probes_inserted < exh_stats.probes_inserted);

    let verdict = |m: &Module| {
        let space = SimSpace::new(1 << 16);
        let rt = Predator::for_space(sensitive(), &space);
        Machine::new(m, &space, &rt)
            .unwrap()
            .run(
                &[
                    ThreadSpec {
                        tid: ThreadId(0),
                        function: "noisy".into(),
                        args: vec![space.base() as i64, 1_000],
                    },
                    ThreadSpec {
                        tid: ThreadId(1),
                        function: "noisy".into(),
                        args: vec![(space.base() + 8) as i64, 1_000],
                    },
                ],
                StepSchedule::RoundRobin { quantum: 11 },
                10_000_000,
            )
            .unwrap();
        build_report(&rt, None).has_observed_false_sharing()
    };
    assert!(verdict(&sel_m));
    assert!(verdict(&exh_m));
}
