//! In-process exercise of the telemetry endpoints behind `predator serve`.
//!
//! Spins the hand-rolled HTTP server on an ephemeral port with the same
//! `/metrics` + `/snapshot` handlers the CLI installs, seeds probe metrics
//! with known values, and proves the acceptance property: a `/metrics`
//! scrape parses as Prometheus text and **byte-matches** the fields of the
//! `ObsSnapshot` mirror captured from the same registry.

use std::time::Duration;

use predator::core::ObsSnapshot;
use predator::obs::{global, http_get, DeltaTracker, HttpServer, Response};
use std::sync::Mutex;

/// Splits a Prometheus text body into `(series, value)` pairs, failing the
/// test on any line that does not parse.
fn parse_prometheus(body: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable metrics line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric sample in line: {line:?}"));
        out.push((series.to_string(), value));
    }
    out
}

#[test]
fn metrics_scrape_parses_and_matches_the_registry_snapshot() {
    // Probe metrics with names no other code path touches: their values
    // are stable across the capture-then-scrape window.
    let g = global();
    g.counter("serve_http_probe_total").add(42);
    g.gauge("serve_http_probe_level").set(-7);
    g.histogram("serve_http_probe_ns").record(100);
    g.histogram("serve_http_probe_ns").record(3000);

    let delta = Mutex::new(DeltaTracker::new());
    let srv = HttpServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = srv.local_addr().to_string();
    let handle = srv
        .route("/metrics", |_| {
            Response::prometheus(global().snapshot().to_prometheus())
        })
        .route("/snapshot", move |_| {
            Response::json(delta.lock().unwrap().scrape(global().snapshot()).to_json())
        })
        .spawn()
        .expect("spawn server");

    let mirror = ObsSnapshot::capture();
    let (status, body) = http_get(&addr, "/metrics", Duration::from_secs(5)).expect("scrape");
    assert_eq!(status, 200);

    // The whole body parses as Prometheus text exposition format.
    let series = parse_prometheus(&body);
    assert!(!series.is_empty());

    // Byte-match against the embedded-snapshot mirror: the exact sample
    // lines the mirror's fields imply must appear in the scraped text.
    let count = mirror
        .counter("serve_http_probe_total")
        .expect("probe counter in mirror");
    assert_eq!(count, 42);
    assert!(
        body.contains("\nserve_http_probe_total 42\n"),
        "counter line byte-matches the mirror:\n{body}"
    );
    assert!(
        body.contains("\nserve_http_probe_level -7\n"),
        "gauge line byte-matches the mirror:\n{body}"
    );
    let hist = mirror
        .histograms
        .iter()
        .find(|h| h.name == "serve_http_probe_ns")
        .expect("probe histogram in mirror");
    assert!(body.contains(&format!("\nserve_http_probe_ns_sum {}\n", hist.sum)));
    assert!(body.contains(&format!("\nserve_http_probe_ns_count {}\n", hist.count)));
    assert!(body.contains(&format!(
        "serve_http_probe_ns_bucket{{le=\"+Inf\"}} {}\n",
        hist.count
    )));

    // /snapshot: first scrape is epoch 1 and reports the probe counter in
    // both payloads; a second scrape after an increment carries exactly the
    // increment in `delta` and the new total in `cumulative`.
    let (status, snap1) = http_get(&addr, "/snapshot", Duration::from_secs(5)).expect("scrape");
    assert_eq!(status, 200);
    assert!(snap1.starts_with("{\"schema\":\"predator-snapshot-delta/1\",\"epoch\":1,"));
    assert!(snap1.contains("{\"name\":\"serve_http_probe_total\",\"value\":42}"));

    g.counter("serve_http_probe_total").add(5);
    let (status, snap2) = http_get(&addr, "/snapshot", Duration::from_secs(5)).expect("scrape");
    assert_eq!(status, 200);
    assert!(snap2.starts_with("{\"schema\":\"predator-snapshot-delta/1\",\"epoch\":2,"));
    let (delta_part, cumulative_part) = snap2
        .split_once("\"cumulative\":")
        .expect("delta document has both payloads");
    assert!(
        delta_part.contains("{\"name\":\"serve_http_probe_total\",\"value\":5}"),
        "delta carries the increment: {delta_part}"
    );
    assert!(
        cumulative_part.contains("{\"name\":\"serve_http_probe_total\",\"value\":47}"),
        "cumulative carries the new total: {cumulative_part}"
    );

    // Unknown paths 404 without killing the server.
    let (status, _) = http_get(&addr, "/nope", Duration::from_secs(5)).expect("scrape");
    assert_eq!(status, 404);

    handle.stop();
}
