//! End-to-end integration tests: the paper's evaluation matrix as
//! executable assertions.
//!
//! Every workload's broken variant must produce exactly the detection
//! outcome Table 1 / §4.1.2 report (observed, prediction-only, or clean),
//! and no fixed variant may show *observed* false sharing. These tests span
//! all crates: workloads → session → allocator → shadow → detector → report.

use predator::workloads::{all, by_name, run_and_report, Expectation, Variant, WorkloadConfig};
use predator::{DetectorConfig, FindingKind, Session, SharingClass};

/// Per-workload detector calibration: sensitive thresholds, except
/// streamcluster whose fixed variant *reduces* (not eliminates) traffic and
/// therefore needs the volume-based threshold the paper's defaults provide.
fn det_for(name: &str) -> DetectorConfig {
    match name {
        "streamcluster" => DetectorConfig {
            report_threshold: 60,
            ..DetectorConfig::sensitive()
        },
        _ => DetectorConfig::sensitive(),
    }
}

fn cfg_for(name: &str) -> WorkloadConfig {
    // Volume-sensitive workloads need enough iterations for their patterns.
    let iters = match name {
        "streamcluster" | "pfscan" => 2_000,
        "kmeans" | "blackscholes" | "bodytrack" | "aget" | "pbzip2" | "fluidanimate" => 1_024,
        "matrix_multiply" | "pca" => 400,
        _ => 2_000,
    };
    WorkloadConfig {
        iters,
        ..WorkloadConfig::quick()
    }
}

#[test]
fn table1_detection_matrix_matches_paper() {
    for w in all() {
        let name = w.name();
        let det = det_for(name);
        let report = run_and_report(w.as_ref(), det, &cfg_for(name));
        match w.expectation() {
            Expectation::Clean => {
                assert!(
                    !report.has_false_sharing(),
                    "{name}: expected clean, got:\n{report}"
                );
            }
            Expectation::Observed => {
                assert!(
                    report.has_observed_false_sharing(),
                    "{name}: expected observed false sharing, got:\n{report}"
                );
            }
            Expectation::PredictedOnly => {
                assert!(
                    !report.has_observed_false_sharing(),
                    "{name}: nothing should be observed, got:\n{report}"
                );
                assert!(
                    report.has_predicted_false_sharing(),
                    "{name}: prediction must catch the latent problem, got:\n{report}"
                );
            }
        }
    }
}

#[test]
fn no_fixed_variant_shows_observed_false_sharing() {
    for w in all() {
        let name = w.name();
        let det = det_for(name);
        let cfg = cfg_for(name).with_variant(Variant::Fixed);
        let report = run_and_report(w.as_ref(), det, &cfg);
        assert!(
            !report.has_observed_false_sharing(),
            "{name} (fixed): observed false sharing should be gone, got:\n{report}"
        );
    }
}

#[test]
fn prediction_only_cases_vanish_without_prediction() {
    // The linear_regression property that motivates the whole paper.
    for w in all() {
        if w.expectation() != Expectation::PredictedOnly {
            continue;
        }
        let mut det = det_for(w.name());
        det.prediction = false;
        let report = run_and_report(w.as_ref(), det, &cfg_for(w.name()));
        assert!(
            !report.has_false_sharing(),
            "{}: PREDATOR-NP must miss the latent case, got:\n{report}",
            w.name()
        );
    }
}

#[test]
fn no_false_positives_anywhere() {
    // "PREDATOR identifies problems … with no false positives": every
    // false-sharing finding must come from a workload that actually has one.
    for w in all() {
        if w.expectation() != Expectation::Clean {
            continue;
        }
        let report = run_and_report(w.as_ref(), det_for(w.name()), &cfg_for(w.name()));
        let fp = report.false_sharing().next().cloned();
        if let Some(f) = fp {
            panic!(
                "{}: false positive finding {:?} on clean workload:\n{f}",
                w.name(),
                f.kind
            );
        }
    }
}

#[test]
fn figure5_report_shape_for_linear_regression() {
    let w = by_name("linear_regression").unwrap();
    let report = run_and_report(
        w.as_ref(),
        DetectorConfig::sensitive(),
        &WorkloadConfig {
            iters: 600,
            ..WorkloadConfig::quick()
        },
    );
    let f = report.false_sharing().next().expect("a finding");
    let text = f.to_string();
    // The Figure 5 ingredients: classification + object span, counts line,
    // callsite stack, word-level lines with global line indices.
    assert!(
        text.contains("FALSE SHARING HEAP OBJECT: start 0x"),
        "{text}"
    );
    assert!(text.contains("Number of accesses:"), "{text}");
    assert!(text.contains("Number of invalidations:"), "{text}");
    assert!(text.contains("./stddefines.h:53"), "{text}");
    assert!(text.contains("./linear_regression-pthread.c:133"), "{text}");
    assert!(text.contains("Word level information:"), "{text}");
    assert!(
        text.contains("(line 1677"),
        "global line indices like 16777217: {text}"
    );
    assert!(text.contains("by thread"), "{text}");
}

#[test]
fn reports_rank_by_severity() {
    // Two problems of very different intensity: the ranking must put the
    // severe one first.
    let session = Session::new(DetectorConfig::sensitive(), 1 << 20);
    let t0 = session.register_thread();
    let t1 = session.register_thread();
    let hot = session.malloc(t0, 64, predator::Callsite::here()).unwrap();
    let mild = session.malloc(t0, 64, predator::Callsite::here()).unwrap();
    for i in 0..2_000u64 {
        session.write::<u64>(t0, hot.start, i);
        session.write::<u64>(t1, hot.start + 8, i);
        if i % 20 == 0 {
            session.write::<u64>(t0, mild.start, i);
            session.write::<u64>(t1, mild.start + 8, i);
        }
    }
    let report = session.report();
    let fs: Vec<_> = report.false_sharing().collect();
    assert!(fs.len() >= 2, "{report}");
    assert_eq!(fs[0].object.start, hot.start, "severe finding ranked first");
    assert!(fs[0].invalidations > fs[1].invalidations);
}

#[test]
fn true_sharing_never_reported_as_false() {
    let session = Session::new(DetectorConfig::sensitive(), 1 << 20);
    let t0 = session.register_thread();
    let t1 = session.register_thread();
    let counter = session.global("global_counter", 8);
    for _ in 0..2_000 {
        session.fetch_add(t0, counter, 1);
        session.fetch_add(t1, counter, 1);
    }
    let report = session.report();
    assert!(!report.has_false_sharing(), "{report}");
    let ts = report
        .findings
        .iter()
        .find(|f| f.class == SharingClass::TrueSharing)
        .expect("true sharing should be classified");
    assert_eq!(ts.kind, FindingKind::Observed);
}

#[test]
fn json_report_roundtrips_across_the_api() {
    let w = by_name("histogram").unwrap();
    let report = run_and_report(
        w.as_ref(),
        DetectorConfig::sensitive(),
        &WorkloadConfig::quick(),
    );
    let json = report.to_json();
    let back: predator::Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    assert!(back.has_observed_false_sharing());
}
