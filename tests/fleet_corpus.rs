//! End-to-end tests of the fleet corpus pipeline: a 1-file corpus must
//! reproduce `predator analyze` exactly, the merged N-corpus report must be
//! independent of ingest order, corrupted members must degrade to loss
//! accounting (never an error), and compaction must preserve merged totals.

use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use predator::core::{DetectorConfig, Report, Session};
use predator::fleet::{build_fleet_report, compact, ingest, trend, FleetReport, Manifest};
use predator::sim::{Access, ThreadId};
use predator::trace::{analyze_file, AnalyzeConfig, TraceMeta, TraceSink, TraceWriter};
use predator::workloads::{by_name, Variant, WorkloadConfig};

static DIRS: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per call (tests and proptest cases run
/// concurrently in one process).
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "predator-fleet-it-{}-{name}-{}",
        std::process::id(),
        DIRS.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Findings + run stats, serialised. The `obs` section is excluded: it
/// snapshots process-global telemetry that accumulates across tests.
fn essence(r: &Report) -> String {
    format!(
        "{}\n{}",
        serde_json::to_string(&r.findings).unwrap(),
        serde_json::to_string(&r.stats).unwrap()
    )
}

/// Everything observable about a merged fleet report except the `obs`
/// snapshot (process-global, accumulates across tests).
fn fleet_essence(r: &FleetReport) -> String {
    format!(
        "{}|{}|{}|{}",
        r.runs,
        r.events,
        serde_json::to_string(&r.loss).unwrap(),
        serde_json::to_string(&r.aggregates).unwrap()
    )
}

/// Records a workload run to `path` the way `predator record` does.
fn record_workload(name: &str, cfg: &WorkloadConfig, path: &Path) -> u64 {
    let mut det = DetectorConfig::sensitive();
    det.enabled = false;
    let session = Session::with_config(det);
    let file = std::fs::File::create(path).unwrap();
    let sink = Arc::new(
        TraceSink::create(
            std::io::BufWriter::new(file),
            session.space().base(),
            session.space().size(),
        )
        .unwrap(),
    );
    session.runtime().install_tap(sink.clone()).unwrap();
    by_name(name).unwrap().run_tracked(&session, cfg);
    let meta = TraceMeta::capture(session.runtime(), session.heap());
    sink.finish(&meta).unwrap().events
}

const BASE: u64 = 0x4000_0000;
const SIZE: u64 = 1 << 22;

/// Writes a synthetic ping-pong trace: two threads alternate on adjacent
/// words of `regions` well-separated cache lines, `rounds` writes each.
fn write_pingpong(path: &Path, regions: u64, rounds: u64, salt: u64) {
    let f = std::fs::File::create(path).unwrap();
    let mut w = TraceWriter::create(BufWriter::new(f), BASE, SIZE).unwrap();
    let mut events = Vec::new();
    for i in 0..rounds {
        for r in 0..regions {
            let rbase = BASE + (r + salt) * 0x8000;
            events.push(Access::write(
                ThreadId((i % 2) as u16),
                rbase + (i % 2) * 8,
                8,
            ));
        }
    }
    w.write_events(&events).unwrap();
    w.finish().unwrap();
}

#[test]
fn one_file_corpus_reproduces_analyze_exactly() {
    let cfg = WorkloadConfig {
        threads: 4,
        iters: 2_000,
        seed: 42,
        variant: Variant::Broken,
    };
    let trace = scratch("identity").with_extension("ptrace");
    let recorded = record_workload("histogram", &cfg, &trace);
    assert!(recorded > 0);

    let det = DetectorConfig::sensitive();
    let acfg = AnalyzeConfig::new(det, 2);
    let direct = analyze_file(&trace, &acfg, 0, 0).unwrap();
    assert!(direct.report.has_observed_false_sharing());

    let corpus = scratch("identity-corpus");
    let outcomes = ingest(&corpus, std::slice::from_ref(&trace), &acfg).unwrap();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].added);
    assert_eq!(outcomes[0].events, direct.events);

    // The stored per-run report is byte-for-byte what `analyze` produced
    // (modulo the process-global obs section, excluded by convention).
    let m = Manifest::load_required(&corpus).unwrap();
    let entry = m.find(&outcomes[0].id).unwrap();
    let stored = Report {
        findings: entry.findings.clone(),
        stats: entry.stats,
        obs: direct.report.obs.clone(),
    };
    assert_eq!(essence(&stored), essence(&direct.report));

    // The merged view of a 1-run corpus ranks exactly the run's findings.
    let fleet = build_fleet_report(&m);
    assert_eq!(fleet.runs, 1);
    assert_eq!(fleet.events, direct.events);
    assert_eq!(fleet.aggregates.len(), {
        let mut keys: Vec<String> = direct
            .report
            .findings
            .iter()
            .map(|f| f.callsite_key())
            .collect();
        keys.sort();
        keys.dedup();
        keys.len()
    });
    for a in &fleet.aggregates {
        assert_eq!(a.runs, 1);
        assert_eq!(a.hit_rate, 1.0);
        assert_eq!(a.provenance.len(), 1);
        assert_eq!(a.provenance[0].trace, outcomes[0].id);
    }

    // Re-ingesting the identical bytes is a no-op: the corpus is a set.
    let again = ingest(&corpus, std::slice::from_ref(&trace), &acfg).unwrap();
    assert!(!again[0].added);
    let m2 = Manifest::load_required(&corpus).unwrap();
    assert_eq!(m2.runs(), 1);
    assert_eq!(
        fleet_essence(&build_fleet_report(&m2)),
        fleet_essence(&fleet)
    );

    std::fs::remove_file(&trace).ok();
    std::fs::remove_dir_all(&corpus).ok();
}

#[test]
fn corrupted_member_degrades_to_loss_accounting() {
    let clean = scratch("clean").with_extension("ptrace");
    let damaged = scratch("damaged").with_extension("ptrace");
    write_pingpong(&clean, 2, 400, 0);
    write_pingpong(&damaged, 2, 400, 8);

    // Flip bytes in the middle: a CRC-framed chunk goes bad, the reader
    // resyncs, and the member ingests with counted loss — no error.
    let mut bytes = std::fs::read(&damaged).unwrap();
    let mid = bytes.len() / 2;
    let end = (mid + 32).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b ^= 0xFF;
    }
    std::fs::write(&damaged, bytes).unwrap();

    let corpus = scratch("loss-corpus");
    let acfg = AnalyzeConfig::new(DetectorConfig::sensitive(), 2);
    let outcomes = ingest(&corpus, &[clean.clone(), damaged.clone()], &acfg).unwrap();
    assert!(outcomes.iter().all(|o| o.added));

    let m = Manifest::load_required(&corpus).unwrap();
    let report = build_fleet_report(&m);
    assert_eq!(report.runs, 2);
    assert!(
        report.loss.any(),
        "mid-file corruption must surface as corpus loss accounting"
    );
    assert!(report.loss.records_lost > 0 || report.loss.chunks_skipped > 0);
    // The clean member stays pristine in the manifest.
    let clean_entry = m
        .traces
        .iter()
        .find(|t| t.file.starts_with("predator-fleet-it") && !t.loss.any())
        .or_else(|| m.traces.iter().find(|t| !t.loss.any()));
    assert!(clean_entry.is_some(), "one member must be loss-free");

    std::fs::remove_file(&clean).ok();
    std::fs::remove_file(&damaged).ok();
    std::fs::remove_dir_all(&corpus).ok();
}

#[test]
fn compaction_preserves_merged_totals_and_reclaims_files() {
    let corpus = scratch("compact-corpus");
    let acfg = AnalyzeConfig::new(DetectorConfig::sensitive(), 2);
    let mut paths = Vec::new();
    for i in 0..3u64 {
        let p = scratch(&format!("compact-{i}")).with_extension("ptrace");
        write_pingpong(&p, 2, 300, i); // overlapping + disjoint regions
        paths.push(p);
    }
    ingest(&corpus, &paths, &acfg).unwrap();
    let before = build_fleet_report(&Manifest::load_required(&corpus).unwrap());
    assert_eq!(before.runs, 3);

    let out = compact(&corpus, 1).unwrap();
    assert_eq!(out.dropped, 2);
    assert_eq!(out.kept, 1);
    assert!(out.bytes_reclaimed > 0);
    let raw_left = std::fs::read_dir(&corpus)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "ptrace")
        })
        .count();
    assert_eq!(raw_left, 1, "dropped members' raw files are deleted");

    // Merged mass is exactly preserved; only per-run provenance is spent.
    let after = build_fleet_report(&Manifest::load_required(&corpus).unwrap());
    assert_eq!(after.runs, before.runs);
    assert_eq!(after.events, before.events);
    let totals = |r: &FleetReport| -> Vec<(String, u64, u64)> {
        r.aggregates
            .iter()
            .map(|a| (a.key.clone(), a.total_invalidations, a.runs))
            .collect()
    };
    assert_eq!(totals(&after), totals(&before));

    // Compacting an already-compacted corpus is idempotent on totals.
    compact(&corpus, 1).unwrap();
    let again = build_fleet_report(&Manifest::load_required(&corpus).unwrap());
    assert_eq!(totals(&again), totals(&before));

    for p in &paths {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_dir_all(&corpus).ok();
}

#[test]
fn trend_classifies_against_baseline_corpus() {
    let acfg = AnalyzeConfig::new(DetectorConfig::sensitive(), 2);
    let a = scratch("trend-a").with_extension("ptrace");
    let b = scratch("trend-b").with_extension("ptrace");
    write_pingpong(&a, 2, 300, 0); // regions 0,1
    write_pingpong(&b, 2, 300, 1); // regions 1,2 — region 2 is new

    let base_dir = scratch("trend-base");
    let cur_dir = scratch("trend-cur");
    ingest(&base_dir, std::slice::from_ref(&a), &acfg).unwrap();
    ingest(&cur_dir, std::slice::from_ref(&b), &acfg).unwrap();

    let base = build_fleet_report(&Manifest::load_required(&base_dir).unwrap());
    let cur = build_fleet_report(&Manifest::load_required(&cur_dir).unwrap());
    let t = trend(&base, &cur, 0.5);
    assert!(t.has_regressions(), "a new callsite must gate");
    assert!(t
        .entries
        .iter()
        .any(|e| { matches!(e.status, predator::fleet::TrendStatus::New) }));
    assert!(t
        .entries
        .iter()
        .any(|e| { matches!(e.status, predator::fleet::TrendStatus::Fixed) }));
    // Same corpus against itself: all steady, nothing gates.
    let same = trend(&cur, &cur, 0.5);
    assert!(!same.has_regressions());

    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    std::fs::remove_dir_all(&base_dir).ok();
    std::fs::remove_dir_all(&cur_dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The merged report is a pure function of the member *set*: any
    /// ingest-order permutation of the same traces produces the identical
    /// report (aggregates, ranking, provenance, first/last seen).
    #[test]
    fn prop_merged_report_is_ingest_order_independent(
        specs in proptest::collection::vec((1u64..4, 50u64..200, 0u64..6), 2..5),
        rotate in 0usize..4,
    ) {
        let mut paths = Vec::new();
        for (i, &(regions, rounds, salt)) in specs.iter().enumerate() {
            let p = scratch(&format!("perm-{i}")).with_extension("ptrace");
            write_pingpong(&p, regions, rounds, salt);
            paths.push(p);
        }
        let acfg = AnalyzeConfig::new(DetectorConfig::sensitive(), 2);

        let forward = scratch("perm-fwd");
        ingest(&forward, &paths, &acfg).unwrap();
        let fwd = build_fleet_report(&Manifest::load_required(&forward).unwrap());

        // Reverse, then rotate: an arbitrary-looking permutation.
        let mut shuffled: Vec<_> = paths.iter().rev().cloned().collect();
        let k = rotate % shuffled.len();
        shuffled.rotate_left(k);
        let permuted = scratch("perm-rev");
        ingest(&permuted, &shuffled, &acfg).unwrap();
        let rev = build_fleet_report(&Manifest::load_required(&permuted).unwrap());

        prop_assert_eq!(fleet_essence(&fwd), fleet_essence(&rev));

        for p in &paths {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_dir_all(&forward).ok();
        std::fs::remove_dir_all(&permuted).ok();
    }
}
