//! The canonical sharing patterns, end to end: each synthetic pattern from
//! `predator::sim::patterns` must classify exactly as the literature says —
//! including the §2.4.2 write-only-mode tradeoff (read-write false sharing
//! becomes invisible) and the latency of striped layouts under doubled
//! lines.

use predator::core::{build_report, DetectorConfig, Predator};
use predator::sim::interleave::{interleave, Schedule};
use predator::sim::patterns::{generate, Pattern};
use predator::{Report, SharingClass};

const BASE: u64 = 0x4000_0000;

fn run_pattern(pattern: Pattern, per_thread: usize, cfg: DetectorConfig) -> Report {
    let rt = Predator::new(cfg, BASE, 1 << 20);
    let script = generate(pattern, per_thread);
    for a in interleave(&script, &Schedule::RoundRobin) {
        rt.handle_access(a.tid, a.addr, a.size, a.kind);
    }
    build_report(&rt, None)
}

fn sensitive() -> DetectorConfig {
    DetectorConfig::sensitive()
}

#[test]
fn ping_pong_is_observed_false_sharing() {
    let r = run_pattern(
        Pattern::PingPong {
            threads: 4,
            base: BASE,
        },
        500,
        sensitive(),
    );
    assert!(r.has_observed_false_sharing(), "{r}");
    let f = r.false_sharing().next().unwrap();
    assert_eq!(f.class, SharingClass::FalseSharing);
    assert!(
        f.invalidations > 1_000,
        "round-robin thrashes: {}",
        f.invalidations
    );
}

#[test]
fn true_share_is_never_false_sharing() {
    let r = run_pattern(
        Pattern::TrueShare {
            threads: 4,
            addr: BASE,
        },
        500,
        sensitive(),
    );
    assert!(!r.has_false_sharing(), "{r}");
    assert!(r
        .findings
        .iter()
        .any(|f| f.class == SharingClass::TrueSharing));
}

#[test]
fn striped_detection_depends_on_stride() {
    // Stride 8: four threads in one line → observed.
    let tight = run_pattern(
        Pattern::Striped {
            threads: 4,
            base: BASE,
            stride: 8,
        },
        500,
        sensitive(),
    );
    assert!(tight.has_observed_false_sharing(), "{tight}");

    // Stride 64: clean today, latent for 128-byte lines → predicted only.
    let line = run_pattern(
        Pattern::Striped {
            threads: 4,
            base: BASE,
            stride: 64,
        },
        500,
        sensitive(),
    );
    assert!(!line.has_observed_false_sharing(), "{line}");
    assert!(line.has_predicted_false_sharing(), "{line}");

    // Stride 128: robustly clean under the paper's scenarios.
    let wide = run_pattern(
        Pattern::Striped {
            threads: 4,
            base: BASE,
            stride: 128,
        },
        500,
        sensitive(),
    );
    assert!(!wide.has_false_sharing(), "{wide}");

    // …but the 4x-line extension flags stride 128 as latent for 256-byte
    // hardware.
    let mut ext = sensitive();
    ext.max_scale_log2 = 2;
    let wide_ext = run_pattern(
        Pattern::Striped {
            threads: 4,
            base: BASE,
            stride: 128,
        },
        500,
        ext,
    );
    assert!(wide_ext.has_predicted_false_sharing(), "{wide_ext}");
}

#[test]
fn reader_writer_false_sharing_needs_read_instrumentation() {
    let pattern = Pattern::ReaderWriter {
        threads: 3,
        base: BASE,
    };
    // Full instrumentation sees the read-write sharing.
    let full = run_pattern(pattern, 500, sensitive());
    assert!(full.has_observed_false_sharing(), "{full}");

    // Write-only mode (the SHERIFF tradeoff, §2.4.2) misses it: only one
    // thread ever writes, so there is nothing to invalidate.
    let mut wo = sensitive();
    wo.instrument_reads = false;
    let write_only = run_pattern(pattern, 500, wo);
    assert!(!write_only.has_false_sharing(), "{write_only}");
}

#[test]
fn random_mix_never_panics_and_is_deterministic() {
    let pattern = Pattern::RandomMix {
        threads: 4,
        base: BASE,
        lines: 8,
        write_pct: 60,
        seed: 42,
    };
    let a = run_pattern(pattern, 2_000, sensitive());
    let b = run_pattern(pattern, 2_000, sensitive());
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.stats.events, 8_000);
    // Uniform random traffic over whole lines from all threads is mostly
    // *true-ish* sharing (words hit by many threads); whatever is reported,
    // nothing may crash and counts must be conserved.
    assert!(a.stats.observed_invalidations <= 8_000);
}
