//! End-to-end tests of the `.ptrace` record → sharded-analyze pipeline:
//! a recorded Table-1 workload must reproduce the live detector's findings
//! exactly, the binary format must beat JSONL on size, sharding must beat
//! sequential analysis on wall-clock for big traces, and damaged files must
//! degrade into counted loss — never panics.

use std::io::BufReader;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use predator::core::{build_report, DetectorConfig, Predator, Report, Session};
use predator::sim::{Access, ThreadId};
use predator::trace::{
    analyze_events, analyze_file, save_jsonl, AnalyzeConfig, TraceMeta, TraceReader, TraceSink,
};
use predator::workloads::{by_name, run_and_report, Variant, WorkloadConfig};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "predator-trace-it-{}-{name}.ptrace",
        std::process::id()
    ))
}

/// Findings + run stats, serialised. The `obs` section is excluded: it
/// snapshots process-global telemetry that accumulates across tests.
fn essence(r: &Report) -> String {
    format!(
        "{}\n{}",
        serde_json::to_string(&r.findings).unwrap(),
        serde_json::to_string(&r.stats).unwrap()
    )
}

/// Records a workload run to `path` the way `predator record` does:
/// detection off, the raw pre-filter stream tapped into a [`TraceSink`],
/// attribution metadata captured at the end.
fn record_workload(name: &str, cfg: &WorkloadConfig, path: &std::path::Path) -> u64 {
    let mut det = DetectorConfig::sensitive();
    det.enabled = false;
    let session = Session::with_config(det);
    let file = std::fs::File::create(path).unwrap();
    let sink = Arc::new(
        TraceSink::create(
            std::io::BufWriter::new(file),
            session.space().base(),
            session.space().size(),
        )
        .unwrap(),
    );
    session.runtime().install_tap(sink.clone()).unwrap();
    by_name(name).unwrap().run_tracked(&session, cfg);
    let meta = TraceMeta::capture(session.runtime(), session.heap());
    sink.finish(&meta).unwrap().events
}

#[test]
fn record_then_analyze_reproduces_live_findings() {
    // histogram is one of the two Table-1 bugs the paper was first to
    // report, and its tracked run is deterministic — live and recorded
    // executions see the identical access stream.
    let cfg = WorkloadConfig {
        threads: 4,
        iters: 2_000,
        seed: 42,
        variant: Variant::Broken,
    };
    let det = DetectorConfig::sensitive();
    let live = run_and_report(by_name("histogram").unwrap().as_ref(), det, &cfg);
    assert!(
        live.has_observed_false_sharing(),
        "live run must find the bug:\n{live}"
    );
    assert!(
        live.findings
            .iter()
            .any(|f| f.to_string().contains("histogram-pthread.c:213")),
        "live attribution names the paper's callsite"
    );

    let path = tmp("histogram");
    let recorded = record_workload("histogram", &cfg, &path);
    assert!(recorded > 0);
    for shards in [1usize, 4] {
        let out = analyze_file(&path, &AnalyzeConfig::new(det, shards), 0, 0).unwrap();
        assert!(!out.loss.any(), "clean file, clean read");
        assert!(out.meta_applied, "attribution metadata travels in the file");
        assert_eq!(out.events, recorded);
        assert_eq!(
            essence(&out.report),
            essence(&live),
            "offline shards={shards} must reproduce the live report"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn ptrace_is_at_least_5x_smaller_than_jsonl() {
    let cfg = WorkloadConfig {
        threads: 4,
        iters: 4_000,
        seed: 42,
        variant: Variant::Broken,
    };
    let path = tmp("size");
    let recorded = record_workload("histogram", &cfg, &path);
    let ptrace_bytes = std::fs::metadata(&path).unwrap().len();

    let file = std::fs::File::open(&path).unwrap();
    let events: Vec<Access> = TraceReader::new(BufReader::new(file)).unwrap().collect();
    assert_eq!(events.len() as u64, recorded, "decode must be lossless");
    let mut jsonl = Vec::new();
    save_jsonl(&events, &mut jsonl).unwrap();

    assert!(
        jsonl.len() as u64 >= 5 * ptrace_bytes,
        "expected ≥5x: .ptrace {} bytes vs JSONL {} bytes ({:.1}x)",
        ptrace_bytes,
        jsonl.len(),
        jsonl.len() as f64 / ptrace_bytes as f64
    );
    std::fs::remove_file(&path).ok();
}

/// Two threads ping-pong on adjacent words in several well-separated
/// regions — multiple independent clusters, false sharing in each.
fn multi_cluster_trace(regions: u64, per_region: u64, base: u64) -> Vec<Access> {
    let mut out = Vec::with_capacity((regions * per_region) as usize);
    for i in 0..per_region {
        for r in 0..regions {
            let rbase = base + r * 0x10000;
            out.push(Access::write(
                ThreadId((i % 2) as u16),
                rbase + (i % 2) * 8,
                8,
            ));
        }
    }
    out
}

#[test]
fn sharded_analysis_beats_sequential_on_large_trace() {
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        < 4
    {
        eprintln!("skipping: needs >= 4 cores");
        return;
    }
    let base = 0x4000_0000u64;
    let size = 1u64 << 24;
    // ≥ 1M events spread over 8 non-interacting clusters.
    let events = multi_cluster_trace(8, 150_000, base);
    assert!(events.len() >= 1_000_000);
    let det = DetectorConfig::sensitive();
    let run = |shards: usize| -> (Duration, String) {
        let t = Instant::now();
        let out = analyze_events(&events, base, size, None, &AnalyzeConfig::new(det, shards));
        (t.elapsed(), essence(&out.report))
    };
    // Best of two runs each, interleaved, to shrug off scheduler noise.
    let (t1a, e1) = run(1);
    let (t4a, e4) = run(4);
    let (t1b, _) = run(1);
    let (t4b, _) = run(4);
    assert_eq!(e1, e4, "shard count must not change the report");
    let t1 = t1a.min(t1b);
    let t4 = t4a.min(t4b);
    assert!(
        t4 < t1.mul_f64(0.9),
        "4 shards should beat 1 by >10%: shards1={t1:?} shards4={t4:?}"
    );
}

#[test]
fn truncated_trace_analyzes_with_counted_loss() {
    let cfg = WorkloadConfig {
        threads: 4,
        iters: 1_000,
        seed: 42,
        variant: Variant::Broken,
    };
    let path = tmp("trunc");
    record_workload("histogram", &cfg, &path);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let cut = tmp("trunc-cut");
    std::fs::write(&cut, &bytes[..bytes.len() * 3 / 5]).unwrap();
    let out = analyze_file(
        &cut,
        &AnalyzeConfig::new(DetectorConfig::sensitive(), 4),
        0,
        0,
    )
    .expect("truncation is loss, not an error");
    assert!(out.loss.truncated, "must notice the missing trailer");
    assert!(out.events > 0, "intact prefix still analysed");
    std::fs::remove_file(&cut).ok();
}

#[test]
fn flipped_byte_loses_one_chunk_not_the_file() {
    let cfg = WorkloadConfig {
        threads: 4,
        iters: 1_000,
        seed: 42,
        variant: Variant::Broken,
    };
    let path = tmp("flip");
    let recorded = record_workload("histogram", &cfg, &path);
    let mut bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Flip a byte in the middle of the file — lands in some chunk payload.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    let damaged = tmp("flip-damaged");
    std::fs::write(&damaged, &bytes).unwrap();
    let out = analyze_file(
        &damaged,
        &AnalyzeConfig::new(DetectorConfig::sensitive(), 2),
        0,
        0,
    )
    .expect("a flipped byte is loss, not an error");
    assert!(out.loss.chunks_skipped >= 1, "the damaged chunk is skipped");
    assert_eq!(
        out.events + out.loss.records_lost,
        recorded,
        "every record is either delivered or counted lost"
    );
    std::fs::remove_file(&damaged).ok();
}

#[test]
fn unknown_schema_version_is_a_clean_error() {
    let cfg = WorkloadConfig {
        threads: 2,
        iters: 200,
        seed: 42,
        variant: Variant::Broken,
    };
    let path = tmp("version");
    record_workload("histogram", &cfg, &path);
    let mut bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    bytes[6] = 0x2a; // version word (LE) right after the 6-byte magic
    let future = tmp("version-future");
    std::fs::write(&future, &bytes).unwrap();
    let err = analyze_file(
        &future,
        &AnalyzeConfig::new(DetectorConfig::sensitive(), 1),
        0,
        0,
    )
    .expect_err("an unknown version must not be guessed at");
    assert!(err.contains("version"), "error names the problem: {err}");
    std::fs::remove_file(&future).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary multi-region access patterns, sharded analysis at 2,
    /// 4, and 8 shards reproduces the sequential detector's findings and
    /// stats exactly.
    #[test]
    fn prop_sharded_equals_sequential(
        ops in proptest::collection::vec(
            // (region, word, is_write) per op; threads alternate per op.
            (0u64..4, 0u64..16, prop::bool::ANY), 60..400),
        threads in 2u16..4,
    ) {
        let base = 0x4000_0000u64;
        let size = 1u64 << 22;
        let events: Vec<Access> = ops
            .iter()
            .enumerate()
            .map(|(i, &(region, word, is_write))| {
                let tid = ThreadId((i as u64 % threads as u64) as u16);
                let addr = base + region * 0x8000 + word * 8;
                if is_write {
                    Access::write(tid, addr, 8)
                } else {
                    Access::read(tid, addr, 8)
                }
            })
            .collect();
        let det = DetectorConfig::sensitive();
        let seq = {
            let rt = Predator::new(det, base, size);
            for a in &events {
                rt.handle_access(a.tid, a.addr, a.size, a.kind);
            }
            build_report(&rt, None)
        };
        for shards in [2usize, 4, 8] {
            let out =
                analyze_events(&events, base, size, None, &AnalyzeConfig::new(det, shards));
            prop_assert_eq!(
                essence(&out.report),
                essence(&seq),
                "shards={} diverged", shards
            );
        }
    }
}
