//! Robustness of detection across sampling rates and thresholds — the
//! Figure 10 claim ("even when using the 0.1% sampling rate, PREDATOR is
//! still able to detect all false sharing problems reported here, although
//! it reports a lower number of cache invalidations") as executable tests.

use predator::workloads::{by_name, run_and_report, WorkloadConfig};
use predator::DetectorConfig;

/// Thresholds scaled for heavy-traffic runs with sampling: enough writes to
/// cross tracking at any rate tested.
fn det(rate: f64) -> DetectorConfig {
    DetectorConfig {
        tracking_threshold: 32,
        prediction_threshold: 64,
        report_threshold: 4,
        ..DetectorConfig::paper()
    }
    .with_sampling_rate(rate)
}

fn heavy_cfg() -> WorkloadConfig {
    WorkloadConfig {
        iters: 20_000,
        ..WorkloadConfig::quick()
    }
}

#[test]
fn all_paper_problems_survive_low_sampling() {
    // Use a sampling window small enough that a 20k-iteration run spans
    // multiple windows at every rate.
    for name in [
        "histogram",
        "linear_regression",
        "reverse_index",
        "word_count",
    ] {
        let w = by_name(name).unwrap();
        for rate in [0.001, 0.01, 0.1] {
            let mut d = det(rate);
            d.sample_interval = 10_000;
            d.sample_burst = (10_000.0 * rate) as u64;
            let report = run_and_report(w.as_ref(), d, &heavy_cfg());
            assert!(
                report.has_false_sharing(),
                "{name} missed at sampling rate {rate}:\n{report}"
            );
        }
    }
}

#[test]
fn lower_rates_report_fewer_invalidations() {
    let w = by_name("histogram").unwrap();
    let inv_at = |rate: f64| {
        let mut d = det(rate);
        d.sample_interval = 10_000;
        d.sample_burst = (10_000.0 * rate) as u64;
        let report = run_and_report(w.as_ref(), d, &heavy_cfg());
        report
            .false_sharing()
            .map(|f| f.invalidations)
            .max()
            .unwrap_or(0)
    };
    let low = inv_at(0.001);
    let mid = inv_at(0.01);
    let high = inv_at(0.1);
    assert!(
        low < mid && mid < high,
        "invalidations must scale with rate: {low} {mid} {high}"
    );
    assert!(low > 0);
}

#[test]
fn sampling_does_not_create_false_positives() {
    for name in ["blackscholes", "memcached", "pfscan", "string_match"] {
        let w = by_name(name).unwrap();
        let report = run_and_report(w.as_ref(), det(0.01), &heavy_cfg());
        assert!(
            !report.has_false_sharing(),
            "{name} false positive:\n{report}"
        );
    }
}

#[test]
fn tracking_threshold_gates_detection() {
    // An input too small to reach the threshold is missed (the paper's
    // "Input Size" discussion, §5.2); a larger one is caught.
    let w = by_name("histogram").unwrap();
    let d = DetectorConfig {
        tracking_threshold: 100_000, // unreachably high for this input
        ..DetectorConfig::sensitive()
    };
    let report = run_and_report(w.as_ref(), d, &WorkloadConfig::quick());
    assert!(!report.has_false_sharing(), "{report}");

    let d = DetectorConfig {
        tracking_threshold: 64,
        ..DetectorConfig::sensitive()
    };
    let report = run_and_report(w.as_ref(), d, &WorkloadConfig::quick());
    assert!(report.has_false_sharing(), "{report}");
}

#[test]
fn report_threshold_filters_insignificant_cases() {
    // The paper: "Increasing PREDATOR's reporting threshold would avoid
    // reporting these [insignificant] cases." reverse_index's counters are
    // mild; a high bar suppresses them, a low bar keeps them.
    let w = by_name("reverse_index").unwrap();
    let low = DetectorConfig {
        report_threshold: 10,
        ..DetectorConfig::sensitive()
    };
    assert!(run_and_report(w.as_ref(), low, &WorkloadConfig::quick()).has_false_sharing());
    let high = DetectorConfig {
        report_threshold: 1_000_000,
        ..DetectorConfig::sensitive()
    };
    assert!(!run_and_report(w.as_ref(), high, &WorkloadConfig::quick()).has_false_sharing());
}

#[test]
fn write_only_mode_still_catches_write_write_sharing() {
    let w = by_name("histogram").unwrap();
    let d = DetectorConfig {
        instrument_reads: false,
        ..DetectorConfig::sensitive()
    };
    let report = run_and_report(w.as_ref(), d, &WorkloadConfig::quick());
    assert!(report.has_false_sharing(), "{report}");
}

#[test]
fn detection_is_deterministic_across_runs() {
    // The logical round-robin schedule makes tracked runs exactly
    // repeatable: same config → identical reports.
    let w = by_name("linear_regression").unwrap();
    let cfg = WorkloadConfig {
        iters: 600,
        ..WorkloadConfig::quick()
    };
    let a = run_and_report(w.as_ref(), DetectorConfig::sensitive(), &cfg);
    let b = run_and_report(w.as_ref(), DetectorConfig::sensitive(), &cfg);
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.stats.events, b.stats.events);
    assert_eq!(
        a.stats.observed_invalidations,
        b.stats.observed_invalidations
    );
}
