//! End-to-end: the self-overhead watchdog against a live detector runtime.
//!
//! The acceptance property for `predator serve`'s adaptive sampling, proven
//! on real components (a `Session` with its allocator, the runtime's dynamic
//! hooks, the calibrate/evaluate/apply loop): **sustained budget violations
//! shed sampling**, and **a new allocation site re-arms the detector to its
//! full configured rate immediately**.
//!
//! The cost model is constructed with synthetic unit costs (1ms per access
//! against a 1ns wall interval) so every tick that saw any workload access
//! is a guaranteed violation — the control path under test is the real one,
//! only the measurement is pinned.

use predator::core::{
    BackoffAction, BackoffConfig, BackoffController, Callsite, DetectorConfig, SelfCostModel,
    Session, Watchdog,
};

#[test]
fn backoff_sheds_sampling_under_violation_and_rearms_on_new_site() {
    let det = DetectorConfig::paper();
    let base_rate = det.sampling_rate();
    assert!(base_rate > 0.0, "paper config samples");

    let sess = Session::with_config(det);
    let t0 = sess.register_thread();
    let obj = sess.malloc(t0, 256, Callsite::here()).expect("malloc");
    assert_eq!(
        sess.runtime().sampling_rate(),
        base_rate,
        "starts at the configured rate"
    );
    assert_eq!(sess.runtime().analysis_stride(), 1);

    let mut wd = Watchdog::new(
        SelfCostModel::with_costs(1e6, 1e6),
        BackoffController::new(BackoffConfig::for_detector(&det, 0.05)),
    );
    let transitions_before = predator::obs::global()
        .counter("predator_backoff_transitions_total")
        .get();

    // Drive workload accesses between ticks; the synthetic cost model turns
    // each interval into a >100% overhead reading. The first tick sees the
    // initial malloc as a new site (streak reset, no transition); the
    // controller's `sustain` violations later it must escalate.
    let mut wall = 0u64;
    let mut escalation = None;
    for _ in 0..32 {
        for i in 0..64u64 {
            sess.write::<u64>(t0, obj.start + (i % 16) * 8, i);
        }
        wall += 1;
        let callsites = sess.heap().callsites().len() as u64;
        let out = wd.tick(sess.runtime(), callsites, wall);
        if out.decision.tier >= 1 {
            escalation = Some(out);
            break;
        }
    }
    let out = escalation.expect("sustained violation escalates within 32 ticks");
    assert_eq!(out.decision.action, BackoffAction::Escalated);
    assert!(
        out.overhead > 0.05,
        "escalation was driven by a violation: {}",
        out.overhead
    );
    assert!(
        sess.runtime().sampling_rate() < base_rate,
        "runtime sampling rate was lowered: {} vs {}",
        sess.runtime().sampling_rate(),
        base_rate
    );
    assert!(
        sess.runtime().analysis_stride() > 1,
        "analysis stride was widened"
    );

    // A malloc from a *new* callsite re-arms on the very next tick — no
    // sustain streak, no modulo gate — restoring the configured rate.
    let _fresh = sess.malloc(t0, 64, Callsite::here()).expect("malloc");
    wall += 1;
    let callsites = sess.heap().callsites().len() as u64;
    let out = wd.tick(sess.runtime(), callsites, wall);
    assert_eq!(out.decision.action, BackoffAction::Rearmed);
    assert_eq!(out.decision.tier, 0);
    assert_eq!(
        sess.runtime().sampling_rate(),
        base_rate,
        "re-arm restores the configured sampling rate"
    );
    assert_eq!(sess.runtime().analysis_stride(), 1);
    assert_eq!(wd.controller().tier(), 0);

    // Both transitions (escalate, re-arm) are observable in the registry.
    let transitions_after = predator::obs::global()
        .counter("predator_backoff_transitions_total")
        .get();
    assert!(
        transitions_after >= transitions_before + 2,
        "transitions counter advanced: {transitions_before} -> {transitions_after}"
    );
    assert_eq!(
        predator::obs::global().gauge("predator_backoff_tier").get(),
        0,
        "tier gauge reflects the re-armed state"
    );
}
