//! Cross-validation of the detector's invalidation model against the MESI
//! coherence simulator (the ground-truth substrate).
//!
//! The paper's §2.1 claim — a write to a line previously touched by another
//! thread "most likely causes at least one cache invalidation" — is made
//! precise here: for any access sequence, the two-entry history table counts
//! exactly the MESI write transactions that invalidate at least one remote
//! copy (assuming one thread per core with private caches, the paper's
//! §2.1 model). The full detector, configured without thresholds or
//! sampling, must inherit that exactness line by line.

use proptest::prelude::*;

use predator::core::{DetectorConfig, Predator};
use predator::sim::interleave::{interleave, Schedule, Script};
use predator::sim::mesi::{MesiSim, MesiStats};
use predator::sim::patterns::{generate, Pattern};
use predator::sim::{Access, AccessKind, CacheGeometry, ThreadId};

const BASE: u64 = 0x4000_0000;

fn exact_config() -> DetectorConfig {
    DetectorConfig {
        tracking_threshold: 1,
        report_threshold: 1,
        sampling: false,
        prediction: false,
        ..DetectorConfig::paper()
    }
}

/// Replays `accesses` into both a fresh detector and a fresh MESI system,
/// returning (detector line invalidations, MESI line invalidation events)
/// for `line`.
///
/// Even at `tracking_threshold: 1` the detector has a startup window: reads
/// before the first write are invisible (§2.4.1 counts only writes below
/// the threshold), and the threshold-crossing write itself only seeds the
/// counter. Each can hide one invalidation, so the detector may lag MESI by
/// up to 2 per line — and never exceeds it.
fn run_both(accesses: &[Access], cores: usize, line: u64) -> (u64, u64) {
    let rt = Predator::new(exact_config(), BASE, 1 << 20);
    let mut mesi = MesiSim::new(cores, CacheGeometry::new(64));
    for a in accesses {
        rt.handle_access(a.tid, a.addr, a.size, a.kind);
        mesi.access(a.tid, a.addr, a.size, a.kind);
    }
    let geom = CacheGeometry::new(64);
    let idx = ((geom.line_start(line) - BASE) / 64) as usize;
    let det = rt.line_snapshot(idx).map(|s| s.invalidations).unwrap_or(0);
    (det, mesi.line_invalidations(line))
}

#[test]
fn ping_pong_matches_exactly() {
    let accesses: Vec<Access> = (0..1000)
        .map(|i| Access::write(ThreadId((i % 2) as u16), BASE + (i % 2) * 8, 8))
        .collect();
    let (det, mesi) = run_both(&accesses, 2, BASE >> 6);
    // The detector's very first write seeds the CacheWrites counter
    // (threshold 1) before the track exists, so it can lag MESI by at most
    // one write's worth of bookkeeping.
    assert!(mesi - det <= 1, "detector {det} vs MESI {mesi}");
    assert!(det >= 995);
}

#[test]
fn single_writer_with_readers_matches() {
    // Writer on word 0, two readers on words 1 and 2: every write after the
    // readers touch the line invalidates.
    let mut accesses = Vec::new();
    for i in 0..300u64 {
        accesses.push(Access::write(ThreadId(0), BASE, 8));
        if i % 3 == 0 {
            accesses.push(Access::read(ThreadId(1), BASE + 8, 8));
        }
        if i % 5 == 0 {
            accesses.push(Access::read(ThreadId(2), BASE + 16, 8));
        }
    }
    let (det, mesi) = run_both(&accesses, 3, BASE >> 6);
    assert!(mesi.abs_diff(det) <= 1, "detector {det} vs MESI {mesi}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary single-line scripts under arbitrary schedules, the
    /// unthresholded, unsampled detector and MESI agree to within the single
    /// bootstrap write consumed by the CacheWrites counter.
    #[test]
    fn prop_detector_matches_mesi_on_one_line(
        per_thread in proptest::collection::vec(
            proptest::collection::vec((0u64..8, prop::bool::ANY), 1..80), 2..4),
        seed in 0u64..500,
    ) {
        let n = per_thread.len();
        let mut script = Script::new(n);
        for (t, ops) in per_thread.iter().enumerate() {
            for &(word, w) in ops {
                let a = if w {
                    Access::write(ThreadId(t as u16), BASE + word * 8, 8)
                } else {
                    Access::read(ThreadId(t as u16), BASE + word * 8, 8)
                };
                script.push(t, a);
            }
        }
        let merged = interleave(&script, &Schedule::Seeded(seed));
        let (det, mesi) = run_both(&merged, n, BASE >> 6);
        // Never overcounts; the startup window (pre-threshold reads are
        // invisible by design, §2.4.1, plus the one bootstrap write) can
        // hide at most two invalidations.
        prop_assert!(det <= mesi, "detector {det} overcounts MESI {mesi}");
        prop_assert!(mesi - det <= 2,
            "detector {det} vs MESI {mesi} for {} accesses", merged.len());
    }

    /// Multi-line random traffic: summed detector invalidations never exceed
    /// MESI's (the bootstrap write per line can only make the detector
    /// undercount), and track within #lines.
    #[test]
    fn prop_multiline_totals_bracket_mesi(
        ops in proptest::collection::vec((0u16..4, 0u64..32, prop::bool::ANY), 10..400),
        seed in 0u64..100,
    ) {
        let _ = seed;
        let rt = Predator::new(exact_config(), BASE, 1 << 20);
        let mut mesi = MesiSim::new(4, CacheGeometry::new(64));
        let mut lines = std::collections::HashSet::new();
        for &(tid, word, w) in &ops {
            let addr = BASE + word * 8;
            lines.insert(addr >> 6);
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            rt.handle_access(ThreadId(tid), addr, 8, kind);
            mesi.access(ThreadId(tid), addr, 8, kind);
        }
        let det_total: u64 = (0..rt.layout().lines())
            .filter_map(|i| rt.line_snapshot(i))
            .map(|s| s.invalidations)
            .sum();
        let mesi_total = mesi.stats().invalidation_events;
        prop_assert!(det_total <= mesi_total);
        prop_assert!(mesi_total - det_total <= 2 * lines.len() as u64,
            "undercount bounded by the per-line startup window");
    }
}

/// The shrunken case behind the committed regression seed in
/// `history_vs_mesi.proptest-regressions` (cc c6da958d…): three threads on
/// one word — a lone write, a read-then-write, and a lone read — under
/// `Schedule::Seeded(229)`. Promoted to an always-run test so the
/// historical failure keeps running even if the proptest harness or its
/// seed-file handling changes.
#[test]
fn regression_seed_229_read_write_braid() {
    let per_thread: [&[(u64, bool)]; 3] = [&[(0, true)], &[(0, false), (0, true)], &[(0, false)]];
    let mut script = Script::new(per_thread.len());
    for (t, ops) in per_thread.iter().enumerate() {
        for &(word, w) in *ops {
            let a = if w {
                Access::write(ThreadId(t as u16), BASE + word * 8, 8)
            } else {
                Access::read(ThreadId(t as u16), BASE + word * 8, 8)
            };
            script.push(t, a);
        }
    }
    let merged = interleave(&script, &Schedule::Seeded(229));
    let (det, mesi) = run_both(&merged, per_thread.len(), BASE >> 6);
    assert!(det <= mesi, "detector {det} overcounts MESI {mesi}");
    assert!(mesi - det <= 2, "detector {det} vs MESI {mesi}");
}

#[test]
fn detector_with_thresholds_only_undercounts() {
    // With realistic thresholds the detector sees strictly less than MESI —
    // never more (no spurious invalidations).
    let accesses: Vec<Access> = (0..5_000)
        .map(|i| Access::write(ThreadId((i % 3) as u16), BASE + (i % 6) * 8, 8))
        .collect();
    let rt = Predator::new(DetectorConfig::paper(), BASE, 1 << 20);
    let mut mesi = MesiSim::new(3, CacheGeometry::new(64));
    for a in &accesses {
        rt.handle_access(a.tid, a.addr, a.size, a.kind);
        mesi.access(a.tid, a.addr, a.size, a.kind);
    }
    let det = rt.total_invalidations();
    assert!(det <= mesi.stats().invalidation_events);
    assert!(det > 0, "still detects the bulk of the traffic");
}

/// THE prediction-correctness test: the doubled-line verification units
/// must count what a real machine with 128-byte lines would suffer. Run the
/// same trace through (a) the detector with prediction at 64-byte lines and
/// (b) MESI at 128-byte lines, and compare the doubled-vline invalidation
/// counts against MESI's per-line events.
#[test]
fn doubled_line_prediction_matches_mesi_at_128_bytes() {
    use predator::core::predict::UnitKind;

    // The linear_regression shape: t0 hot at the end of line 0, t1 hot at
    // the start of line 1 — invisible at 64 B, real at 128 B.
    let accesses: Vec<Access> = (0..4000)
        .flat_map(|_| {
            [
                Access::write(ThreadId(0), BASE + 56, 8),
                Access::write(ThreadId(1), BASE + 64, 8),
            ]
        })
        .collect();

    let cfg = DetectorConfig {
        tracking_threshold: 1,
        prediction_threshold: 64,
        report_threshold: 1,
        sampling: false,
        prediction: true,
        ..DetectorConfig::paper()
    };
    let rt = Predator::new(cfg, BASE, 1 << 20);
    let mut mesi128 = MesiSim::new(2, CacheGeometry::new(128));
    for a in &accesses {
        rt.handle_access(a.tid, a.addr, a.size, a.kind);
        mesi128.access(a.tid, a.addr, a.size, a.kind);
    }

    // No physical (64 B) invalidations…
    assert_eq!(rt.total_invalidations(), 0);
    // …but the doubled virtual line verified nearly all the 128-byte ones.
    let doubled: u64 = rt
        .unit_snapshots()
        .iter()
        .filter(|u| u.key.kind == UnitKind::Doubled)
        .map(|u| u.invalidations)
        .sum();
    let mesi = mesi128.line_invalidations(BASE >> 7);
    assert!(mesi > 7000, "sanity: the 128B machine thrashes ({mesi})");
    // The unit only starts counting once the prediction threshold triggers
    // the hot-pair analysis, so it lags by a bounded prefix.
    assert!(
        doubled <= mesi,
        "prediction must not overcount: {doubled} vs {mesi}"
    );
    assert!(
        mesi - doubled < 200,
        "verified invalidations track the real 128B machine: {doubled} vs {mesi}"
    );
}

// ---------------------------------------------------------------------------
// Cross-geometry differential suite: the detector/MESI agreement must hold
// at every portfolio line size (32/64/128/256 bytes), and splitting the MESI
// cores into NUMA-style coherence domains must leave the invalidation ground
// truth untouched (domains only relabel traffic as local or cross-domain).

fn exact_config_at(geom: CacheGeometry) -> DetectorConfig {
    DetectorConfig {
        geometry: geom,
        ..exact_config()
    }
}

/// Replays `accesses` through the unthresholded detector and a MESI system
/// at `geom`, with the MESI cores split into `domains` coherence domains.
/// Returns (detector invalidation total, MESI stats).
fn run_both_at(
    accesses: &[Access],
    cores: usize,
    geom: CacheGeometry,
    domains: usize,
) -> (u64, MesiStats) {
    let rt = Predator::new(exact_config_at(geom), BASE, 1 << 20);
    let mut mesi = MesiSim::with_domains(cores, geom, domains);
    for a in accesses {
        rt.handle_access(a.tid, a.addr, a.size, a.kind);
        mesi.access(a.tid, a.addr, a.size, a.kind);
    }
    (rt.total_invalidations(), mesi.stats())
}

fn threads_of(p: &Pattern) -> usize {
    match *p {
        Pattern::PingPong { threads, .. }
        | Pattern::TrueShare { threads, .. }
        | Pattern::Striped { threads, .. }
        | Pattern::ReaderWriter { threads, .. }
        | Pattern::RandomMix { threads, .. } => threads,
    }
}

/// The canonical pattern matrix as a proptest strategy: every synthetic
/// sharing shape from `predator::sim::patterns`, with randomized knobs.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (2usize..=4).prop_map(|threads| Pattern::PingPong {
            threads,
            base: BASE
        }),
        (2usize..=4).prop_map(|threads| Pattern::TrueShare {
            threads,
            addr: BASE
        }),
        (
            2usize..=4,
            prop_oneof![
                Just(8u64),
                Just(16),
                Just(32),
                Just(64),
                Just(128),
                Just(256)
            ]
        )
            .prop_map(|(threads, stride)| Pattern::Striped {
                threads,
                base: BASE,
                stride
            }),
        (2usize..=4).prop_map(|threads| Pattern::ReaderWriter {
            threads,
            base: BASE
        }),
        (2usize..=4, 1u64..8, 0u8..=100, 0u64..1000).prop_map(
            |(threads, lines, write_pct, seed)| Pattern::RandomMix {
                threads,
                base: BASE,
                lines,
                write_pct,
                seed
            }
        ),
    ]
}

/// Striped writers at stride 64: every thread owns its own 64-byte line, so
/// 32- and 64-byte machines are silent — but 128- and 256-byte lines fold
/// two (or four) writers onto one line and thrash. The detector must agree
/// with MESI on both sides of the boundary.
#[test]
fn striped_stride_64_is_clean_below_128_byte_lines_and_thrashes_above() {
    let script = generate(
        Pattern::Striped {
            threads: 4,
            base: BASE,
            stride: 64,
        },
        500,
    );
    let merged = interleave(&script, &Schedule::RoundRobin);
    for ls in [32u64, 64] {
        let (det, mesi) = run_both_at(&merged, 4, CacheGeometry::new(ls), 1);
        assert_eq!(mesi.invalidation_events, 0, "{ls}B lines must be clean");
        assert_eq!(det, 0, "{ls}B lines must be clean for the detector too");
    }
    for ls in [128u64, 256] {
        let (det, mesi) = run_both_at(&merged, 4, CacheGeometry::new(ls), 1);
        assert!(
            mesi.invalidation_events > 500,
            "{ls}B lines must thrash: {}",
            mesi.invalidation_events
        );
        assert!(det <= mesi.invalidation_events, "detector overcounts");
        assert!(
            mesi.invalidation_events - det <= 4,
            "{ls}B: detector {det} vs MESI {} beyond the startup window",
            mesi.invalidation_events
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every pattern in the matrix and every portfolio geometry, the
    /// unthresholded detector never overcounts MESI, and its undercount is
    /// bounded by the per-line startup window (2 per touched line).
    #[test]
    fn prop_portfolio_geometries_bracket_mesi(
        pattern in arb_pattern(),
        per_thread in 20usize..120,
        seed in 0u64..500,
    ) {
        let script = generate(pattern, per_thread);
        let merged = interleave(&script, &Schedule::Seeded(seed));
        let cores = threads_of(&pattern);
        for ls in CacheGeometry::PORTFOLIO_LINE_SIZES {
            let geom = CacheGeometry::new(ls);
            let (det, mesi) = run_both_at(&merged, cores, geom, 1);
            let lines: std::collections::HashSet<u64> =
                merged.iter().map(|a| geom.line_index(a.addr)).collect();
            prop_assert!(
                det <= mesi.invalidation_events,
                "detector {det} overcounts MESI {} at {ls}B lines",
                mesi.invalidation_events
            );
            prop_assert!(
                mesi.invalidation_events - det <= 2 * lines.len() as u64,
                "detector {det} vs MESI {} at {ls}B lines over {} line(s)",
                mesi.invalidation_events, lines.len()
            );
        }
    }

    /// Splitting the cores into coherence domains is pure accounting: the
    /// invalidation ground truth is bit-identical at every portfolio
    /// geometry, and the cross-domain tallies stay within the totals.
    #[test]
    fn prop_multi_domain_mesi_preserves_ground_truth(
        pattern in arb_pattern(),
        per_thread in 20usize..120,
        seed in 0u64..500,
        domains in 1usize..=4,
    ) {
        let script = generate(pattern, per_thread);
        let merged = interleave(&script, &Schedule::Seeded(seed));
        let cores = threads_of(&pattern);
        let domains = domains.min(cores);
        for ls in CacheGeometry::PORTFOLIO_LINE_SIZES {
            let geom = CacheGeometry::new(ls);
            let (det, flat) = run_both_at(&merged, cores, geom, 1);
            let (_, split) = run_both_at(&merged, cores, geom, domains);
            prop_assert_eq!(flat.invalidation_events, split.invalidation_events);
            prop_assert_eq!(flat.lines_invalidated, split.lines_invalidated);
            prop_assert!(split.cross_domain_events <= split.invalidation_events);
            prop_assert!(split.cross_domain_lines <= split.lines_invalidated);
            if domains == 1 {
                prop_assert_eq!(split.cross_domain_lines, 0);
            }
            prop_assert!(det <= split.invalidation_events);
        }
    }
}

/// Same idea for the remap scenario: shift the whole trace by the predicted
/// delta and check a real 64-byte machine at that placement suffers what
/// the remap unit verified.
#[test]
fn remap_prediction_matches_mesi_at_shifted_placement() {
    use predator::core::predict::UnitKind;

    let accesses: Vec<Access> = (0..4000)
        .flat_map(|_| {
            [
                Access::write(ThreadId(0), BASE + 56, 8),
                Access::write(ThreadId(1), BASE + 64, 8),
            ]
        })
        .collect();
    let cfg = DetectorConfig {
        tracking_threshold: 1,
        prediction_threshold: 64,
        report_threshold: 1,
        sampling: false,
        prediction: true,
        ..DetectorConfig::paper()
    };
    let rt = Predator::new(cfg, BASE, 1 << 20);
    for a in &accesses {
        rt.handle_access(a.tid, a.addr, a.size, a.kind);
    }
    let remap = rt
        .unit_snapshots()
        .into_iter()
        .find(|u| matches!(u.key.kind, UnitKind::Remap { .. }))
        .expect("remap unit");
    let UnitKind::Remap { delta } = remap.key.kind else {
        unreachable!()
    };

    // Re-run the trace on a real 64-byte MESI machine with the object
    // shifted so that the predicted partition becomes the physical one:
    // shifting every address by (line_size - delta) makes old virtual-line
    // boundaries real line boundaries.
    let shift = 64 - delta;
    let mut mesi = MesiSim::new(2, CacheGeometry::new(64));
    for a in &accesses {
        mesi.access(a.tid, a.addr + shift, a.size, a.kind);
    }
    let shifted_line = (BASE + 56 + shift) >> 6;
    let mesi_inv = mesi.line_invalidations(shifted_line);
    assert!(
        mesi_inv > 7000,
        "sanity: the shifted placement thrashes ({mesi_inv})"
    );
    assert!(remap.invalidations <= mesi_inv);
    assert!(
        mesi_inv - remap.invalidations < 200,
        "verified remap invalidations track the shifted machine: {} vs {mesi_inv}",
        remap.invalidations
    );
}
