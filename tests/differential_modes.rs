//! Differential oracle for the lock-free tracking mode: on any
//! deterministic (serialized) feed, `relaxed` must produce findings and run
//! statistics identical to `precise` — the mutexed implementation is the
//! executable specification, the lock-free one must never be *observably*
//! different when there is no concurrency to blur the order of accesses.
//!
//! Two layers:
//!
//! * a deterministic matrix — every canonical sharing pattern under
//!   round-robin and seeded schedules, across configs that exercise
//!   promotion edges, prediction units, and the scaled virtual lines;
//! * a property test over arbitrary two-line scripts and schedules. The
//!   vendored proptest shim does not shrink, so any divergence is reduced
//!   here with a ddmin pass over the flattened feed before reporting — the
//!   panic message carries a locally 1-minimal reproducing interleaving.

use proptest::prelude::*;

use predator::core::{build_report, DetectorConfig, Predator, TrackingMode};
use predator::sim::interleave::{interleave, Schedule, Script};
use predator::sim::patterns::{generate, Pattern};
use predator::sim::{Access, ThreadId};
use predator::Report;

const BASE: u64 = 0x4000_0000;

fn run_feed(feed: &[Access], cfg: DetectorConfig) -> Report {
    let rt = Predator::new(cfg, BASE, 1 << 20);
    for a in feed {
        rt.handle_access(a.tid, a.addr, a.size, a.kind);
    }
    build_report(&rt, None)
}

/// Reports for both modes on an identical feed. `report.obs` is never
/// compared: observability counters are process-global and accumulate
/// across tests, so they differ between any two runs by construction.
fn pair(feed: &[Access], cfg: DetectorConfig) -> (Report, Report) {
    (
        run_feed(feed, cfg.with_tracking_mode(TrackingMode::Precise)),
        run_feed(feed, cfg.with_tracking_mode(TrackingMode::Relaxed)),
    )
}

fn diverges(feed: &[Access], cfg: DetectorConfig) -> bool {
    let (p, r) = pair(feed, cfg);
    p.findings != r.findings || p.stats != r.stats
}

/// ddmin over the access feed: repeatedly delete chunks (halving the chunk
/// size whenever a whole pass removes nothing) while the divergence
/// persists. Ends at a feed where no single access can be removed.
fn ddmin(feed: &[Access], cfg: DetectorConfig) -> Vec<Access> {
    let mut cur: Vec<Access> = feed.to_vec();
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.drain(i..(i + chunk).min(cand.len()));
            if !cand.is_empty() && diverges(&cand, cfg) {
                cur = cand;
                removed = true;
            } else {
                i += chunk;
            }
        }
        if !removed {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        } else {
            chunk = chunk.min(cur.len().max(1));
        }
    }
    cur
}

/// Asserts mode equivalence; on divergence, shrinks first so the failure
/// message is a minimal interleaving rather than a thousand-access feed.
fn assert_equivalent(feed: &[Access], cfg: DetectorConfig, ctx: &str) {
    if !diverges(feed, cfg) {
        return;
    }
    let min = ddmin(feed, cfg);
    let (p, r) = pair(&min, cfg);
    panic!(
        "relaxed diverges from precise [{ctx}]\n\
         minimal feed ({} accesses): {:#?}\n\
         precise findings: {:#?}\nrelaxed findings: {:#?}\n\
         precise stats: {:?}\nrelaxed stats: {:?}",
        min.len(),
        min,
        p.findings,
        r.findings,
        p.stats,
        r.stats
    );
}

fn configs() -> Vec<(DetectorConfig, &'static str)> {
    let mut scaled = DetectorConfig::sensitive();
    scaled.max_scale_log2 = 2;
    let exact = DetectorConfig {
        tracking_threshold: 1,
        report_threshold: 1,
        sampling: false,
        ..DetectorConfig::sensitive()
    };
    vec![
        (DetectorConfig::sensitive(), "sensitive"),
        (scaled, "sensitive+4x-lines"),
        (exact, "unthresholded"),
    ]
}

#[test]
fn matrix_of_patterns_and_schedules_agrees() {
    let patterns = [
        Pattern::PingPong {
            threads: 4,
            base: BASE,
        },
        Pattern::TrueShare {
            threads: 4,
            addr: BASE,
        },
        Pattern::Striped {
            threads: 4,
            base: BASE,
            stride: 8,
        },
        Pattern::Striped {
            threads: 4,
            base: BASE,
            stride: 64,
        },
        Pattern::ReaderWriter {
            threads: 3,
            base: BASE,
        },
        Pattern::RandomMix {
            threads: 4,
            base: BASE,
            lines: 8,
            write_pct: 60,
            seed: 42,
        },
    ];
    let schedules = [
        Schedule::RoundRobin,
        Schedule::Seeded(7),
        Schedule::Seeded(229),
        Schedule::Seeded(9001),
    ];
    for pattern in patterns {
        for schedule in &schedules {
            let feed = interleave(&generate(pattern, 400), schedule);
            for (cfg, name) in configs() {
                assert_equivalent(&feed, cfg, &format!("{pattern:?} / {schedule:?} / {name}"));
            }
        }
    }
}

/// The exact threshold edge: writes landing precisely on multiples of the
/// prediction threshold are where relaxed batching could legally defer an
/// analysis pass — it must not.
#[test]
fn threshold_multiples_agree() {
    let cfg = DetectorConfig::sensitive(); // prediction_threshold 16
    for extra in 0..=2u64 {
        let n = 16 * 3 + extra; // land just on / just past the promotion edge
        let feed: Vec<Access> = (0..n * 2)
            .map(|i| Access::write(ThreadId((i % 2) as u16), BASE + (i % 2) * 8, 8))
            .collect();
        assert_equivalent(&feed, cfg, &format!("edge feed, {extra} past multiple"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary scripts spanning two adjacent lines (words 0..16) under
    /// arbitrary seeded schedules: two lines means hot-pair search and
    /// prediction-unit feeds run, not just per-line counting.
    #[test]
    fn prop_relaxed_equals_precise_on_serialized_feeds(
        per_thread in proptest::collection::vec(
            proptest::collection::vec((0u64..16, prop::bool::ANY), 1..60), 2..4),
        seed in 0u64..1000,
    ) {
        let n = per_thread.len();
        let mut script = Script::new(n);
        for (t, ops) in per_thread.iter().enumerate() {
            for &(word, w) in ops {
                let a = if w {
                    Access::write(ThreadId(t as u16), BASE + word * 8, 8)
                } else {
                    Access::read(ThreadId(t as u16), BASE + word * 8, 8)
                };
                script.push(t, a);
            }
        }
        let feed = interleave(&script, &Schedule::Seeded(seed));
        for (cfg, name) in configs() {
            assert_equivalent(&feed, cfg, &format!("seed {seed} / {name}"));
        }
    }
}
