#!/usr/bin/env bash
# Bench telemetry pipeline: builds the workspace twice (hooks on / obs-off),
# measures the small workload suite plus the detector hot path in each, and
# merges the pair into a schema-versioned BENCH_<n>.json whose
# `obs_overhead_pct` field proves the observability layer stays inside its
# <=5% hot-path budget.
#
# Usage:
#   scripts/bench.sh [out.json]                  # default: BENCH_local.json
#   BENCH_ITERS=500 BENCH_HOT_ITERS=200000 scripts/bench.sh quick.json
#   BENCH_BASELINE=BENCH_3.json scripts/bench.sh # also gate vs a baseline
#
# The merged report can be compared across commits with
#   predator bench-diff old.json new.json --tolerance 0.5
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_local.json}"
ITERS="${BENCH_ITERS:-2000}"
HOT_ITERS="${BENCH_HOT_ITERS:-2000000}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "==> criterion smoke (obs overhead groups)"
# The vendored criterion shim runs fast; full statistics come from the
# measure step below, this just keeps the bench targets compiling & running.
cargo bench -q -p predator-bench --bench obs_overhead -- --quick >/dev/null 2>&1 ||
  cargo bench -q -p predator-bench --bench obs_overhead >/dev/null

echo "==> measuring with observability hooks ON"
cargo build --release -q -p predator-bench
target/release/bench_telemetry measure "$WORK/obs_on.json" \
  --iters "$ITERS" --hot-iters "$HOT_ITERS"

echo "==> measuring with observability hooks compiled OUT (obs-off)"
cargo build --release -q -p predator-bench --features obs-off
target/release/bench_telemetry measure "$WORK/obs_off.json" \
  --iters "$ITERS" --hot-iters "$HOT_ITERS"

# Leave the tree in the default (hooks-on) configuration for later steps.
cargo build --release -q -p predator-bench -p predator-cli

echo "==> merging into $OUT"
target/release/bench_telemetry merge "$WORK/obs_on.json" "$WORK/obs_off.json" "$OUT"

if [[ -n "${BENCH_BASELINE:-}" && -f "${BENCH_BASELINE}" ]]; then
  echo "==> gating against ${BENCH_BASELINE}"
  target/release/predator bench-diff "$BENCH_BASELINE" "$OUT" \
    --tolerance "${BENCH_TOLERANCE:-0.5}"
fi

# Trace-pipeline telemetry: .ptrace vs JSONL size, record/decode throughput,
# sharded-analysis speedup. Refresh the committed artifact with
#   BENCH_TRACE_OUT=BENCH_4.json scripts/bench.sh
TRACE_OUT="${BENCH_TRACE_OUT:-BENCH_trace_local.json}"
echo "==> trace pipeline bench -> $TRACE_OUT"
target/release/bench_trace "$TRACE_OUT" --iters "${BENCH_TRACE_ITERS:-100000}"

# Tracked-line hot-path scaling: precise (mutex) vs relaxed (lock-free)
# across 1/2/4/8 threads. The ≥2x-at-8-threads gate makes bench_scaling
# exit non-zero only on machines with >=8 cores; elsewhere it is advisory.
# Refresh the committed artifact with
#   BENCH_SCALING_OUT=BENCH_5.json scripts/bench.sh
SCALING_OUT="${BENCH_SCALING_OUT:-BENCH_scaling_local.json}"
echo "==> tracked-line scaling bench -> $SCALING_OUT"
target/release/bench_scaling "$SCALING_OUT" --iters "${BENCH_SCALING_ITERS:-200000}"

# Fleet pipeline telemetry: corpus ingest throughput, merged-report build
# time, and trend time over a >=10M-event synthetic multi-trace corpus with
# one deliberately corrupted member (loss accounting always exercised).
# Refresh the committed artifact with
#   BENCH_FLEET_OUT=BENCH_6.json scripts/bench.sh
FLEET_OUT="${BENCH_FLEET_OUT:-BENCH_fleet_local.json}"
echo "==> fleet corpus bench -> $FLEET_OUT"
target/release/bench_fleet "$FLEET_OUT" \
  --traces "${BENCH_FLEET_TRACES:-8}" \
  --events-per-trace "${BENCH_FLEET_EVENTS:-1250000}"

# Live-monitoring overhead: serve-mode passes (HTTP endpoint + scraper +
# self-overhead watchdog + tsdb sampling + alert-rule evaluation over the
# shipped docs/alerts.rules pack) vs a bare relaxed-tracking baseline, plus
# scrape and monitor-tick latency percentiles. The <=5% overhead gate is
# enforced on >=4 cores; advisory elsewhere. Refresh the committed artifact
# with
#   BENCH_SERVE_OUT=BENCH_8.json scripts/bench.sh
SERVE_OUT="${BENCH_SERVE_OUT:-BENCH_serve_local.json}"
echo "==> live-monitoring serve bench -> $SERVE_OUT"
target/release/bench_serve "$SERVE_OUT" \
  --passes "${BENCH_SERVE_PASSES:-200}" \
  --iters "${BENCH_SERVE_ITERS:-20000}"

# What-if layout-replay telemetry: plain-analyze vs full portfolio replay
# throughput, plus the measured ≥90%-removed delta of the suggested padding
# fix (asserted inside the bin, so this step is also a correctness gate).
# Refresh the committed artifact with
#   BENCH_WHATIF_OUT=BENCH_9.json scripts/bench.sh
WHATIF_OUT="${BENCH_WHATIF_OUT:-BENCH_whatif_local.json}"
echo "==> what-if replay bench -> $WHATIF_OUT"
target/release/bench_whatif "$WHATIF_OUT" --iters "${BENCH_WHATIF_ITERS:-50000}"

echo "BENCH OK — wrote $OUT, $TRACE_OUT, $SCALING_OUT, $FLEET_OUT, $SERVE_OUT and $WHATIF_OUT"
