#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p predator-obs -q --features obs-off"
cargo test -p predator-obs -q --features obs-off

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> explain/diff smoke (flight recorder + CI gate)"
cargo build --release -p predator-cli
PRED=target/release/predator
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
$PRED run boost --sensitive --threads 4 --iters 300 --json --fixed > "$SMOKE/clean.json"
$PRED run boost --sensitive --threads 4 --iters 300 --json > "$SMOKE/bad.json"
$PRED explain "$SMOKE/bad.json" > "$SMOKE/explain.txt"
head -n 12 "$SMOKE/explain.txt"
if ! grep -q "Timeline for cache line" "$SMOKE/explain.txt"; then
  # obs-off builds carry no recorder data; anything else must render lanes.
  grep -q "No flight-recorder data" "$SMOKE/explain.txt"
fi
$PRED diff "$SMOKE/clean.json" "$SMOKE/clean.json"
if $PRED diff "$SMOKE/clean.json" "$SMOKE/bad.json"; then
  echo "diff gate failed to fail on a regression" >&2
  exit 1
fi
echo "diff gate correctly rejected the regression"

echo "==> record/analyze smoke (.ptrace pipeline)"
# The tracked histogram run is deterministic, so an offline analysis of a
# recording must reproduce the live detector's findings exactly.
$PRED run histogram --sensitive --iters 2000 --no-recorder --json > "$SMOKE/live.json"
$PRED record histogram --iters 2000 -o "$SMOKE/run.ptrace"
$PRED trace info "$SMOKE/run.ptrace" | grep -q "events"
$PRED analyze "$SMOKE/run.ptrace" --sensitive --shards 4 --json > "$SMOKE/offline.json"
$PRED diff "$SMOKE/live.json" "$SMOKE/offline.json"
echo "offline analysis matches the live run"

echo "==> policy gate smoke (baseline write -> gated re-analysis, both exit paths)"
# Baseline the histogram trace's findings: a gated re-analysis of the same
# trace must pass (everything baselined), while a different workload's trace
# introduces new warning-severity callsites that must trip the gate. The
# SARIF documents are what CI uploads as artifacts.
$PRED baseline write "$SMOKE/offline.json" -o "$SMOKE/policy-baseline.json"
$PRED analyze "$SMOKE/run.ptrace" --sensitive --format sarif \
  --baseline "$SMOKE/policy-baseline.json" --fail-on warning > "$SMOKE/predator.sarif"
grep -q '"\$schema"' "$SMOKE/predator.sarif"
$PRED record linear_regression --iters 1000 -o "$SMOKE/policy-new.ptrace"
if $PRED analyze "$SMOKE/policy-new.ptrace" --sensitive --format sarif \
    --baseline "$SMOKE/policy-baseline.json" --fail-on warning > "$SMOKE/policy-new.sarif"; then
  echo "policy gate failed to fail on a new finding" >&2
  exit 1
fi
echo "policy gate correctly rejected the new findings"
# The drift view of the same pair, and the HTML reporter's smoke.
$PRED baseline diff "$SMOKE/policy-baseline.json" "$SMOKE/offline.json"
$PRED analyze "$SMOKE/policy-new.ptrace" --sensitive --format html > "$SMOKE/report.html"
grep -qi '<!doctype html>' "$SMOKE/report.html"

echo "==> whatif smoke (record -> verified padding fix -> delta gate, both exit paths)"
# The recorded histogram run has an observed false-sharing finding whose
# suggested padding fix must verify with a measured >=90% invalidation
# reduction at every portfolio geometry; a deliberately useless user edit
# (1 byte of padding far outside the hot object) must trip --min-delta.
$PRED whatif "$SMOKE/run.ptrace" --sensitive > "$SMOKE/whatif.txt"
grep -q "WHAT-IF REPLAY" "$SMOKE/whatif.txt"
grep -q "% removed" "$SMOKE/whatif.txt"
$PRED whatif "$SMOKE/run.ptrace" --sensitive --min-delta 90 > /dev/null
if $PRED whatif "$SMOKE/run.ptrace" --sensitive --pad 0x7f000000:1 \
    --min-delta 90 > /dev/null; then
  echo "whatif gate failed to fail on a useless fix" >&2
  exit 1
fi
echo "whatif gate correctly rejected the useless fix"
# analyze --verify-fixes annotates the same findings inline.
$PRED analyze "$SMOKE/run.ptrace" --sensitive --verify-fixes > "$SMOKE/verify.txt"
grep -q "Verified fix" "$SMOKE/verify.txt"

echo "==> fleet smoke (corpus ingest -> merged report -> trend gate, both exit paths)"
# Two recordings of one workload form the baseline corpus; adding a second
# workload introduces new callsites, which must trip --fail-on-regression.
$PRED record histogram --iters 1000 -o "$SMOKE/f1.ptrace"
$PRED record histogram --iters 1500 -o "$SMOKE/f2.ptrace"
$PRED record linear_regression --iters 1000 -o "$SMOKE/f3.ptrace"
$PRED fleet ingest "$SMOKE/f1.ptrace" "$SMOKE/f2.ptrace" \
  --corpus "$SMOKE/baseline" --sensitive
$PRED fleet ingest "$SMOKE/f1.ptrace" "$SMOKE/f2.ptrace" "$SMOKE/f3.ptrace" \
  --corpus "$SMOKE/current" --sensitive
# grep a file, not a pipe: `grep -q` closes the pipe at first match and the
# writer would die on SIGPIPE.
$PRED fleet report --corpus "$SMOKE/current" > "$SMOKE/fleet-report.txt"
grep -q "FLEET REPORT" "$SMOKE/fleet-report.txt"
# A 1-file corpus's stored run must match `analyze` on the same trace.
$PRED analyze "$SMOKE/f1.ptrace" --sensitive --json > "$SMOKE/f1-direct.json"
RUN_ID=$($PRED fleet report --corpus "$SMOKE/baseline" --json |
  grep -o '"trace": "f1-[^"]*"' | head -n 1 | cut -d'"' -f4)
$PRED fleet report --corpus "$SMOKE/baseline" --run "$RUN_ID" --json > "$SMOKE/f1-stored.json"
$PRED diff "$SMOKE/f1-direct.json" "$SMOKE/f1-stored.json"
$PRED diff "$SMOKE/f1-stored.json" "$SMOKE/f1-direct.json"
# Exit path 1: corpus vs itself is steady — the gate passes.
$PRED fleet trend --corpus "$SMOKE/baseline" --baseline "$SMOKE/baseline" \
  --fail-on-regression
# Exit path 2: the added workload's callsites are NEW — the gate must fail.
if $PRED fleet trend --corpus "$SMOKE/current" --baseline "$SMOKE/baseline/corpus.json" \
    --fail-on-regression; then
  echo "fleet trend gate failed to fail on new callsites" >&2
  exit 1
fi
echo "fleet trend gate correctly rejected the new callsites"
$PRED fleet compact --corpus "$SMOKE/current" --keep 1
$PRED fleet report --corpus "$SMOKE/current" > "$SMOKE/fleet-compacted.txt"
grep -q "3 run(s)" "$SMOKE/fleet-compacted.txt"

echo "==> timeline/profile/bench-diff smoke"
$PRED ir examples/programs/false_sharing.pir --threads 2 --iters 2000 \
  --trace-timeline "$SMOKE/trace.json" > /dev/null
grep -q '"traceEvents"' "$SMOKE/trace.json"
if ! $PRED profile examples/programs/false_sharing.pir --threads 2 --iters 2000 \
    | grep -q "attributed"; then
  # obs-off builds compile the profiler out and must say so instead.
  $PRED profile examples/programs/false_sharing.pir 2>&1 | grep -q "obs-off" || {
    echo "profile smoke failed" >&2
    exit 1
  }
fi
cargo build --release -q -p predator-bench
target/release/bench_telemetry measure "$SMOKE/bench.json" --iters 100 --hot-iters 50000
$PRED bench-diff "$SMOKE/bench.json" "$SMOKE/bench.json"
# bench-diff's schema-agnostic path: fleet telemetry gates against itself.
target/release/bench_fleet "$SMOKE/bench_fleet.json" --traces 2 --events-per-trace 100000
$PRED bench-diff "$SMOKE/bench_fleet.json" "$SMOKE/bench_fleet.json"
# What-if replay telemetry (asserts the >=90% delta bar internally).
target/release/bench_whatif "$SMOKE/bench_whatif.json" --iters 10000
$PRED bench-diff "$SMOKE/bench_whatif.json" "$SMOKE/bench_whatif.json"

echo "==> tracked-line scaling bench (2x gate enforced only on >=8 cores)"
target/release/bench_scaling "$SMOKE/bench_scaling.json" --iters 100000 --reps 2

echo "==> live monitoring smoke (serve on an ephemeral port, scrape, clean shutdown)"
# The full endpoint matrix (including auth + SIGTERM semantics) is covered
# by the Rust test client in crates/cli/tests/serve.rs; this exercises the
# shipped binary end to end: lint the default rule pack, serve a workload
# with it loaded, scrape /health + /metrics + /alerts + /query, render the
# live /snapshot through `stats --url` and the dashboard through
# `stats --url --watch 0`, and shut down via SIGTERM.
cargo test -q -p predator-cli --test serve
$PRED alerts lint docs/alerts.rules
$PRED serve histogram --threads 2 --iters 200 --passes 2 \
  --listen 127.0.0.1:0 --watchdog-interval-ms 50 \
  --rules docs/alerts.rules \
  --ready-file "$SMOKE/serve.addr" &
SERVE_PID=$!
for _ in $(seq 1 100); do [[ -s "$SMOKE/serve.addr" ]] && break; sleep 0.1; done
ADDR=$(head -n 1 "$SMOKE/serve.addr" | tr -d '[:space:]')
$PRED stats --url "http://$ADDR" > "$SMOKE/serve-stats.txt"
grep -q "live snapshot from" "$SMOKE/serve-stats.txt"
# /alerts answers with the schema-tagged document once --rules is loaded,
# and /query serves history for a registered gauge after the first tick.
for _ in $(seq 1 100); do
  $PRED stats --url "http://$ADDR" --watch 0 > "$SMOKE/serve-watch.txt" || true
  grep -q "predator_backoff_tier" "$SMOKE/serve-watch.txt" && break
  sleep 0.1
done
grep -q "predator serve @" "$SMOKE/serve-watch.txt"
grep -q "alerts:" "$SMOKE/serve-watch.txt"
grep -q "predator_backoff_tier" "$SMOKE/serve-watch.txt"
kill "$SERVE_PID"
wait "$SERVE_PID"
echo "serve smoke OK"

echo "==> ThreadSanitizer (nightly + rust-src; skipped when unavailable)"
if rustup toolchain list 2>/dev/null | grep -q '^nightly' &&
  rustup component list --toolchain nightly 2>/dev/null |
    grep -q 'rust-src (installed)'; then
  HOST=$(rustc -vV | sed -n 's/^host: //p')
  RUSTFLAGS="-Zsanitizer=thread" TSAN_OPTIONS=halt_on_error=1 \
    cargo +nightly test -Zbuild-std --target "$HOST" \
    -p predator-core -p predator-sim -p predator-shadow --tests -q
else
  echo "    nightly toolchain with rust-src not installed; skipping TSan locally"
fi

echo "CI OK"
