#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p predator-obs -q --features obs-off"
cargo test -p predator-obs -q --features obs-off

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> explain/diff smoke (flight recorder + CI gate)"
cargo build --release -p predator-cli
PRED=target/release/predator
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
$PRED run boost --sensitive --threads 4 --iters 300 --json --fixed > "$SMOKE/clean.json"
$PRED run boost --sensitive --threads 4 --iters 300 --json > "$SMOKE/bad.json"
$PRED explain "$SMOKE/bad.json" > "$SMOKE/explain.txt"
head -n 12 "$SMOKE/explain.txt"
if ! grep -q "Timeline for cache line" "$SMOKE/explain.txt"; then
  # obs-off builds carry no recorder data; anything else must render lanes.
  grep -q "No flight-recorder data" "$SMOKE/explain.txt"
fi
$PRED diff "$SMOKE/clean.json" "$SMOKE/clean.json"
if $PRED diff "$SMOKE/clean.json" "$SMOKE/bad.json"; then
  echo "diff gate failed to fail on a regression" >&2
  exit 1
fi
echo "diff gate correctly rejected the regression"

echo "==> record/analyze smoke (.ptrace pipeline)"
# The tracked histogram run is deterministic, so an offline analysis of a
# recording must reproduce the live detector's findings exactly.
$PRED run histogram --sensitive --iters 2000 --no-recorder --json > "$SMOKE/live.json"
$PRED record histogram --iters 2000 -o "$SMOKE/run.ptrace"
$PRED trace info "$SMOKE/run.ptrace" | grep -q "events"
$PRED analyze "$SMOKE/run.ptrace" --sensitive --shards 4 --json > "$SMOKE/offline.json"
$PRED diff "$SMOKE/live.json" "$SMOKE/offline.json"
echo "offline analysis matches the live run"

echo "==> timeline/profile/bench-diff smoke"
$PRED ir examples/programs/false_sharing.pir --threads 2 --iters 2000 \
  --trace-timeline "$SMOKE/trace.json" > /dev/null
grep -q '"traceEvents"' "$SMOKE/trace.json"
if ! $PRED profile examples/programs/false_sharing.pir --threads 2 --iters 2000 \
    | grep -q "attributed"; then
  # obs-off builds compile the profiler out and must say so instead.
  $PRED profile examples/programs/false_sharing.pir 2>&1 | grep -q "obs-off" || {
    echo "profile smoke failed" >&2
    exit 1
  }
fi
cargo build --release -q -p predator-bench
target/release/bench_telemetry measure "$SMOKE/bench.json" --iters 100 --hot-iters 50000
$PRED bench-diff "$SMOKE/bench.json" "$SMOKE/bench.json"

echo "==> tracked-line scaling bench (2x gate enforced only on >=8 cores)"
target/release/bench_scaling "$SMOKE/bench_scaling.json" --iters 100000 --reps 2

echo "==> ThreadSanitizer (nightly + rust-src; skipped when unavailable)"
if rustup toolchain list 2>/dev/null | grep -q '^nightly' &&
  rustup component list --toolchain nightly 2>/dev/null |
    grep -q 'rust-src (installed)'; then
  HOST=$(rustc -vV | sed -n 's/^host: //p')
  RUSTFLAGS="-Zsanitizer=thread" TSAN_OPTIONS=halt_on_error=1 \
    cargo +nightly test -Zbuild-std --target "$HOST" \
    -p predator-core -p predator-sim -p predator-shadow --tests -q
else
  echo "    nightly toolchain with rust-src not installed; skipping TSan locally"
fi

echo "CI OK"
