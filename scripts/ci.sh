#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p predator-obs -q --features obs-off"
cargo test -p predator-obs -q --features obs-off

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> explain/diff smoke (flight recorder + CI gate)"
cargo build --release -p predator-cli
PRED=target/release/predator
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
$PRED run boost --sensitive --threads 4 --iters 300 --json --fixed > "$SMOKE/clean.json"
$PRED run boost --sensitive --threads 4 --iters 300 --json > "$SMOKE/bad.json"
$PRED explain "$SMOKE/bad.json" > "$SMOKE/explain.txt"
head -n 12 "$SMOKE/explain.txt"
if ! grep -q "Timeline for cache line" "$SMOKE/explain.txt"; then
  # obs-off builds carry no recorder data; anything else must render lanes.
  grep -q "No flight-recorder data" "$SMOKE/explain.txt"
fi
$PRED diff "$SMOKE/clean.json" "$SMOKE/clean.json"
if $PRED diff "$SMOKE/clean.json" "$SMOKE/bad.json"; then
  echo "diff gate failed to fail on a regression" >&2
  exit 1
fi
echo "diff gate correctly rejected the regression"

echo "CI OK"
