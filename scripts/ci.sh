#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -p predator-obs -q --features obs-off"
cargo test -p predator-obs -q --features obs-off

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
