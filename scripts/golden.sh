#!/usr/bin/env bash
# Golden-report corpus driver (tests/golden.rs <-> tests/golden/*.json).
#
#   scripts/golden.sh           # verify: byte-for-byte diff against corpus
#   scripts/golden.sh --bless   # refresh the corpus after an intended change
#
# Bless output is deterministic (precise tracking mode, round-robin/seeded
# feeds, observability snapshot zeroed), so a clean `git diff` after bless
# means nothing user-visible moved.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--bless" ]]; then
  GOLDEN_BLESS=1 cargo test -q --test golden
  echo "golden corpus refreshed under tests/golden/ — review with git diff"
else
  cargo test -q --test golden
fi
