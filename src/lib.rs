//! # PREDATOR — predictive false sharing detection
//!
//! A Rust reproduction of *"PREDATOR: Predictive False Sharing Detection"*
//! (Tongping Liu, Chen Tian, Ziang Hu, Emery D. Berger — PPoPP 2014).
//!
//! This umbrella crate re-exports the whole system:
//!
//! * [`core`] — the detector runtime: invalidation tracking
//!   with two-entry history tables, false/true sharing discrimination,
//!   virtual-cache-line **prediction** of latent false sharing, ranked
//!   Figure-5-style reports;
//! * [`sim`] — cache geometry, history tables, virtual lines,
//!   a MESI ground-truth simulator, deterministic interleaving;
//! * [`shadow`] — fixed-base simulated address space and
//!   O(1) shadow metadata;
//! * [`alloc`] — the Hoard-style per-thread-heap allocator
//!   with callsite tracking;
//! * [`instrument`] — a mini-IR with the paper's
//!   selective instrumentation pass, a deterministic multithreaded
//!   interpreter, and trace record/replay;
//! * [`trace`] — the compact binary `.ptrace` trace format
//!   (CRC-framed, delta-encoded, corruption-tolerant) and the sharded
//!   offline analysis engine;
//! * [`workloads`] — the paper's Phoenix / PARSEC /
//!   real-application evaluation workloads;
//! * [`fleet`] — the `.ptrace` corpus store: cross-run merged
//!   reports deduped by stable callsite key, trend/regression deltas
//!   against a baseline corpus, and retention via compaction;
//! * [`policy`] — the policy engine between detection and output:
//!   severity classification behind a pluggable [`policy::Policy`] trait,
//!   per-site suppressions, baseline files, `--fail-on` gating, the
//!   shared comparison engine, and the SARIF/HTML reporters;
//! * [`obs`] — the zero-dependency observability layer: metrics
//!   registry, structured events, snapshot deltas, and the hand-rolled
//!   HTTP telemetry server behind `predator serve`.
//!
//! ## Quick start
//!
//! ```
//! use predator::{Callsite, DetectorConfig, Session};
//!
//! let session = Session::new(DetectorConfig::sensitive(), 1 << 20);
//! let t0 = session.register_thread();
//! let t1 = session.register_thread();
//!
//! let obj = session.malloc(t0, 64, Callsite::here()).unwrap();
//! for _ in 0..300 {
//!     session.write::<u64>(t0, obj.start, 1); // two threads, two words,
//!     session.write::<u64>(t1, obj.start + 8, 2); // one cache line
//! }
//!
//! let report = session.report();
//! assert!(report.has_observed_false_sharing());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

pub use predator_alloc as alloc;
pub use predator_core as core;
pub use predator_fleet as fleet;
pub use predator_instrument as instrument;
pub use predator_obs as obs;
pub use predator_policy as policy;
pub use predator_shadow as shadow;
pub use predator_sim as sim;
pub use predator_trace as trace;
pub use predator_workloads as workloads;

// The most common entry points, flattened for convenience.
pub use predator_core::{
    build_report, Callsite, DetectorConfig, Finding, FindingKind, Frame, Report, Session,
    SharingClass, SiteKind,
};
pub use predator_sim::{Access, AccessKind, CacheGeometry, ThreadId};
