//! Quickstart: detect false sharing in sixty lines.
//!
//! Two threads update *different* fields of one small heap object in a tight
//! loop. The fields share a 64-byte cache line, so every write invalidates
//! the other thread's cached copy — textbook false sharing. PREDATOR counts
//! those invalidations, separates them from true sharing using per-word
//! access data, and prints a ranked report with the allocation callsite.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use predator::{Callsite, DetectorConfig, Session};

fn main() {
    // A detector with small thresholds suitable for a demo-sized run
    // (`DetectorConfig::paper()` has the evaluation thresholds).
    let session = Session::new(DetectorConfig::sensitive(), 1 << 20);

    // Register two logical threads.
    let t0 = session.register_thread();
    let t1 = session.register_thread();

    // One 64-byte object: a counters struct with two u64 fields.
    let counters = session
        .malloc(t0, 64, Callsite::here())
        .expect("allocation");

    // Interleaved updates to adjacent words — the false-sharing pattern.
    for i in 0..10_000u64 {
        let a = session.read::<u64>(t0, counters.start);
        session.write::<u64>(t0, counters.start, a + i);
        let b = session.read::<u64>(t1, counters.start + 8);
        session.write::<u64>(t1, counters.start + 8, b + i);
    }

    let report = session.report();
    assert!(report.has_observed_false_sharing());
    println!("{report}");

    println!("--- fix: pad each thread's counter to its own cache line ---\n");

    // The same computation with each counter on its own line: clean.
    let fixed = Session::new(DetectorConfig::sensitive(), 1 << 20);
    let t0 = fixed.register_thread();
    let t1 = fixed.register_thread();
    let padded = fixed.malloc(t0, 192, Callsite::here()).expect("allocation");
    for i in 0..10_000u64 {
        let a = fixed.read::<u64>(t0, padded.start);
        fixed.write::<u64>(t0, padded.start, a + i);
        let b = fixed.read::<u64>(t1, padded.start + 128);
        fixed.write::<u64>(t1, padded.start + 128, b + i);
    }
    let report = fixed.report();
    assert!(!report.has_false_sharing());
    println!("{report}");
}
