//! Prediction: catching false sharing that *didn't happen* — the paper's
//! headline capability, demonstrated on the `linear_regression` pattern
//! (§4.1.3, Figures 2/5/6).
//!
//! Each thread owns one 64-byte, line-aligned element of an argument array
//! and hammers five accumulator fields in its own element. In *this* run
//! nothing is shared: every element sits exactly on its own cache line. But
//! that safety hangs entirely on the array's starting address — shift it by
//! 24 bytes (a different allocator, compiler, or malloc ordering) and the
//! benchmark runs ~15× slower (paper, Figure 2).
//!
//! A conventional detector reports nothing here. PREDATOR tracks *virtual
//! cache lines* — shifted and doubled line partitions — verifies the
//! invalidations that would occur on them, and reports the latent bug.
//!
//! ```text
//! cargo run --example predict_latent
//! ```

use predator::{Callsite, DetectorConfig, FindingKind, Frame, Session};

fn run(prediction: bool) -> predator::Report {
    let det = DetectorConfig {
        prediction,
        ..DetectorConfig::sensitive()
    };
    let session = Session::new(det, 1 << 20);
    let main = session.register_thread();

    let threads = 4u64;
    // The lreg_args array of Figure 6: 64 bytes per thread, hot fields
    // (SX/SY/SXX/SYY/SXY) in the back 40 bytes of each element.
    let args = session
        .malloc(
            main,
            threads * 64,
            Callsite::from_frames(vec![
                Frame::new("./stddefines.h", 53),
                Frame::new("./linear_regression-pthread.c", 133),
            ]),
        )
        .expect("allocation");
    assert_eq!(
        args.start % 64,
        0,
        "the isolating allocator line-aligns the array"
    );

    let tids: Vec<_> = (0..threads).map(|_| session.register_thread()).collect();
    for i in 0..5_000u64 {
        for (t, &tid) in tids.iter().enumerate() {
            let element = args.start + t as u64 * 64;
            let (x, y) = (i % 256, (i * 7) % 256);
            for (field, v) in [(3, x), (4, y), (5, x * x), (6, y * y), (7, x * y)] {
                let addr = element + field * 8;
                let cur = session.read::<u64>(tid, addr);
                session.write::<u64>(tid, addr, cur.wrapping_add(v));
            }
        }
    }
    session.report()
}

fn main() {
    println!("=== conventional detector (prediction off) ===\n");
    let np = run(false);
    println!("{np}");
    assert!(!np.has_false_sharing(), "nothing manifests in this run");

    println!("\n=== PREDATOR (prediction on) ===\n");
    let full = run(true);
    println!("{full}");
    assert!(full.has_predicted_false_sharing());

    for f in full.false_sharing() {
        match f.kind {
            FindingKind::PredictedDoubled => {
                println!(">> latent on 128-byte-line hardware: {} verified invalidations", f.invalidations)
            }
            FindingKind::PredictedRemap { delta } => println!(
                ">> latent if the object shifts to a {delta}-byte line offset: {} verified invalidations",
                f.invalidations
            ),
            FindingKind::PredictedScaled { factor_log2 } => println!(
                ">> latent on {}x-line hardware: {} verified invalidations",
                1u64 << factor_log2,
                f.invalidations
            ),
            FindingKind::Observed => unreachable!("nothing observed in this layout"),
        }
    }
}
