//! The Boost `spinlock_pool` bug (§4.1.2), end to end.
//!
//! `boost::detail::spinlock_pool<2>` backs `shared_ptr` reference counts
//! with a static array of 41 one-word spinlocks; objects hash to locks by
//! address. Eight locks fit in every 64-byte cache line, so threads spinning
//! on *different* locks invalidate each other — false sharing that "eluded
//! detection for years" and cost ~40%.
//!
//! This example models the pool as a registered **global variable** (so the
//! report shows name/address/size, §2.3), runs a shared_ptr-style
//! acquire/bump/release loop on four threads, and prints the finding; then
//! applies the fix (one lock per line) and shows the clean report.
//!
//! ```text
//! cargo run --example spinlock_pool
//! ```

use predator::{DetectorConfig, Session, SharingClass, SiteKind};

const POOL_SIZE: u64 = 41;

fn run(lock_stride_bytes: u64) -> predator::Report {
    let session = Session::new(DetectorConfig::sensitive(), 1 << 20);
    let _main = session.register_thread();

    // The static pool, reported by name.
    let pool = session.global(
        "boost::detail::spinlock_pool<2>::pool_",
        POOL_SIZE * lock_stride_bytes,
    );

    let tids: Vec<_> = (0..4).map(|_| session.register_thread()).collect();
    // Each thread's shared_ptr objects hash to a distinct lock.
    let lock_of = |t: usize| ((t * 7) % POOL_SIZE as usize) as u64;
    // Private refcount words, one per thread.
    let refs: Vec<_> = tids
        .iter()
        .map(|&tid| {
            session
                .malloc(tid, 64, predator::Callsite::here())
                .unwrap()
                .start
        })
        .collect();

    for _ in 0..5_000 {
        for (t, &tid) in tids.iter().enumerate() {
            let lock = pool + lock_of(t) * lock_stride_bytes;
            // spinlock::lock() — a CAS (write) on the lock word.
            while session.compare_exchange(tid, lock, 0, 1).is_err() {}
            // shared_ptr refcount update under the lock.
            let rc = session.read::<u64>(tid, refs[t]);
            session.write::<u64>(tid, refs[t], rc + 1);
            // spinlock::unlock().
            session.write::<u64>(tid, lock, 0);
        }
    }
    session.report()
}

fn main() {
    println!("=== shipped layout: 41 packed one-word spinlocks ===\n");
    let broken = run(8);
    println!("{broken}");

    let finding = broken
        .false_sharing()
        .next()
        .expect("the packed pool must be flagged");
    assert!(matches!(
        finding.class,
        SharingClass::FalseSharing | SharingClass::Mixed
    ));
    match &finding.object.site {
        SiteKind::Global { name } => {
            println!(">> flagged global: {name}");
        }
        other => panic!("expected a global attribution, got {other:?}"),
    }

    println!("\n=== fixed layout: one spinlock per cache line ===\n");
    let fixed = run(64);
    println!("{fixed}");
    assert!(
        !fixed.has_observed_false_sharing(),
        "padding eliminates the observed sharing"
    );
}
