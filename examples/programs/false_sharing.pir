; Two logical threads each run `worker(slot, n)`, incrementing their own
; slot in a tight loop. Run with:
;
;   predator ir examples/programs/false_sharing.pir --sensitive --fixes
;
; The default --stride 8 puts the two slots in one cache line (false
; sharing); --stride 64 separates them (clean); --stride 64 with
; prediction enabled is still flagged as latent for 128-byte lines.

fn worker(params=2) {
bb0:
  mov r2, 0
  jmp bb1
bb1:
  lt r3, r2, r1
  br r3, bb2, bb3
bb2:
  call r4, @1(r0, r2)
  add r5, r2, 1
  mov r2, r5
  jmp bb1
bb3:
  ret r4
}

fn bump(params=2) {
bb0:
  load r2, [r0+0], 8
  add r3, r2, r1
  store [r0+0], r3, 8
  ret r3
}
