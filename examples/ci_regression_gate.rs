//! A CI regression gate: diff detector reports across a code change.
//!
//! Run the detector on the "main branch" build and on the "pull request"
//! build, then diff the reports by finding identity (source attribution +
//! detection scenario). New findings fail the gate; resolved findings and
//! large severity swings are called out. This is the workflow the paper's
//! ranked, source-attributed reports enable.
//!
//! ```text
//! cargo run --example ci_regression_gate
//! ```

use predator::policy::diff_reports;
use predator::{Callsite, DetectorConfig, Frame, Session};

/// "Application" v1: per-thread counters properly padded.
fn build_v1() -> predator::Report {
    run_app(128)
}

/// "Application" v2: someone shrank the stats struct to save memory,
/// packing the per-thread counters into one cache line.
fn build_v2() -> predator::Report {
    run_app(8)
}

fn run_app(stride: u64) -> predator::Report {
    let s = Session::new(DetectorConfig::sensitive(), 1 << 20);
    let t0 = s.register_thread();
    let t1 = s.register_thread();
    // The shared stats object the change touches.
    let stats = s
        .malloc(
            t0,
            2 * stride.max(64),
            Callsite::from_frames(vec![Frame::new("src/stats.rs", 42)]),
        )
        .unwrap();
    // Plus an unrelated, always-clean subsystem.
    let queue = s
        .malloc(
            t0,
            256,
            Callsite::from_frames(vec![Frame::new("src/queue.rs", 7)]),
        )
        .unwrap();
    for i in 0..5_000u64 {
        s.write::<u64>(t0, stats.start, i);
        s.write::<u64>(t1, stats.start + stride, i);
        // Queue work stays single-threaded.
        s.write::<u64>(t0, queue.start + (i % 32) * 8, i);
    }
    s.report()
}

fn main() {
    println!("running detector on main branch build…");
    let before = build_v1();
    println!(
        "  {} finding(s), {} invalidations",
        before.findings.len(),
        before.stats.observed_invalidations
    );

    println!("running detector on pull-request build…");
    let after = build_v2();
    println!(
        "  {} finding(s), {} invalidations",
        after.findings.len(),
        after.stats.observed_invalidations
    );

    let diff = diff_reports(&before, &after, 0.5);
    println!("\n=== report diff ===\n{diff}");

    if diff.has_regressions() {
        println!("GATE: FAIL — the change introduces false sharing:");
        for id in &diff.appeared {
            println!("  new finding at {} [{}]", id.site, id.kind);
        }
        // A real CI job would `std::process::exit(1)` here.
        assert_eq!(diff.appeared.len(), 1);
        assert!(diff.appeared[0].site.contains("stats.rs:42"));
        println!("\n(demo: the gate correctly blames src/stats.rs:42)");
    } else {
        panic!("demo expects a regression");
    }
}
