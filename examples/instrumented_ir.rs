//! The full compiler-instrumentation pipeline (§2.2, §2.4.2):
//! IR → instrumentation pass → deterministic multithreaded execution →
//! detector → report; plus trace record and replay.
//!
//! The program below is the IR equivalent of:
//!
//! ```c
//! void worker(long *slot, long n) {
//!     for (long i = 0; i < n; i++) { *slot += i; }
//! }
//! // two threads, slot0 and slot1 adjacent words of one line
//! ```
//!
//! The instrumentation pass inserts one probe per (address expression,
//! access type) per basic block — the paper's *selective instrumentation* —
//! and the interpreter interleaves the two threads one loop iteration at a
//! time, the adversarial schedule PREDATOR conservatively assumes.
//!
//! ```text
//! cargo run --example instrumented_ir
//! ```

use predator::instrument::{
    instrument_module, load_jsonl, replay, save_jsonl, BinOp, FunctionBuilder, InstrumentOptions,
    Machine, Module, Operand, StepSchedule, ThreadSpec, TraceRecorder,
};
use predator::{build_report, DetectorConfig, ThreadId};
use predator_core::Predator;
use predator_shadow::SimSpace;

/// Builds `fn worker(slot, n) { for i in 0..n { *slot += i } }`.
fn build_worker() -> Module {
    let mut fb = FunctionBuilder::new("worker", 2);
    let i = fb.reg();
    fb.mov(i, 0i64);
    let head = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jmp(head);
    fb.select_block(head);
    let cond = fb.bin(BinOp::Lt, i, Operand::Reg(1));
    fb.br(cond, body, exit);
    fb.select_block(body);
    let cur = fb.load(0u32, 0); // read *slot
    let next = fb.bin(BinOp::Add, cur, i);
    fb.store(0u32, 0, Operand::Reg(next)); // write *slot
    let i2 = fb.bin(BinOp::Add, i, 1i64);
    fb.mov(i, Operand::Reg(i2));
    fb.jmp(head);
    fb.select_block(exit);
    fb.ret(None);
    Module {
        functions: vec![fb.finish().unwrap()],
    }
}

fn main() {
    // 1. "Compile": run the instrumentation pass.
    let mut module = build_worker();
    let stats = instrument_module(&mut module, &InstrumentOptions::default());
    println!(
        "instrumentation: {} accesses seen, {} probes inserted, {} deduped in-block",
        stats.accesses_seen, stats.probes_inserted, stats.deduped
    );

    // 2. Execute two threads against the detector, recording a trace too.
    let space = SimSpace::new(1 << 16);
    let det = DetectorConfig::sensitive();
    let rt = Predator::for_space(det, &space);
    let recorder = TraceRecorder::new();

    // First run: straight into the detector.
    let machine = Machine::new(&module, &space, &rt).expect("valid module");
    let threads = vec![
        ThreadSpec {
            tid: ThreadId(0),
            function: "worker".into(),
            args: vec![space.base() as i64, 5_000],
        },
        ThreadSpec {
            tid: ThreadId(1),
            function: "worker".into(),
            args: vec![(space.base() + 8) as i64, 5_000], // adjacent word!
        },
    ];
    machine
        .run(
            &threads,
            StepSchedule::RoundRobin { quantum: 7 },
            10_000_000,
        )
        .expect("execution");

    let report = build_report(&rt, None);
    println!("\n=== report from live execution ===\n{report}");
    assert!(report.has_observed_false_sharing());

    // 3. Record the same execution as a trace, save/load it, and replay it
    //    into a *fresh* detector — identical verdict.
    let replay_space = SimSpace::new(1 << 16);
    let machine = Machine::new(&module, &replay_space, &recorder).unwrap();
    machine
        .run(
            &threads,
            StepSchedule::RoundRobin { quantum: 7 },
            10_000_000,
        )
        .expect("execution");
    let mut buf = Vec::new();
    save_jsonl(&recorder.events(), &mut buf).unwrap();
    println!(
        "trace: {} events, {} bytes of JSON lines",
        recorder.len(),
        buf.len()
    );

    let events = load_jsonl(std::io::Cursor::new(buf)).unwrap();
    let rt2 = Predator::new(DetectorConfig::sensitive(), space.base(), 1 << 16);
    replay(&events, &rt2);
    let replayed = build_report(&rt2, None);
    assert!(replayed.has_observed_false_sharing());
    println!("\nreplay into a fresh detector reproduces the finding ✓");
}
